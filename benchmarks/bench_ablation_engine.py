"""Ablation benches for the design choices DESIGN.md calls out.

1. **Execution strategy** for the raw-block ("unsafe") backend: the
   block-vectorised engine (strided NumPy views) versus the per-row
   generated-``struct`` code (``smc-unsafe-scalar``) versus handle-level
   decoding (``smc-safe``).  The vectorised engine is why the repo's
   Figure 11 shape holds; this bench quantifies the choice.
2. **Block size**: per-block overhead vs block-at-a-time efficiency.
   Tiny blocks drown the vectorised engine in per-block setup; the 1 MiB
   default amortises it.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.bench.workloads import lineitem_values
from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.query.builder import Count, Sum
from repro.query.expressions import param
from repro.tpch.schema import Lineitem

_N = 20_000
L = Lineitem


def _collection(block_shift: int = 20):
    manager = MemoryManager(block_shift=block_shift)
    coll = Collection(Lineitem, manager=manager)
    rnd = random.Random(3)
    for i in range(_N):
        coll.add(**lineitem_values(rnd, i))
    return manager, coll


def _query(coll):
    return (
        coll.query()
        .where(L.quantity < param("q"))
        .group_by(flag=L.returnflag)
        .aggregate(revenue=Sum(L.extendedprice * (1 - L.discount)), n=Count())
    )


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Ablation", "engine strategy & block size (Q1-like aggregate)", "ms"
    )
    yield rep
    rep.print()


def test_ablation_engine_strategy(report, benchmark):
    def _run():
        manager, coll = _collection()
        q = _query(coll)
        params = {"q": 40}
        vectorised = time_callable(lambda: q.run(params=params), repeat=3)
        scalar = time_callable(
            lambda: q.run(flavor="smc-unsafe-scalar", params=params), repeat=3
        )
        safe = time_callable(
            lambda: q.run(flavor="smc-safe", params=params), repeat=3
        )
        report.record("vectorised (default)", "strategy", vectorised * 1000)
        report.record("scalar codegen", "strategy", scalar * 1000)
        report.record("handle-level (safe)", "strategy", safe * 1000)
        # The vectorised engine must justify its existence...
        assert vectorised < scalar
        # ...and raw access must beat per-field boxing by a wide margin.
        assert scalar < safe
        manager.close()

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_ablation_block_size(report, benchmark):
    def _run():
        timings = {}
        for shift in (12, 14, 16, 18, 20):
            manager, coll = _collection(block_shift=shift)
            q = _query(coll)
            timings[shift] = time_callable(
                lambda: q.run(params={"q": 40}), repeat=3
            )
            report.record(
                "vectorised scan", f"{1 << shift >> 10}KiB", timings[shift] * 1000
            )
            manager.close()
        # Bigger blocks must not be slower than the tiny ones.
        assert timings[20] < timings[12]

    benchmark.pedantic(_run, rounds=1, iterations=1)


@pytest.mark.parametrize("flavor", ["smc-unsafe", "smc-unsafe-scalar", "smc-safe"])
def test_ablation_flavor_benchmark(benchmark, flavor):
    manager, coll = _collection()
    q = _query(coll)
    benchmark(lambda: q.run(flavor=flavor, params={"q": 40}))
    manager.close()
