"""Figure 9 — longest application pause vs collection size.

The paper stores N objects in a collection (managed vs self-managed),
runs an allocating thread plus a 1 ms sleeper thread, and records the
longest observed overrun.  Expected shape: managed/batch pauses grow
~linearly with N; self-managed collections keep pauses flat; interactive
(concurrent) collection bounds pauses for both at the cost of background
CPU.

Two instruments (see DESIGN.md substitution table):

* the generational stop-the-world cost model (`gcsim.longest_timeout`)
  reproduces the .NET pause mechanics the paper measures;
* a real-CPython probe times `gc.collect()` with the population either
  as tracked record objects (managed) or inside SMC block buffers
  (self-managed) — the genuine Python analogue of GC exclusion.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureReport
from repro.core.collection import Collection
from repro.managed.gcsim import longest_timeout, real_gc_probe
from repro.memory.manager import MemoryManager
from repro.tpch.schema import Lineitem

_SIZES = [5_000_000, 10_000_000, 20_000_000, 40_000_000]
_REAL_SIZES = [20_000, 60_000, 180_000]


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 9", "longest thread timeout vs collection size", "ms"
    )
    yield rep
    rep.print()


def test_fig09_simulated_pauses(report, benchmark):
    def _run():
            series = {}
            for n in _SIZES:
                x = f"{n // 1_000_000}M"
                series[("Managed (batch)", x)] = (
                    longest_timeout(n, "batch", churn_objects=50_000) * 1000
                )
                series[("Managed (interactive)", x)] = (
                    longest_timeout(n, "interactive", churn_objects=50_000) * 1000
                )
                # SMC objects live off-heap: the collector scans only block
                # buffers, i.e. a pinned population of ~zero objects.
                series[("Self-managed (batch)", x)] = (
                    longest_timeout(0, "batch", churn_objects=50_000) * 1000
                )
                series[("Self-managed (interactive)", x)] = (
                    longest_timeout(0, "interactive", churn_objects=50_000) * 1000
                )
            for (label, x), value in series.items():
                report.record(label, x, value)

            xs = [f"{n // 1_000_000}M" for n in _SIZES]
            managed = [series[("Managed (batch)", x)] for x in xs]
            smc = [series[("Self-managed (batch)", x)] for x in xs]
            # Managed batch pauses grow ~linearly with the population...
            assert managed == sorted(managed)
            assert managed[-1] > managed[0] * 4
            # ...self-managed pauses stay flat...
            assert max(smc) < managed[0]
            assert max(smc) == pytest.approx(min(smc), rel=0.01)
            # ...and interactive mode bounds the managed pauses.
            inter = [series[("Managed (interactive)", x)] for x in xs]
            assert all(i < m for i, m in zip(inter, managed))

    benchmark.pedantic(_run, rounds=1, iterations=1)

def test_fig09_real_cpython_gc(report, benchmark):
    def _run():
            """Real `gc.collect()` time: tracked records vs off-heap blocks."""
            record_cls = Lineitem.managed_class()
            for n in _REAL_SIZES:
                managed_cost = real_gc_probe(
                    lambda n=n: [record_cls(orderkey=i) for i in range(n)]
                )

                def smc_population(n=n):
                    manager = MemoryManager()
                    coll = Collection(Lineitem, manager=manager)
                    for i in range(n):
                        coll.add(orderkey=i)
                    return manager, coll

                smc_cost = real_gc_probe(smc_population)
                report.record("CPython gc.collect managed", f"{n // 1000}k", managed_cost * 1000)
                report.record("CPython gc.collect SMC", f"{n // 1000}k", smc_cost * 1000)
                assert managed_cost > smc_cost

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("mode", ["batch", "interactive"])
def test_fig09_pause_benchmark(benchmark, mode):
    benchmark(lambda: longest_timeout(10_000_000, mode, churn_objects=20_000))
