"""Figure 11 — TPC-H queries 1–6 on managed collections vs SMCs.

Series (all compiled, as in the paper): List<T>, ConcurrentDictionary,
SMC with managed-equivalent code ("SMC (C#)" → the ``smc-safe`` flavour),
and SMC with raw-representation access ("SMC (unsafe C#)" → the default
vectorised ``smc-unsafe`` flavour).  Values are evaluation time relative
to List.

Expected shape (paper): SMC (unsafe) beats List by 47–80%; the gap to
the safe flavour is largest on the decimal-heavy Q1; ConcurrentDictionary
never beats List.  Known divergence (see EXPERIMENTS.md): the navigation-
heavy Q2/Q3/Q5 favour managed Python objects, whose attribute chasing is
cheaper relative to block gathers than C# object access is relative to
pointer arithmetic.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

QNAMES = ["q1", "q2", "q3", "q4", "q5", "q6"]


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 11", "TPC-H Q1-Q6, evaluation time relative to List", "x List"
    )
    yield rep
    rep.print()


def _time_query(collections, qname, flavor=None) -> float:
    query = QUERIES[qname](collections)
    return time_callable(
        lambda: query.run(flavor=flavor, params=DEFAULT_PARAMS), repeat=3
    )


def test_fig11_relative_times(report, managed_list, managed_dict, smc, benchmark):
    def _run():
            for qname in QNAMES:
                base = _time_query(managed_list, qname)
                report.record("List", qname, 1.0)
                report.record(
                    "C. Dictionary", qname, _time_query(managed_dict, qname) / base
                )
                report.record(
                    "SMC (safe)", qname, _time_query(smc, qname, "smc-safe") / base
                )
                report.record("SMC (unsafe)", qname, _time_query(smc, qname) / base)
            # Paper's headline: SMC (unsafe) significantly beats List on the
            # scan/aggregation-dominated queries.
            for qname in ("q1", "q6"):
                unsafe = report.series["SMC (unsafe)"].value_at(qname)
                assert unsafe < 0.9, f"{qname}: SMC (unsafe) should beat List"
            # Q1's decimal math is where raw in-place access pays off most.
            q1_gap = report.series["SMC (safe)"].value_at("q1") / report.series[
                "SMC (unsafe)"
            ].value_at("q1")
            assert q1_gap > 2.0

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("qname", QNAMES)
def test_fig11_smc_unsafe_benchmark(benchmark, smc, qname):
    query = QUERIES[qname](smc)
    benchmark(lambda: query.run(params=DEFAULT_PARAMS))


@pytest.mark.parametrize("qname", QNAMES)
def test_fig11_list_benchmark(benchmark, managed_list, qname):
    query = QUERIES[qname](managed_list)
    benchmark(lambda: query.run(params=DEFAULT_PARAMS))
