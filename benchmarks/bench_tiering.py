"""Memory-tiering sweep: query fidelity and cost under a byte budget.

Loads TPC-H twice into columnar collections — once unbudgeted (every
block stays hot) and once under a pager whose hot-tier budget is ~25% of
the loaded pool — then drives three phases:

* ``budgeted_queries`` — all ten reproduced queries on the budgeted
  manager, each differenced against the unbudgeted baseline.  The pager
  runs ``maintain()`` at every operation boundary and the run asserts
  ``hot_bytes() <= budget`` there each time; per-query fault counts come
  from the ``last_scan_tier_faults`` stamp.
* ``churn`` — a third of lineitem is freed and compaction cycles run
  interleaved with eviction (both managers mutate identically); the
  budget ceiling must hold across the churn and answers must stay
  byte-identical.
* ``pruned`` — a predicate no row satisfies (``quantity >= 10^6``): the
  zone maps retained at demotion must prune every block, hot or cold,
  so the scan records **zero** tier faults.

A result mismatch, a budget breach at an operation boundary, a fault
during the fully-pruned scan, or a leaked ``smc_tier_*`` file is a hard
failure (exit code 1); timings never are.

The full sweep writes ``BENCH_tiering.json`` at the repo root;
``--smoke`` runs a reduced matrix (tiny scale factor, no JSON) for CI.

Run as::

    PYTHONPATH=src python benchmarks/bench_tiering.py [--smoke]
"""

from __future__ import annotations

import argparse
import glob
import os
import platform
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small blocks so even modest scale factors produce pools of dozens of
#: blocks per context (the point is replacement traffic, not block size).
BLOCK_SHIFT = 16


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _tier_files():
    from repro.memory.pager import TIER_PREFIX

    return set(glob.glob(os.path.join(tempfile.gettempdir(), f"{TIER_PREFIX}*")))


def run_sweep(sf, budget_fraction, repeat):
    from repro.bench.harness import time_callable
    from repro.memory.manager import MemoryManager
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES
    from repro.tpch.schema import Lineitem

    all_queries = {**QUERIES, **EXTRA_QUERIES}
    print(f"generating TPC-H SF={sf} ...", flush=True)
    data = generate(sf, seed=42)

    def load_pair(columnar):
        base = load_smc(
            data, columnar=columnar, manager=MemoryManager(block_shift=BLOCK_SHIFT)
        )
        tier = load_smc(
            data,
            columnar=columnar,
            manager=MemoryManager(block_shift=BLOCK_SHIFT, memory_budget=1),
        )
        pager = tier["_manager"].pager
        loaded = pager.hot_bytes()
        budget = max(pager.block_size, int(loaded * budget_fraction))
        pager.set_budget(budget)
        pager.maintain()
        print(
            f"{'columnar' if columnar else 'row'} pool {loaded // 2**20} MiB "
            f"-> budget {budget / 2**20:.2f} MiB ({budget_fraction:.0%}); "
            f"residency after maintain: {pager.residency_counts()}",
            flush=True,
        )
        return base, tier, loaded, budget

    records = []
    failures = 0
    budget_breaches = 0

    def boundary(pager, label):
        """Operation boundary: enforce the budget, assert the ceiling."""
        nonlocal budget_breaches
        pager.maintain()
        if pager.hot_bytes() > pager.budget:
            budget_breaches += 1
            print(
                f"BUDGET BREACH after {label}: hot {pager.hot_bytes()} > "
                f"budget {pager.budget}",
                file=sys.stderr,
            )

    def run_one(baseline, tiered, name, phase):
        nonlocal failures
        manager = tiered["_manager"]
        pager = manager.pager
        base_q = all_queries[name](baseline)
        tier_q = all_queries[name](tiered)
        want = _canonical(base_q.run(params=DEFAULT_PARAMS))
        base_time = time_callable(
            lambda: base_q.run(params=DEFAULT_PARAMS), repeat=repeat
        )
        faults_before = pager.faults
        got = _canonical(tier_q.run(params=DEFAULT_PARAMS))
        faults = pager.faults - faults_before
        seconds = time_callable(
            lambda: tier_q.run(params=DEFAULT_PARAMS), repeat=repeat
        )
        match = got == want
        if not match:
            failures += 1
            print(f"RESULT MISMATCH: {name} phase={phase}", file=sys.stderr)
        boundary(pager, f"{phase}/{name}")
        record = {
            "phase": phase,
            "query": name,
            "hot_seconds": round(base_time, 6),
            "seconds": round(seconds, 6),
            "slowdown_vs_hot": round(seconds / base_time, 3),
            "first_run_tier_faults": faults,
            "matches_baseline": match,
            "hot_bytes_after_maintain": pager.hot_bytes(),
        }
        records.append(record)
        print(
            f"  {phase:<16} {name:<4} {seconds * 1000:8.1f} ms  "
            f"hot {base_time * 1000:8.1f} ms  "
            f"x{record['slowdown_vs_hot']:<6} faults={faults:<5} "
            f"{'ok' if match else 'FAIL'}",
            flush=True,
        )

    # -- phase 1: every query under the budget (columnar layout) --------
    baseline, tiered, loaded, budget = load_pair(columnar=True)
    manager = tiered["_manager"]
    pager = manager.pager
    for name in sorted(all_queries):
        run_one(baseline, tiered, name, "budgeted_queries")

    # -- phase 2: eviction interleaved with compaction churn ------------
    # Row layout: compaction is defined for row-layout SMCs (paper
    # section 5), so the churn pair is a separate row-layout load whose
    # mutations mirror the baseline's exactly.
    row_base, row_tier, _, _ = load_pair(columnar=False)
    row_pager = row_tier["_manager"].pager
    for coll in (row_base["lineitem"], row_tier["lineitem"]):
        for i, handle in enumerate(list(coll)):
            if i % 3 == 0:
                coll.remove(handle)
    for cycle in range(2):
        moved_base = row_base["lineitem"].compact(occupancy_threshold=0.9)
        moved_tier = row_tier["lineitem"].compact(occupancy_threshold=0.9)
        boundary(row_pager, f"churn/compact{cycle}")
        print(
            f"  compaction cycle {cycle}: relocated {moved_base} (hot) / "
            f"{moved_tier} (tiered)",
            flush=True,
        )
        for name in ("q1", "q6", "q14"):
            run_one(row_base, row_tier, name, "churn")
    churn_telemetry = row_pager.telemetry()
    row_base["_manager"].close()
    row_tier["_manager"].close()

    # -- phase 3: fully-pruned scan over a partly-cold pool -------------
    boundary(pager, "pruned/setup")
    faults_before = pager.faults
    pruned = (
        tiered["lineitem"]
        .query()
        .where(Lineitem.quantity >= 1_000_000)
        .run()
    )
    pruned_faults = pager.faults - faults_before
    stamped = manager.stats.extra.get("last_scan_tier_faults", -1)
    pruned_ok = (
        len(pruned.rows) == 0 and pruned_faults == 0 and stamped == 0
    )
    if not pruned_ok:
        failures += 1
        print(
            f"PRUNED SCAN TOUCHED COLD BYTES: rows={len(pruned.rows)} "
            f"faults={pruned_faults} stamped={stamped}",
            file=sys.stderr,
        )
    print(
        f"  pruned           scan {len(pruned.rows)} rows, "
        f"{pruned_faults} tier faults "
        f"({'ok' if pruned_ok else 'FAIL'})",
        flush=True,
    )

    telemetry = pager.telemetry()
    telemetry.pop("tier_path", None)
    churn_telemetry.pop("tier_path", None)
    baseline["_manager"].close()
    manager.close()
    return records, failures, budget_breaches, {
        "budget_bytes": budget,
        "budget_fraction": budget_fraction,
        "loaded_bytes": loaded,
        "pruned_scan_tier_faults": pruned_faults,
        **{f"tier_{k}": v for k, v in telemetry.items()},
        **{f"churn_tier_{k}": v for k, v in churn_telemetry.items()},
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=None, help="TPC-H scale factor")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.25,
        help="hot-tier budget as a fraction of the loaded pool",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI: correctness gate only, no JSON output",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_tiering.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        sf = args.sf or 0.002
        repeat = 1
    else:
        sf = args.sf or float(os.environ.get("REPRO_BENCH_SF", 0.02))
        repeat = args.repeat

    before = _tier_files()
    records, failures, breaches, counters = run_sweep(
        sf, args.budget_fraction, repeat
    )
    leaked = sorted(_tier_files() - before)

    if not args.smoke:
        from repro.bench.harness import write_json_atomic

        payload = {
            "bench": "tiering",
            "scale_factor": sf,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "note": (
                "Every query on the budgeted manager (~25% of the pool "
                "hot, the rest demoted to a file-backed tier) returned "
                "results byte-identical to the all-hot baseline, including "
                "under interleaved compaction and eviction churn; "
                "hot_bytes <= budget held at every operation boundary, and "
                "the fully-pruned scan answered from zone maps retained at "
                "demotion with zero cold-block faults.  Slowdown_vs_hot "
                "captures the fault cost of reading a mostly-cold pool."
            ),
            "counters": counters,
            "budget_breaches": breaches,
            "leaked_tier_files": leaked,
            "results": records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if leaked:
        print(f"LEAKED tier files: {leaked}", file=sys.stderr)
        return 1
    if breaches:
        print(
            f"{breaches} budget breach(es) at operation boundaries",
            file=sys.stderr,
        )
        return 1
    if failures:
        print(f"{failures} configuration(s) failed the gate", file=sys.stderr)
        return 1
    print(
        "all queries matched the all-hot baseline under the budget; "
        "ceiling held; tier files clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
