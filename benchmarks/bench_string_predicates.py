"""Dictionary-encoded string predicate sweep (standalone bench).

Loads the same TPC-H dataset twice — dictionary encoding on and off
(the ``--no-dict`` ablation) — and times string-heavy queries on both:

* ``contains`` / ``prefix`` — substring predicates over the lineitem
  comment column.  With the dictionary these evaluate once over the
  distinct values and scan as ``np.isin`` over int codes; without it
  every block's strings are materialised before ``np.char`` kernels run;
* ``eq`` / ``inset`` — point and set probes using comments sampled from
  the generated data (so they actually select rows);
* ``groupby`` — grouping parts by their varstring name (dense-code
  group keys vs. decoded-string keys);
* ``q2`` / ``q14`` — the TPC-H queries whose predicates are
  string-dominated (navigated ``contains``/``startswith``).

Every dictionary-encoded run is checked for result equality against the
no-dict baseline; a mismatch is a hard failure (exit code 1), timings
never are.  The full sweep writes ``BENCH_string_dict.json`` at the
repo root; ``--smoke`` runs a reduced matrix (tiny scale factor, no
JSON) for CI.

Run as::

    PYTHONPATH=src python benchmarks/bench_string_predicates.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _queries(collections, sample_comments):
    from repro.query.builder import Count, Sum
    from repro.tpch.queries import EXTRA_QUERIES, QUERIES
    from repro.tpch.schema import Lineitem as L
    from repro.tpch.schema import Part as P

    lineitem = collections["lineitem"]
    return {
        "contains": lineitem.query()
        .where(L.comment.contains("fox"))
        .aggregate(n=Count(), qty=Sum(L.quantity)),
        "prefix": lineitem.query()
        .where(L.comment.startswith("express"))
        .aggregate(n=Count(), qty=Sum(L.quantity)),
        "eq": lineitem.query()
        .where(L.comment == sample_comments[0])
        .aggregate(n=Count()),
        "inset": lineitem.query()
        .where(L.comment.isin(sample_comments))
        .aggregate(n=Count()),
        "groupby": collections["part"]
        .query()
        .where(P.name.contains("anodized"))
        .group_by(name=P.name)
        .aggregate(n=Count()),
        "q2": QUERIES["q2"](collections),
        "q14": EXTRA_QUERIES["q14"](collections),
    }


def run_sweep(sf, repeat, smoke):
    from repro.bench.harness import time_callable, write_json_atomic
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS

    print(f"generating TPC-H SF={sf} ...", flush=True)
    data = generate(sf, seed=42)
    # Probe values must exist in the data for eq/inset to select rows.
    sample_comments = sorted({row["comment"] for row in data.lineitem})[:3]

    loaded = {
        "dict": load_smc(data, columnar=True, string_dict=True),
        "nodict": load_smc(data, columnar=True, string_dict=False),
    }
    queries = {
        mode: _queries(collections, sample_comments)
        for mode, collections in loaded.items()
    }
    names = list(queries["dict"])
    if smoke:
        names = ["contains", "prefix", "inset", "q14"]

    records = []
    mismatches = 0
    for name in names:
        base_result = queries["nodict"][name].run(
            params=DEFAULT_PARAMS, workers=1, prune=True
        )
        base_rows = _canonical(base_result)
        base_time = None
        for mode in ("nodict", "dict"):
            query = queries[mode][name]
            result = query.run(params=DEFAULT_PARAMS, workers=1, prune=True)
            match = _canonical(result) == base_rows
            if not match:
                mismatches += 1
                print(f"RESULT MISMATCH: {name} mode={mode}", file=sys.stderr)
            seconds = time_callable(
                lambda q=query: q.run(
                    params=DEFAULT_PARAMS, workers=1, prune=True
                ),
                repeat=repeat,
            )
            if mode == "nodict":
                base_time = seconds
            record = {
                "query": name,
                "string_dict": mode == "dict",
                "seconds": round(seconds, 6),
                "speedup_vs_nodict": round(base_time / seconds, 3),
                "rows": len(result.rows),
                "matches_baseline": match,
            }
            records.append(record)
            print(
                f"  {name:<10} dict={int(record['string_dict'])} "
                f"{seconds * 1000:8.1f} ms  "
                f"x{record['speedup_vs_nodict']:<6} "
                f"rows {record['rows']}",
                flush=True,
            )
    for collections in loaded.values():
        collections["_manager"].close()
    return records, mismatches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=None, help="TPC-H scale factor")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI: correctness gate only, no JSON output",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_string_dict.json")
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sf = args.sf or 0.002
        repeat = 1
    else:
        sf = args.sf or float(os.environ.get("REPRO_BENCH_SF", 0.02))
        repeat = args.repeat

    records, mismatches = run_sweep(sf, repeat, args.smoke)

    if not args.smoke:
        payload = {
            "bench": "string_dict",
            "scale_factor": sf,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "note": (
                "speedup_vs_nodict compares dictionary-encoded string "
                "kernels (code-space np.isin / dense-code group keys) "
                "against the --no-dict ablation, which materialises and "
                "tests the actual string bytes.  Both sides run serial "
                "with zone pruning enabled."
            ),
            "results": records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if mismatches:
        print(f"{mismatches} configuration(s) diverged from baseline", file=sys.stderr)
        return 1
    print("all configurations matched the no-dict baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
