"""Figure 10 — enumeration performance, fresh vs worn collections.

(a) *Enumeration*: scan every lineitem and fold one field.
(b) *Nested enumeration*: for every lineitem follow the order reference
    to the customer and fold one of its fields.

Collections are measured freshly loaded and again after heavy churn
("worn": half the population removed and re-inserted twice).  Expected
shape: SMCs beat the managed collections on flat enumeration in both
states and, unlike them, do not degrade when worn; nested access narrows
the SMC lead (indirection cost), which direct pointers recover.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.core.collection import Collection
from repro.managed.collections_ import ManagedBag, ManagedDictionary, ManagedList
from repro.memory.manager import MemoryManager
from repro.query.builder import Sum
from repro.tpch.schema import Customer, Lineitem, Orders

_N_LINEITEMS = 20_000
_WEAR_ROUNDS = 2

L = Lineitem


def _rows(rnd: random.Random, n):
    from repro.bench.workloads import lineitem_values

    return [lineitem_values(rnd, i) for i in range(n)]


def _build(kind: str):
    """Build customer/orders/lineitem collections of the given kind."""
    rnd = random.Random(11)
    manager = None
    if kind in ("smc", "smc-direct"):
        manager = MemoryManager(direct_pointers=(kind == "smc-direct"))
        make = lambda schema: Collection(schema, manager=manager)  # noqa: E731
    else:
        factories = {
            "list": ManagedList,
            "bag": ManagedBag,
            "dict": ManagedDictionary,
        }
        make = factories[kind]
    customers = make(Customer)
    orders = make(Orders)
    lineitems = make(Lineitem)
    cust_handles = [
        customers.add(custkey=i, name=f"c{i}", nationkey=i % 25, acctbal=i)
        for i in range(_N_LINEITEMS // 10)
    ]
    order_handles = [
        orders.add(
            orderkey=i,
            custkey=i % len(cust_handles),
            customer=cust_handles[i % len(cust_handles)],
        )
        for i in range(_N_LINEITEMS // 5)
    ]
    for i, values in enumerate(_rows(rnd, _N_LINEITEMS)):
        lineitems.add(order=order_handles[i % len(order_handles)], **values)
    return manager, lineitems, order_handles, rnd


def _wear(kind, lineitems, order_handles, rnd):
    """Churn half the lineitems away and back, twice."""
    from repro.bench.workloads import lineitem_values

    for __ in range(_WEAR_ROUNDS):
        if kind == "bag":
            # ConcurrentBag cannot remove specific items; churn via take.
            taken = [lineitems.try_take() for __ in range(len(lineitems) // 2)]
            refill = len([t for t in taken if t is not None])
        elif kind == "dict":
            keys = lineitems.keys()
            rnd.shuffle(keys)
            refill = 0
            for key in keys[: len(keys) // 2]:
                lineitems.remove(key)
                refill += 1
        elif kind == "list":
            items = lineitems.records_list()
            victims = set(
                id(r) for r in rnd.sample(items, len(items) // 2)
            )
            refill = lineitems.remove_where(lambda r: id(r) in victims)
        else:  # SMC
            handles = list(lineitems)
            rnd.shuffle(handles)
            refill = len(handles) // 2
            for h in handles[:refill]:
                lineitems.remove(h)
        for i in range(refill):
            lineitems.add(
                order=order_handles[i % len(order_handles)],
                **lineitem_values(rnd, 10**8 + i),
            )


def _enumeration_time(lineitems) -> float:
    q = lineitems.query().aggregate(total=Sum(L.quantity))
    return time_callable(lambda: q.run(), repeat=3)


def _nested_time(lineitems) -> float:
    q = lineitems.query().aggregate(
        total=Sum(L.order.ref("customer").ref("acctbal"))
    )
    return time_callable(lambda: q.run(), repeat=3)


KINDS = ["list", "bag", "dict", "smc", "smc-direct"]


@pytest.fixture(scope="module")
def report():
    rep = FigureReport("Figure 10", "enumeration performance", "ms")
    yield rep
    rep.print()


def test_fig10_enumeration(report, benchmark):
    def _run():
            flat = {}
            nested = {}
            for kind in KINDS:
                manager, lineitems, order_handles, rnd = _build(kind)
                flat[(kind, "fresh")] = _enumeration_time(lineitems) * 1000
                nested[(kind, "fresh")] = _nested_time(lineitems) * 1000
                _wear(kind, lineitems, order_handles, rnd)
                flat[(kind, "worn")] = _enumeration_time(lineitems) * 1000
                nested[(kind, "worn")] = _nested_time(lineitems) * 1000
                if manager:
                    manager.close()
            for (kind, state), value in flat.items():
                report.record(f"{kind} ({state})", "enumeration", value)
            for (kind, state), value in nested.items():
                report.record(f"{kind} ({state})", "nested", value)

            # Paper shape: SMC flat enumeration beats every managed collection,
            # fresh and worn.
            for state in ("fresh", "worn"):
                for kind in ("list", "bag", "dict"):
                    assert flat[("smc", state)] < flat[(kind, state)], (kind, state)
            # Flat SMC enumeration does not degrade much when worn.
            assert flat[("smc", "worn")] < flat[("smc", "fresh")] * 2.0

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("kind", KINDS)
def test_fig10_flat_benchmark(benchmark, kind):
    manager, lineitems, __, ___ = _build(kind)
    q = lineitems.query().aggregate(total=Sum(L.quantity))
    benchmark(lambda: q.run())
    if manager:
        manager.close()
