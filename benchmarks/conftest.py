"""Shared fixtures for the figure-reproduction benchmarks.

Scale is controlled by ``REPRO_BENCH_SF`` (TPC-H scale factor, default
0.01 ≈ 60k lineitems).  Engines are loaded once per session.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_scale_factor
from repro.memory.manager import MemoryManager
from repro.tpch.datagen import generate
from repro.tpch.loader import load_managed, load_rdbms, load_smc


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return bench_scale_factor(0.01)


@pytest.fixture(scope="session")
def data(bench_sf):
    return generate(bench_sf, seed=42)


@pytest.fixture(scope="session")
def smc(data):
    return load_smc(data)


@pytest.fixture(scope="session")
def smc_direct(data):
    return load_smc(data, manager=MemoryManager(direct_pointers=True))


@pytest.fixture(scope="session")
def smc_columnar(data):
    return load_smc(data, columnar=True)


@pytest.fixture(scope="session")
def managed_list(data):
    return load_managed(data, "list")


@pytest.fixture(scope="session")
def managed_dict(data):
    return load_managed(data, "dict")


@pytest.fixture(scope="session")
def managed_bag(data):
    return load_managed(data, "bag")


@pytest.fixture(scope="session")
def rdbms(data):
    return load_rdbms(data)


def pytest_terminal_summary(terminalreporter):
    """Show every figure table at the end of the run (pytest captures the
    in-test prints; this hook writes to the real terminal)."""
    from repro.bench.harness import RENDERED_REPORTS

    for text in RENDERED_REPORTS:
        terminalreporter.write_line(text)
