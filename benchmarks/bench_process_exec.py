"""Multi-process scatter-gather execution sweep (standalone bench).

Loads TPC-H into shared-memory-backed collections (row layout, so the
compaction phase is available), then sweeps process-pool sizes over all
ten reproduced queries in two phases:

* ``steady``  — a quiet pool: every query at every pool size is
  differenced against the serial in-process run;
* ``compaction_churn`` — a third of lineitem is freed and compaction
  cycles run between scans: the pool sees relocated blocks arrive
  through the attach protocol, workers respawn when the mutation
  fingerprint moves, and every answer must still be byte-identical.

Every configuration's result is checked against the serial baseline and
the run verifies each sweep actually took the process path (the
``exec_process_queries`` counter), so a silent thread fallback cannot
masquerade as a passing differential.  A mismatch, a missed process
route, or a leaked ``/dev/shm/smc_*`` segment is a hard failure (exit
code 1); timings never are.

The full sweep writes ``BENCH_process_exec.json`` at the repo root;
``--smoke`` runs a reduced matrix (pool sizes 1/2, tiny scale factor,
no JSON) for CI.

Run as::

    PYTHONPATH=src python benchmarks/bench_process_exec.py [--smoke]
"""

from __future__ import annotations

import argparse
import glob
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _segments():
    from repro.memory.shm import SEGMENT_PREFIX

    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def run_sweep(sf, pool_sizes, repeat):
    from repro.bench.harness import time_callable
    from repro.query.procexec import ProcessScanPool
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    all_queries = {**QUERIES, **EXTRA_QUERIES}
    print(f"generating TPC-H SF={sf} ...", flush=True)
    collections = load_smc(generate(sf, seed=42), shm=True)
    manager = collections["_manager"]

    records = []
    failures = 0

    def run_pool(query, name, phase, pool_size):
        """One differenced, timed configuration through the pool."""
        nonlocal failures
        extra = manager.stats.extra
        baseline = query.run(params=DEFAULT_PARAMS, workers=1)
        base_rows = _canonical(baseline)
        base_time = time_callable(
            lambda: query.run(params=DEFAULT_PARAMS, workers=1),
            repeat=repeat,
        )
        # Any workers>1 routes to the attached pool, which stripes over
        # its own process count.
        before = extra.get("exec_process_queries", 0)
        result = query.run(params=DEFAULT_PARAMS, workers=2)
        match = _canonical(result) == base_rows
        routed = extra.get("exec_process_queries", 0) == before + 1
        seconds = time_callable(
            lambda: query.run(params=DEFAULT_PARAMS, workers=2),
            repeat=repeat,
        )
        if not match:
            failures += 1
            print(
                f"RESULT MISMATCH: {name} phase={phase} pool={pool_size}",
                file=sys.stderr,
            )
        if not routed:
            failures += 1
            print(
                f"THREAD FALLBACK (expected process path): {name} "
                f"phase={phase} pool={pool_size}",
                file=sys.stderr,
            )
        record = {
            "phase": phase,
            "query": name,
            "pool_workers": pool_size,
            "serial_seconds": round(base_time, 6),
            "seconds": round(seconds, 6),
            "speedup_vs_serial": round(base_time / seconds, 3),
            "matches_baseline": match,
            "process_path": routed,
        }
        records.append(record)
        print(
            f"  {phase:<16} {name:<4} pool={pool_size} "
            f"{seconds * 1000:8.1f} ms  serial {base_time * 1000:8.1f} ms  "
            f"x{record['speedup_vs_serial']:<6} "
            f"{'ok' if match and routed else 'FAIL'}",
            flush=True,
        )

    # -- phase 1: steady state, every query at every pool size ---------
    for pool_size in pool_sizes:
        pool = ProcessScanPool(manager, workers=pool_size)
        manager.exec_pool = pool
        for name, builder in sorted(all_queries.items()):
            run_pool(builder(collections), name, "steady", pool_size)
        manager.exec_pool = None
        pool.shutdown()

    # -- phase 2: compaction churn at the largest pool size ------------
    pool_size = pool_sizes[-1]
    pool = ProcessScanPool(manager, workers=pool_size)
    manager.exec_pool = pool
    lineitem = collections["lineitem"]
    for i, handle in enumerate(list(lineitem)):
        if i % 3 == 0:
            lineitem.remove(handle)
    for cycle in range(2):
        moved = lineitem.compact(occupancy_threshold=0.9)
        print(f"  compaction cycle {cycle}: relocated {moved}", flush=True)
        for name in ("q1", "q6", "q14"):
            run_pool(
                all_queries[name](collections),
                name,
                "compaction_churn",
                pool_size,
            )
    manager.exec_pool = None
    pool.shutdown()

    respawns = manager.stats.extra.get("exec_worker_respawns", 0)
    dispatched = manager.stats.extra.get("exec_morsels_dispatched", 0)
    manager.close()
    return records, failures, {
        "exec_worker_respawns": respawns,
        "exec_morsels_dispatched": dispatched,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=None, help="TPC-H scale factor")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI: correctness gate only, no JSON output",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_process_exec.json")
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sf = args.sf or 0.002
        pool_sizes = [1, 2]
        repeat = 1
    else:
        sf = args.sf or float(os.environ.get("REPRO_BENCH_SF", 0.02))
        pool_sizes = [1, 2, 4]
        repeat = args.repeat

    before = _segments()
    records, failures, counters = run_sweep(sf, pool_sizes, repeat)
    leaked = sorted(_segments() - before)

    if not args.smoke:
        from repro.bench.harness import write_json_atomic

        payload = {
            "bench": "process_exec",
            "scale_factor": sf,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "note": (
                "Timings recorded on the available hardware; this host has "
                f"{os.cpu_count()} CPU core(s), so scatter-gather over "
                "worker processes cannot show wall-clock speedup here — "
                "workers serialise on the core, and fork/IPC overhead makes "
                "the process path slower than the in-process scan at this "
                "scale.  The differential gate is the point of this run: "
                "every configuration (including under compaction churn) "
                "returned results byte-identical to the serial baseline "
                "through the real multi-process protocol (shared-memory "
                "attach, cross-process epoch pins, morsel redispatch)."
            ),
            "counters": counters,
            "leaked_segments": leaked,
            "results": records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if leaked:
        print(f"LEAKED /dev/shm segments: {leaked}", file=sys.stderr)
        return 1
    if failures:
        print(f"{failures} configuration(s) failed the gate", file=sys.stderr)
        return 1
    print(
        "all configurations matched the serial baseline through the "
        "process path; /dev/shm clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
