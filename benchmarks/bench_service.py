"""Closed-loop load generator for the concurrent query service.

Starts an in-process :class:`ServiceServer` over a freshly generated
TPC-H dataset, runs a background churn mutator against the same memory
manager, then sweeps client counts: each client is a closed loop (send,
wait, send) over a fixed query mix through its own TCP connection and
session lease.  Reports throughput and p50/p99 latency per client
count and writes ``BENCH_service.json`` (atomically).

Correctness gates (exit 1 on violation):

* differential equality: every query in the mix returns byte-identical
  results through the service (with churn running) as in-process;
* zero failed requests: shed requests (explicit ``OVERLOADED``) are
  counted separately and are acceptable at saturation; any other
  failure is not.

Usage::

    python benchmarks/bench_service.py            # full sweep
    python benchmarks/bench_service.py --smoke    # CI-sized sweep
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

QUERY_MIX = ["q1", "q6", "q3", "q12", "q14"]


def _canonical(result):
    return (tuple(result.columns), sorted(map(repr, result.rows)))


class _ClientLoop(threading.Thread):
    """One closed-loop client: query, record latency, repeat."""

    def __init__(self, port, duration, mix, workers, stop_event):
        super().__init__(daemon=True)
        self.port = port
        self.duration = duration
        self.mix = mix
        self.workers = workers
        self.stop_event = stop_event
        self.latencies = []
        self.shed = 0
        self.failed = 0
        self.errors = []

    def run(self):
        from repro.service.client import (
            ServiceClient,
            ServiceError,
            ServiceOverloadedError,
        )

        try:
            client = ServiceClient(port=self.port)
        except OSError as exc:
            self.failed += 1
            self.errors.append(f"connect: {exc}")
            return
        deadline = time.monotonic() + self.duration
        i = 0
        try:
            while time.monotonic() < deadline and not self.stop_event.is_set():
                name = self.mix[i % len(self.mix)]
                i += 1
                start = time.perf_counter()
                try:
                    client.query(name, workers=self.workers)
                except ServiceOverloadedError:
                    self.shed += 1
                    continue
                except (ServiceError, OSError) as exc:
                    self.failed += 1
                    self.errors.append(f"{name}: {exc}")
                    continue
                self.latencies.append(time.perf_counter() - start)
        finally:
            try:
                client.close()
            except Exception:
                pass


def _percentile(sorted_values, q):
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument(
        "--clients", type=int, nargs="*", default=None, help="client counts"
    )
    parser.add_argument("--max-concurrency", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_service.json")
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON payload"
    )
    args = parser.parse_args(argv)

    from repro.bench.harness import bench_scale_factor, write_json_atomic
    from repro.service.client import ServiceClient
    from repro.service.server import QueryService, ServiceServer
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    if args.smoke:
        sf = args.sf or 0.002
        duration = args.duration or 1.5
        client_counts = args.clients or [1, 2, 4]
    else:
        sf = args.sf or bench_scale_factor(0.01)
        duration = args.duration or 5.0
        client_counts = args.clients or [1, 4, 8, 16, 32]

    print(f"generating TPC-H SF={sf} ...")
    data = generate(sf, seed=42)
    collections = load_smc(data)
    manager = collections["_manager"]
    plain = {k: v for k, v in collections.items() if not k.startswith("_")}

    service = QueryService(
        collections,
        manager,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
    )
    churn = service.start_churn()
    server = ServiceServer(service).start()
    print(
        f"serving on port {server.port} "
        f"(max_concurrency={args.max_concurrency}, "
        f"queue_depth={args.queue_depth}, churn on)"
    )

    # -- differential gate: service vs in-process, churn running -------
    builders = dict(QUERIES)
    builders.update(EXTRA_QUERIES)
    mismatches = 0
    probe = ServiceClient(port=server.port)
    for name in QUERY_MIX:
        local = builders[name](plain).run(engine="compiled", params=DEFAULT_PARAMS)
        remote = probe.query(name, workers=2)
        if _canonical(local) != _canonical(remote):
            mismatches += 1
            print(f"MISMATCH {name}: service result diverged", file=sys.stderr)
    probe.close()
    print(f"differential gate: {len(QUERY_MIX)} queries, {mismatches} mismatches")

    # -- closed-loop sweep ---------------------------------------------
    records = []
    total_failed = 0
    for nclients in client_counts:
        stop_event = threading.Event()
        loops = [
            _ClientLoop(server.port, duration, QUERY_MIX, 1, stop_event)
            for __ in range(nclients)
        ]
        start = time.monotonic()
        for loop in loops:
            loop.start()
        for loop in loops:
            loop.join(timeout=duration + 30)
        elapsed = time.monotonic() - start
        stop_event.set()

        latencies = sorted(lat for loop in loops for lat in loop.latencies)
        completed = len(latencies)
        shed = sum(loop.shed for loop in loops)
        failed = sum(loop.failed for loop in loops)
        total_failed += failed
        for loop in loops:
            for err in loop.errors[:3]:
                print(f"  error: {err}", file=sys.stderr)
        throughput = completed / elapsed if elapsed > 0 else 0.0
        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)
        record = {
            "clients": nclients,
            "duration_s": round(elapsed, 3),
            "completed": completed,
            "shed": shed,
            "failed": failed,
            "throughput_qps": round(throughput, 2),
            "p50_ms": round(p50 * 1000, 3) if p50 is not None else None,
            "p99_ms": round(p99 * 1000, 3) if p99 is not None else None,
        }
        records.append(record)
        print(
            f"clients={nclients:>3}  qps={throughput:8.1f}  "
            f"p50={record['p50_ms']}ms  p99={record['p99_ms']}ms  "
            f"shed={shed}  failed={failed}"
        )

    churn_ops = churn.ops
    metrics_text = ServiceClient(port=server.port).metrics()
    scrape_lines = len(metrics_text.splitlines())
    server.stop()
    manager.close()
    print(f"churn: {churn_ops} mutations; metrics scrape: {scrape_lines} lines")

    if not args.no_json:
        payload = {
            "bench": "service",
            "scale_factor": sf,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "max_concurrency": args.max_concurrency,
            "queue_depth": args.queue_depth,
            "duration_per_point_s": duration,
            "query_mix": QUERY_MIX,
            "churn_mutations": churn_ops,
            "differential_mismatches": mismatches,
            "notes": (
                "Closed-loop clients over TCP with per-session epoch "
                "leases; background mutator churns a scratch collection "
                "on the served manager.  Shed = explicit OVERLOADED "
                "responses (acceptable at saturation); failed = any "
                "other error (must be zero)."
            ),
            "results": records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if mismatches:
        print(f"{mismatches} quer(ies) diverged through the service", file=sys.stderr)
        return 1
    if total_failed:
        print(f"{total_failed} non-shed request(s) failed", file=sys.stderr)
        return 1
    print("all queries matched in-process results; zero non-shed failures")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
