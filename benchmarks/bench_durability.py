"""Durability subsystem benchmark: WAL cost, recovery time, crash matrix.

Three measurements plus two correctness gates (exit 1 on violation):

* **Mutation throughput** — adds/updates/removes per second against a
  plain in-memory collection versus a durable store under each WAL
  fsync policy (``none`` / ``commit`` / ``always``), so the log's cost
  is quantified rather than assumed.
* **Recovery time vs log length** — how long ``DurableStore.open``
  takes to replay tails of increasing length.
* **Differential gate** — TPC-H loaded into a durable store, mutated,
  checkpointed mid-stream, then recovered into a fresh manager: every
  query in the mix must return byte-identical results live and after
  recovery.
* **Crash matrix** (always on with ``--smoke``) — the sanitizer's fault
  plan kills the store at every interesting point (mid-append,
  pre-fsync with power loss, checkpoint begin/renames); each crash must
  recover to a state whose TPC-H results are byte-identical to the
  never-crashed reference.

Usage::

    python benchmarks/bench_durability.py            # full run
    python benchmarks/bench_durability.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

QUERY_MIX = ["q1", "q6", "q3", "q12", "q14"]

#: (sanitizer event, power_loss) pairs the crash matrix injects.
CRASH_POINTS = [
    ("wal.append.mid", False),
    ("wal.fsync", True),
    ("checkpoint.begin", False),
    ("checkpoint.snapshot_rename", False),
    ("checkpoint.manifest_rename", False),
]


def _canonical(result):
    return (tuple(result.columns), sorted(map(repr, result.rows)))


def _define_schema():
    from repro.schema import Int64Field, Tabular, VarStringField

    class DurBenchRow(Tabular):
        k = Int64Field()
        val = Int64Field()
        tag = VarStringField()

    return DurBenchRow


def _mutate(collection, n, batcher=None):
    """A fixed add/update/remove-heavy workload of *n* primitive ops."""
    from contextlib import nullcontext

    handles = []
    ops = 0
    i = 0
    while ops < n:
        with batcher() if batcher else nullcontext():
            for __ in range(min(100, n - ops)):
                i += 1
                if i % 7 == 0 and handles:
                    collection.remove(handles.pop(i % len(handles)))
                elif i % 5 == 0 and handles:
                    handles[i % len(handles)].val = i
                else:
                    handles.append(
                        collection.add(k=i, val=i * 3, tag=f"tag-{i % 251}")
                    )
                ops += 1
    return ops


def bench_mutations(schema, n):
    from repro.core.collection import Collection
    from repro.durability import DurableStore
    from repro.memory.manager import MemoryManager

    records = []
    # Baseline: no WAL at all.
    manager = MemoryManager(string_dict=True)
    coll = Collection(schema, manager=manager)
    start = time.perf_counter()
    ops = _mutate(coll, n)
    elapsed = time.perf_counter() - start
    manager.close()
    records.append(
        {
            "config": "wal-off",
            "ops": ops,
            "elapsed_s": round(elapsed, 4),
            "ops_per_s": round(ops / elapsed, 1),
        }
    )
    print(f"  wal-off       {ops / elapsed:>10.0f} ops/s")

    for policy in ("none", "commit", "always"):
        root = tempfile.mkdtemp(prefix=f"durbench-{policy}-")
        try:
            manager = MemoryManager(string_dict=True)
            colls = {
                "rows": Collection(schema, manager=manager),
                "_manager": manager,
            }
            store = DurableStore.create(
                root, collections=colls, fsync_policy=policy
            )
            start = time.perf_counter()
            ops = _mutate(colls["rows"], n, batcher=store.batch)
            elapsed = time.perf_counter() - start
            stats = store.stats()
            store.close()
            manager.close()
            records.append(
                {
                    "config": f"wal-{policy}",
                    "ops": ops,
                    "elapsed_s": round(elapsed, 4),
                    "ops_per_s": round(ops / elapsed, 1),
                    "wal_bytes": stats["wal_bytes_total"],
                    "fsyncs": stats["wal_fsyncs_total"],
                }
            )
            print(
                f"  wal-{policy:<8} {ops / elapsed:>10.0f} ops/s   "
                f"({stats['wal_bytes_total']} bytes, "
                f"{stats['wal_fsyncs_total']} fsyncs)"
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return records


def bench_recovery(schema, lengths):
    from repro.core.collection import Collection
    from repro.durability import DurableStore
    from repro.memory.manager import MemoryManager

    records = []
    for n in lengths:
        root = tempfile.mkdtemp(prefix="durbench-rec-")
        try:
            manager = MemoryManager(string_dict=True)
            colls = {
                "rows": Collection(schema, manager=manager),
                "_manager": manager,
            }
            store = DurableStore.create(
                root, collections=colls, fsync_policy="none"
            )
            _mutate(colls["rows"], n, batcher=store.batch)
            live = sorted((h.k, h.val, h.tag) for h in colls["rows"])
            store.close()
            manager.close()

            start = time.perf_counter()
            reopened = DurableStore.open(root, fsync_policy="none")
            elapsed = time.perf_counter() - start
            recovered = sorted(
                (h.k, h.val, h.tag) for h in reopened.collections["rows"]
            )
            replayed = reopened.report.replayed
            reopened.close()
            if recovered != live:
                print(f"RECOVERY MISMATCH at n={n}", file=sys.stderr)
                return records, 1
            records.append(
                {
                    "log_ops": n,
                    "replayed_records": replayed,
                    "recovery_s": round(elapsed, 4),
                    "records_per_s": round(replayed / elapsed, 1),
                }
            )
            print(
                f"  {n:>7} ops  ->  {elapsed * 1000:8.1f} ms recovery "
                f"({replayed} records)"
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return records, 0


def _load_tpch_store(root, sf, schema):
    """TPC-H in a durable store plus a durable scratch collection."""
    from repro.core.collection import Collection
    from repro.durability import DurableStore
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc

    data = generate(sf, seed=42)
    collections = load_smc(data)
    collections["scratch"] = Collection(
        schema, manager=collections["_manager"], name="scratch"
    )
    store = DurableStore.create(
        root, collections=collections, fsync_policy="commit"
    )
    return store, collections


def _run_mix(collections):
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    builders = dict(QUERIES)
    builders.update(EXTRA_QUERIES)
    plain = {k: v for k, v in collections.items() if not k.startswith("_")}
    return {
        name: _canonical(
            builders[name](plain).run(engine="compiled", params=DEFAULT_PARAMS)
        )
        for name in QUERY_MIX
    }


def bench_differential(schema, sf, n_mutations):
    """Mutate + checkpoint mid-stream, recover, compare TPC-H answers."""
    from repro.durability import recover

    root = tempfile.mkdtemp(prefix="durbench-diff-")
    mismatches = 0
    try:
        store, collections = _load_tpch_store(root, sf, schema)
        _mutate(collections["scratch"], n_mutations // 2, batcher=store.batch)
        store.checkpoint()
        _mutate(collections["scratch"], n_mutations // 2, batcher=store.batch)
        reference = _run_mix(collections)
        scratch_live = sorted(
            (h.k, h.val, h.tag) for h in collections["scratch"]
        )
        store.close()
        collections["_manager"].close()

        recovered, report = recover(root)
        answers = _run_mix(recovered)
        scratch_rec = sorted(
            (h.k, h.val, h.tag) for h in recovered["scratch"]
        )
        for name in QUERY_MIX:
            if answers[name] != reference[name]:
                mismatches += 1
                print(f"MISMATCH {name} after recovery", file=sys.stderr)
        if scratch_rec != scratch_live:
            mismatches += 1
            print("MISMATCH scratch collection after recovery", file=sys.stderr)
        recovered["_manager"].close()
        print(
            f"  {len(QUERY_MIX)} queries byte-compared after recovery "
            f"({report.replayed} records replayed): {mismatches} mismatches"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return mismatches


def _crash_after(point, n_mutations):
    """How many firings of *point* to let pass before crashing.

    ``after`` counts events at the point itself: appends fire per
    record, fsyncs per group commit, checkpoint points once per
    checkpoint.
    """
    if point == "wal.append.mid":
        return n_mutations // 3
    if point == "wal.fsync":
        return 2
    return 0


def bench_crash_matrix(schema, sf, n_mutations):
    """Kill the store at each injected point; recovery must be exact."""
    from repro import sanitizer
    from repro.durability import recover
    from repro.errors import InjectedFaultError

    results = []
    failures = 0
    for point, power_loss in CRASH_POINTS:
        root = tempfile.mkdtemp(prefix="durbench-crash-")
        try:
            store, collections = _load_tpch_store(root, sf, schema)
            reference = _run_mix(collections)
            plan = sanitizer.FaultPlan().crash_at(
                point,
                after=_crash_after(point, n_mutations),
                power_loss=power_loss,
            )
            with sanitizer.enabled(faults=plan):
                crashed = False
                try:
                    _mutate(
                        collections["scratch"],
                        n_mutations,
                        batcher=store.batch,
                    )
                    store.checkpoint()
                except InjectedFaultError:
                    crashed = True
            # Simulated kill: drop the store without closing, then
            # recover from what reached the disk.
            collections["_manager"].close()
            recovered, report = recover(root)
            answers = _run_mix(recovered)
            ok = crashed and all(
                answers[name] == reference[name] for name in QUERY_MIX
            )
            recovered["_manager"].close()
            if not ok:
                failures += 1
            results.append(
                {
                    "point": point,
                    "power_loss": power_loss,
                    "crashed": crashed,
                    "recovered_records": report.replayed,
                    "tpch_identical": ok,
                }
            )
            print(
                f"  crash at {point:<28} power_loss={power_loss!s:<5} "
                f"-> {'ok' if ok else 'FAIL'} "
                f"({report.replayed} records replayed)"
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return results, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--mutations", type=int, default=None)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_durability.json")
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON payload"
    )
    args = parser.parse_args(argv)

    from repro.bench.harness import bench_scale_factor, write_json_atomic

    if args.smoke:
        sf = args.sf or 0.002
        n = args.mutations or 2000
        rec_lengths = [500, 2000]
    else:
        sf = args.sf or bench_scale_factor(0.01)
        n = args.mutations or 20000
        rec_lengths = [1000, 5000, 20000]

    schema = _define_schema()

    print(f"mutation throughput ({n} ops per config):")
    throughput = bench_mutations(schema, n)

    print("recovery time vs log length:")
    recovery, rec_failures = bench_recovery(schema, rec_lengths)

    print(f"differential gate (TPC-H SF={sf}):")
    mismatches = bench_differential(schema, sf, n // 4)

    print("crash matrix:")
    crashes, crash_failures = bench_crash_matrix(schema, sf, max(n // 4, 300))

    if not args.no_json:
        payload = {
            "bench": "durability",
            "scale_factor": sf,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "mutations": n,
            "query_mix": QUERY_MIX,
            "mutation_throughput": throughput,
            "recovery": recovery,
            "differential_mismatches": mismatches,
            "crash_matrix": crashes,
            "notes": (
                "wal-off is a plain in-memory collection; wal-* pay "
                "logging under the named fsync policy with 100-op group "
                "commits.  The crash matrix injects sanitizer faults at "
                "each WAL/checkpoint point and requires recovered TPC-H "
                "answers to be byte-identical to the never-crashed "
                "reference."
            ),
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if mismatches or rec_failures or crash_failures:
        print(
            f"gate violations: differential={mismatches} "
            f"recovery={rec_failures} crash={crash_failures}",
            file=sys.stderr,
        )
        return 1
    print("all gates passed: recovery is byte-exact at every crash point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
