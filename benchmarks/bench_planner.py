"""Cost-based planner ablation bench + memory-governor churn gate.

Runs every TPC-H query (q1-q7, q10, q12, q14) over a columnar SMC twice
per configuration — once with the cost-based planner (conjunct
reordering, access-path choice, adaptive morsels) and once with the
``--no-planner`` ablation (declaration-order predicates, no access-path
choice; zone pruning stays on in both arms, so the measured delta is
the planner's decisions alone).  For each query it records:

* best-of-N wall time for both arms and the speedup ratio;
* ``matches_baseline`` — the planned result must equal the ablation
  result row for row (order-insensitive); any mismatch is a hard
  failure (exit 1), timings never are;
* the planner's estimated output rows vs the rows actually matched
  (from the execution-feedback registry) and the relative error.

A second phase churns the unified memory governor: a plan cache and the
collections' string-dictionary match caches share one deliberately tiny
byte budget while a key-churning workload drives misses into both
tenants.  After every rebalance each tenant's usage must sit at or
under its granted ceiling and the total at or under the budget; a
breach is a hard failure.

The full sweep writes ``BENCH_planner.json`` at the repo root;
``--smoke`` runs a reduced matrix (tiny scale factor, 2 repeats, no
JSON) for CI.

Run as::

    PYTHONPATH=src python benchmarks/bench_planner.py [--smoke]
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(repr, result.rows)))


def _best_of(fn, repeat):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Phase 1: planner vs --no-planner ablation over TPC-H
# ----------------------------------------------------------------------


def run_query_sweep(collections, repeat):
    from repro.query import planner as planner_mod
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    all_queries = dict(QUERIES)
    all_queries.update(EXTRA_QUERIES)
    records = []
    failures = []
    for name, builder in all_queries.items():
        query = builder(collections)

        def planned():
            return query.run(params=DEFAULT_PARAMS, planner=True)

        def ablated():
            return query.run(params=DEFAULT_PARAMS, planner=False)

        baseline = _canonical(ablated())
        result = _canonical(planned())
        matches = result == baseline
        if not matches:
            failures.append(f"{name}: planned result differs from ablation")
        t_on = _best_of(planned, repeat)
        t_off = _best_of(ablated, repeat)
        obs = planner_mod.observation(query.signature())
        est_rows = actual_rows = error = None
        if obs is not None and obs.get("runs"):
            est_rows = int(obs["est_rows"])
            actual_rows = int(obs["rows_matched"])
            error = abs(est_rows - actual_rows) / max(1, actual_rows)
        rec = {
            "query": name,
            "t_planner_ms": round(t_on * 1e3, 3),
            "t_no_planner_ms": round(t_off * 1e3, 3),
            "speedup_vs_no_planner": round(t_off / t_on, 3),
            "matches_baseline": matches,
            "est_rows": est_rows,
            "actual_rows": actual_rows,
            "row_estimate_error": None if error is None else round(error, 4),
        }
        records.append(rec)
        err = "  n/a" if error is None else f"{error:5.2f}"
        print(
            f"  {name:>4}: planner={t_on * 1e3:7.1f}ms "
            f"ablation={t_off * 1e3:7.1f}ms "
            f"speedup={rec['speedup_vs_no_planner']:5.2f}x "
            f"est/actual={est_rows}/{actual_rows} err={err} "
            f"match={'ok' if matches else 'FAIL'}",
            flush=True,
        )
    return records, failures


# ----------------------------------------------------------------------
# Phase 2: governor ceiling under cache churn
# ----------------------------------------------------------------------

#: Deliberately tiny budget so the churn workload overruns it without
#: eviction — the phase gates on eviction keeping every ceiling honored.
GOVERNOR_BUDGET = 96 * 1024

CHURN_ROUNDS = 160

#: Above the ceiling by this relative slack counts as a breach.  Tenant
#: usage is sampled immediately after a rebalance, so exact equality is
#: the expectation; the epsilon only absorbs integer floor arithmetic.
CEILING_SLACK = 1.01


def run_governor_churn(collections):
    from repro.memory.governor import MemoryGovernor
    from repro.service.plancache import PlanCache
    from repro.tpch.schema import Lineitem as L

    governor = MemoryGovernor(GOVERNOR_BUDGET, rebalance_every=8)
    plans = PlanCache()
    governor.register(
        "plan_cache",
        usage=plans.usage_bytes,
        counters=plans.counters,
        set_budget=plans.set_budget,
    )
    dicts = [
        sd
        for coll in collections.values()
        if (sd := getattr(coll, "strdict", None)) is not None
    ]
    governor.register(
        "string_dicts",
        usage=lambda: sum(d.cache_bytes for d in dicts),
        counters=lambda: (
            sum(d.match_hits for d in dicts),
            sum(d.match_misses for d in dicts),
        ),
        set_budget=lambda n: [
            d.set_match_budget(max(1, n // len(dicts))) for d in dicts
        ],
        weight=2.0,
    )
    lineitem = collections["lineitem"]
    needles = ["the", "slyly", "furious", "pending", "quick", "regular"]
    breaches = []
    max_fraction = 0.0
    for i in range(CHURN_ROUNDS):
        # Plan-cache churn: a rolling key population twice the nominal
        # capacity forces steady misses and oldest-first evictions.
        key = PlanCache.key_for(f"churn-{i % 48}", "columnar", "dict", "compiled")
        plans.get_or_build(key, lambda: {"round": i})
        if i % 4 == 0:
            # Match-cache churn: every distinct needle caches one
            # address set per dictionary; cycling needles grows usage
            # until the governor's ceiling forces eviction.
            needle = needles[(i // 4) % len(needles)]
            lineitem.query().where(L.comment.contains(needle)).count(
                planner=True
            )
        if governor.maybe_rebalance():
            snap = governor.snapshot()
            total = snap["usage_bytes"]
            max_fraction = max(max_fraction, total / GOVERNOR_BUDGET)
            if total > GOVERNOR_BUDGET * CEILING_SLACK:
                breaches.append(
                    f"round {i}: total usage {total} over budget "
                    f"{GOVERNOR_BUDGET}"
                )
            for tname, t in snap["tenants"].items():
                if t["usage_bytes"] > t["share_bytes"] * CEILING_SLACK:
                    breaches.append(
                        f"round {i}: tenant {tname} usage "
                        f"{t['usage_bytes']} over share {t['share_bytes']}"
                    )
    governor.rebalance()
    final = governor.snapshot()
    record = {
        "budget_bytes": GOVERNOR_BUDGET,
        "churn_rounds": CHURN_ROUNDS,
        "rebalances": final["rebalances"],
        "final_usage_bytes": final["usage_bytes"],
        "max_usage_fraction": round(max_fraction, 4),
        "plan_capacity_evictions": plans.capacity_evictions,
        "ceiling_honored": not breaches,
        "tenants": final["tenants"],
    }
    print(
        f"  governor: {final['rebalances']} rebalances, "
        f"peak usage {max_fraction:.0%} of {GOVERNOR_BUDGET} B, "
        f"final {final['usage_bytes']} B "
        f"({'ok' if not breaches else 'BREACH'})",
        flush=True,
    )
    return record, breaches


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=None, help="TPC-H scale factor")
    parser.add_argument("--repeat", type=int, default=None, help="timing repeats")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI: tiny scale, 2 repeats, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_planner.json"),
        help="output JSON path (full mode only)",
    )
    args = parser.parse_args()
    sf = args.sf if args.sf is not None else (0.01 if args.smoke else 0.05)
    repeat = args.repeat if args.repeat is not None else (2 if args.smoke else 7)

    from repro.bench.harness import write_json_atomic
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc

    print(f"generating TPC-H SF={sf} ...", flush=True)
    collections = load_smc(generate(sf, seed=42), columnar=True)
    manager = collections["_manager"]
    try:
        print(f"planner vs ablation ({repeat} repeats, serial):", flush=True)
        records, failures = run_query_sweep(collections, repeat)
        print("governor churn:", flush=True)
        governor_record, breaches = run_governor_churn(collections)
        failures.extend(breaches)

        fast = [r for r in records if r["speedup_vs_no_planner"] >= 1.5]
        payload = {
            "bench": "planner",
            "scale_factor": sf,
            "repeat": repeat,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "queries": records,
            "governor": governor_record,
            "gate": {
                "queries_ge_1_5x": sorted(r["query"] for r in fast),
                "required_ge_1_5x": 3,
                "speedup_gate_met": len(fast) >= 3,
                "all_match_baseline": all(
                    r["matches_baseline"] for r in records
                ),
                "governor_ceiling_honored": governor_record[
                    "ceiling_honored"
                ],
            },
        }
        if not args.smoke:
            write_json_atomic(args.out, payload)
            print(f"wrote {args.out}", flush=True)
        if failures:
            print("FAILURES:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("all configurations match the ablation baseline", flush=True)
        return 0
    finally:
        manager.close()


if __name__ == "__main__":
    sys.exit(main())
