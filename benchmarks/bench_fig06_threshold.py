"""Figure 6 — sensitivity to the reclamation (limbo) threshold.

The paper varies the fraction of limbo slots a block may accumulate
before joining the reclamation queue, and reports (normalised to the
maximum): allocation/removal performance, query performance, and total
memory size.  Expected shape: memory grows with the threshold,
alloc/removal cost falls slowly, query performance dips around 50%
occupancy, and 5% is a good default.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.bench.workloads import lineitem_values
from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.query.builder import Sum
from repro.tpch.schema import Lineitem

THRESHOLDS = [0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00]
_POPULATION = 20_000
_CHURN_ROUNDS = 4


def _build_collection(threshold: float):
    manager = MemoryManager(block_shift=16, reclamation_threshold=threshold)
    coll = Collection(Lineitem, manager=manager)
    rnd = random.Random(13)
    live = [coll.add(**lineitem_values(rnd, i)) for i in range(_POPULATION)]
    return manager, coll, live, rnd


def _churn(coll, live, rnd):
    """One churn round: remove 50%, re-insert the same volume."""
    rnd.shuffle(live)
    cut = len(live) // 2
    victims, live = live[:cut], live[cut:]
    for handle in victims:
        coll.remove(handle)
    for i in range(cut):
        live.append(coll.add(**lineitem_values(rnd, 10**7 + i)))
    return live


def _measure(threshold: float):
    manager, coll, live, rnd = _build_collection(threshold)
    ops = time_callable(
        lambda: _churn_rounds(coll, live, rnd), repeat=1
    )
    query = coll.query().aggregate(q=Sum(Lineitem.quantity))
    query_time = time_callable(lambda: query.run(), repeat=3)
    memory = coll.memory_bytes()
    manager.close()
    return ops, query_time, memory


def _churn_rounds(coll, live, rnd):
    for __ in range(_CHURN_ROUNDS):
        live = _churn(coll, live, rnd)


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 6",
        "reclamation-threshold sensitivity (normalised to max)",
        "normalised",
    )
    yield rep
    rep.print()


def test_fig06_threshold_sweep(report, benchmark):
    def _run():
            raw = {t: _measure(t) for t in THRESHOLDS}
            max_ops = max(v[0] for v in raw.values())
            max_q = max(v[1] for v in raw.values())
            max_mem = max(v[2] for v in raw.values())
            for t, (ops, q, mem) in raw.items():
                x = f"{int(t * 100)}%"
                report.record("alloc/removal time", x, ops / max_ops)
                report.record("query time", x, q / max_q)
                report.record("total memory size", x, mem / max_mem)
            # Paper shape: memory grows with the threshold...
            assert raw[1.00][2] >= raw[0.01][2]
            # ...and churn does not get more expensive with a looser threshold.
            assert raw[1.00][0] <= raw[0.01][0] * 1.5

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("threshold", [0.05, 0.50])
def test_fig06_churn_benchmark(benchmark, threshold):
    manager, coll, live, rnd = _build_collection(threshold)
    state = {"live": live}

    def one_round():
        state["live"] = _churn(coll, state["live"], rnd)

    benchmark(one_round)
    manager.close()
