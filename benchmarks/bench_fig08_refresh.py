"""Figure 8 — TPC-H refresh-stream throughput.

Two stream kinds run with equal frequency: inserts of 0.1% of the
initial lineitem population, and single-enumeration removals of 0.1%
picked by ``orderkey`` through a hash set.  The paper reports streams per
minute for 1/2/4 threads; SMCs beat ConcurrentDictionary (List<T> is not
thread-safe and only appears in the single-threaded column).
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import FigureReport
from repro.bench.workloads import RefreshStreams, lineitem_values
from repro.core.collection import Collection
from repro.managed.collections_ import ManagedDictionary, ManagedList
from repro.memory.manager import MemoryManager
from repro.tpch.schema import Lineitem

_POPULATION = 10_000
_SECONDS = 0.6
_THREADS = (1, 2, 4)


def _smc_streams():
    manager = MemoryManager()
    coll = Collection(Lineitem, manager=manager)
    rnd = random.Random(4)
    for i in range(_POPULATION):
        coll.add(**lineitem_values(rnd, i))

    def insert(values):
        coll.add(**values)

    def keys():
        return [h.orderkey for h in coll]

    def remove_by_orderkeys(victims):
        removed = 0
        for h in list(coll):
            if h.orderkey in victims:
                coll.remove(h)
                removed += 1
        return removed

    streams = RefreshStreams(insert, keys, remove_by_orderkeys, _POPULATION)
    return manager, streams


def _dict_streams():
    coll = ManagedDictionary(Lineitem, key="orderkey")
    rnd = random.Random(4)
    for i in range(_POPULATION):
        coll.add(**lineitem_values(rnd, i))

    def insert(values):
        coll.add(**values)

    def keys():
        return [r.orderkey for r in coll.records_list()]

    def remove_by_orderkeys(victims):
        removed = 0
        for r in coll.records_list():
            if r.orderkey in victims and coll.remove(r.orderkey):
                removed += 1
        return removed

    streams = RefreshStreams(insert, keys, remove_by_orderkeys, _POPULATION)
    return None, streams


def _list_streams():
    coll = ManagedList(Lineitem)
    rnd = random.Random(4)
    for i in range(_POPULATION):
        coll.add(**lineitem_values(rnd, i))

    def insert(values):
        coll.add(**values)

    def keys():
        return [r.orderkey for r in coll]

    def remove_by_orderkeys(victims):
        return coll.remove_where(lambda r: r.orderkey in victims)

    streams = RefreshStreams(insert, keys, remove_by_orderkeys, _POPULATION)
    return None, streams


@pytest.fixture(scope="module")
def report():
    rep = FigureReport("Figure 8", "refresh-stream throughput", "streams/minute")
    yield rep
    rep.print()


def test_fig08_streams(report, benchmark):
    def _run():
            results = {}
            for threads in _THREADS:
                manager, smc = _smc_streams()
                results[("SMC", threads)] = smc.throughput(_SECONDS, threads)
                if manager:
                    manager.close()
                __, md = _dict_streams()
                results[("C. Dictionary", threads)] = md.throughput(_SECONDS, threads)
                if threads == 1:  # List<T> is not thread-safe (paper note)
                    __, ml = _list_streams()
                    results[("List", threads)] = ml.throughput(_SECONDS, threads)
            for (series, threads), rate in results.items():
                report.record(series, f"{threads}T", rate)
            for threads in _THREADS:
                assert results[("SMC", threads)] > 0
                assert results[("C. Dictionary", threads)] > 0
            # Paper shape: SMCs sustain at least comparable refresh throughput.
            assert (
                results[("SMC", 1)]
                > results[("C. Dictionary", 1)] * 0.3
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("kind", ["smc", "dict", "list"])
def test_fig08_single_stream_benchmark(benchmark, kind):
    factories = {
        "smc": _smc_streams,
        "dict": _dict_streams,
        "list": _list_streams,
    }
    manager, streams = factories[kind]()

    def one_pair():
        streams.run_insert_stream()
        streams.run_delete_stream()

    benchmark(one_pair)
    if manager:
        manager.close()
