"""Ablation: what if SMCs had the comparator's clustered index?

Figure 13's explanation for the RDBMS wins is its clustered indexes on
the date columns.  This bench adds the missing piece of that story: the
same date-range + sum workload (a Q6 skeleton) executed as

* an SMC block scan (the paper's approach — vectorised here),
* an SMC *sorted-index* range lookup (this repo's extension),
* the comparator's clustered-index range scan.

Expected: the index closes most of the gap the comparator enjoys on
highly selective date ranges, while the scan wins as selectivity grows.
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.bench.workloads import lineitem_values
from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.query.expressions import param
from repro.rdbms.table import ColumnTable
from repro.tpch.schema import Lineitem

_N = 30_000
L = Lineitem


@pytest.fixture(scope="module")
def setup():
    manager = MemoryManager()
    coll = Collection(Lineitem, manager=manager)
    rnd = random.Random(17)
    rows = [lineitem_values(rnd, i) for i in range(_N)]
    for values in rows:
        coll.add(**values)
    index = coll.create_sorted_index("shipdate")
    table = ColumnTable.from_rows(
        "lineitem", rows, ["shipdate", "quantity"]
    )
    table.create_clustered_index("shipdate")
    yield coll, index, table
    manager.close()


def _windows():
    base = datetime.date(1994, 1, 1)
    return {
        "1 day": (base, base + datetime.timedelta(days=1)),
        "1 month": (base, base + datetime.timedelta(days=30)),
        "2 years": (base, base + datetime.timedelta(days=730)),
    }


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Ablation (index)", "date-range sum: scan vs index vs RDBMS", "ms"
    )
    yield rep
    rep.print()


def test_ablation_index_vs_scan(report, setup, benchmark):
    def _run():
        coll, index, table = setup
        import numpy as np

        from repro.schema.fields import date_to_days

        results = {}
        for label, (lo, hi) in _windows().items():
            scan = time_callable(
                lambda: coll.query()
                .where(L.shipdate >= param("lo"))
                .where(L.shipdate < param("hi"))
                .sum(L.quantity, lo=lo, hi=hi),
                repeat=3,
            )

            def indexed(lo=lo, hi=hi):
                return sum(
                    h.quantity for h in index.range(lo, hi, hi_open=True)
                )

            idx = time_callable(indexed, repeat=3)

            def rdbms(lo=lo, hi=hi):
                rows = table.range_scan(
                    "shipdate", date_to_days(lo), date_to_days(hi), hi_open=True
                )
                return int(np.sum(table.column("quantity", rows)))

            db = time_callable(rdbms, repeat=3)
            report.record("SMC scan", label, scan * 1000)
            report.record("SMC sorted index", label, idx * 1000)
            report.record("RDBMS clustered index", label, db * 1000)
            results[label] = (scan, idx, db)
            # Sanity: all three agree (RDBMS sums raw scale-2 ints).
            from decimal import Decimal

            expected = indexed()
            assert Decimal(rdbms()).scaleb(-2) == expected
        # The index must beat the scan on the most selective window; wide
        # windows favour the vectorised scan (handles cost per hit).
        scan, idx, __ = results["1 day"]
        assert idx < scan

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_ablation_index_point_benchmark(benchmark, setup):
    coll, index, __ = setup
    lo = datetime.date(1994, 6, 1)
    hi = lo + datetime.timedelta(days=7)
    benchmark(
        lambda: sum(h.quantity for h in index.range(lo, hi, hi_open=True))
    )
