"""Morsel-parallel scan + zone-map pruning sweep (standalone bench).

Sweeps worker counts (1/2/4/8) crossed with zone pruning on/off over
three scan-dominated queries:

* ``q1``  — TPC-H pricing summary (wide grouped aggregation, barely
  selective: the zone tests cannot prune much);
* ``q6``  — TPC-H forecast revenue (conjunctive range predicates on
  shipdate/discount/quantity: moderate pruning);
* ``selective`` — a narrow ``orderkey BETWEEN`` band.  ``orderkey`` is
  monotone with insertion order, so block zones partition the key space
  and most blocks are pruned — the best case for zone maps.

Every configuration's result is checked for equality against the serial
unpruned baseline; a mismatch is a hard failure (exit code 1), timings
never are.  The full sweep writes ``BENCH_parallel_scan.json`` at the
repo root; ``--smoke`` runs a reduced matrix (workers 1/4, tiny scale
factor, no JSON) for CI.

Run as::

    PYTHONPATH=src python benchmarks/bench_parallel_scan.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _selective_query(collections):
    """Narrow orderkey band: prunes every block outside the band."""
    from repro.query.builder import Sum
    from repro.query.expressions import param
    from repro.tpch.schema import Lineitem as L

    return (
        collections["lineitem"]
        .query()
        .where(L.orderkey.between(param("sel_lo"), param("sel_hi")))
        .aggregate(n_qty=Sum(L.quantity))
    )


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _prune_counters(manager):
    extra = manager.stats.extra
    return (
        extra.get("zone_pruned_blocks", 0),
        extra.get("zone_scanned_blocks", 0),
    )


def run_sweep(sf, worker_counts, repeat, smoke):
    from repro.bench.harness import time_callable, write_json_atomic
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

    print(f"generating TPC-H SF={sf} ...", flush=True)
    collections = load_smc(generate(sf, seed=42), columnar=True)
    manager = collections["_manager"]

    hi_key = max(h.orderkey for h in collections["orders"])
    params = dict(DEFAULT_PARAMS)
    # ~2% band in the middle of the key space.
    params["sel_lo"] = int(hi_key * 0.49)
    params["sel_hi"] = int(hi_key * 0.51)

    queries = {
        "q1": QUERIES["q1"](collections),
        "q6": QUERIES["q6"](collections),
        "selective": _selective_query(collections),
    }

    records = []
    mismatches = 0
    for name, query in queries.items():
        baseline = query.run(params=params, workers=1, prune=False)
        base_rows = _canonical(baseline)
        base_time = None
        for workers in worker_counts:
            for prune in (False, True):
                p0, s0 = _prune_counters(manager)
                result = query.run(params=params, workers=workers, prune=prune)
                p1, s1 = _prune_counters(manager)
                match = _canonical(result) == base_rows
                if not match:
                    mismatches += 1
                    print(
                        f"RESULT MISMATCH: {name} workers={workers} prune={prune}",
                        file=sys.stderr,
                    )
                seconds = time_callable(
                    lambda q=query, w=workers, pr=prune: q.run(
                        params=params, workers=w, prune=pr
                    ),
                    repeat=repeat,
                )
                if workers == 1 and not prune:
                    base_time = seconds
                record = {
                    "query": name,
                    "workers": workers,
                    "prune": prune,
                    "seconds": round(seconds, 6),
                    "speedup_vs_serial_unpruned": round(base_time / seconds, 3),
                    "pruned_blocks": p1 - p0,
                    "scanned_blocks": s1 - s0,
                    "matches_baseline": match,
                }
                records.append(record)
                print(
                    f"  {name:<10} workers={workers} prune={int(prune)} "
                    f"{seconds * 1000:8.1f} ms  "
                    f"x{record['speedup_vs_serial_unpruned']:<6} "
                    f"pruned {record['pruned_blocks']}/{record['pruned_blocks'] + record['scanned_blocks']}",
                    flush=True,
                )
    manager.close()
    return records, mismatches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=None, help="TPC-H scale factor")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI: correctness gate only, no JSON output",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts to sweep, or 'auto' for "
        "1 and os.cpu_count() (honest on single-core hosts)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_parallel_scan.json")
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sf = args.sf or 0.002
        worker_counts = [1, 4]
        repeat = 1
    else:
        sf = args.sf or float(os.environ.get("REPRO_BENCH_SF", 0.02))
        worker_counts = [1, 2, 4, 8]
        repeat = args.repeat
    if args.workers:
        if args.workers == "auto":
            ncpu = os.cpu_count() or 1
            worker_counts = sorted({1, ncpu})
        else:
            worker_counts = [int(w) for w in args.workers.split(",")]

    records, mismatches = run_sweep(sf, worker_counts, repeat, args.smoke)

    if not args.smoke:
        from repro.bench.harness import write_json_atomic

        payload = {
            "bench": "parallel_scan",
            "scale_factor": sf,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "note": (
                "Timings recorded on the available hardware; with a single "
                "CPU core, morsel parallelism cannot show wall-clock speedup "
                "(workers serialise on the core and on the GIL) — the "
                "parallel configurations exist to prove result equality and "
                "protocol safety.  Zone-map pruning speedups are "
                "core-count-independent."
            ),
            "results": records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if mismatches:
        print(f"{mismatches} configuration(s) diverged from baseline", file=sys.stderr)
        return 1
    print("all configurations matched the serial unpruned baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
