"""Figure 12 — direct pointers and columnar storage.

TPC-H Q1–Q6 on row-layout SMCs (indirect references), direct-pointer
SMCs (section 6) and columnar SMCs (section 4.1), relative to the
row/indirect baseline.  Expected shape: direct pointers help queries
that chase references (Q5 most); columnar storage helps the
scan-dominated queries further.

Known divergence (see EXPERIMENTS.md): in this substrate the indirection
table is a contiguous NumPy array, so an indirect hop costs one cheap
fancy-index instead of a random DRAM access — the direct-pointer gain is
therefore much smaller than on hardware.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

QNAMES = ["q1", "q2", "q3", "q4", "q5", "q6"]


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 12",
        "direct pointers & columnar storage, relative to SMC",
        "x SMC",
    )
    yield rep
    rep.print()


def _time_query(collections, qname) -> float:
    query = QUERIES[qname](collections)
    return time_callable(lambda: query.run(params=DEFAULT_PARAMS), repeat=3)


def test_fig12_relative_times(report, smc, smc_direct, smc_columnar, benchmark):
    def _run():
            for qname in QNAMES:
                base = _time_query(smc, qname)
                report.record("SMC", qname, 1.0)
                report.record(
                    "SMC (direct)", qname, _time_query(smc_direct, qname) / base
                )
                report.record(
                    "SMC (columnar)", qname, _time_query(smc_columnar, qname) / base
                )
            # Columnar storage must help (or at least match) the scan-heavy
            # queries; margins absorb timer noise at small scale.
            assert report.series["SMC (columnar)"].value_at("q1") < 1.15
            assert report.series["SMC (columnar)"].value_at("q6") < 1.15
            # Direct pointers must never hurt the scan-only queries materially.
            assert report.series["SMC (direct)"].value_at("q1") < 1.4
            assert report.series["SMC (direct)"].value_at("q6") < 1.4

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("qname", QNAMES)
def test_fig12_columnar_benchmark(benchmark, smc_columnar, qname):
    query = QUERIES[qname](smc_columnar)
    benchmark(lambda: query.run(params=DEFAULT_PARAMS))


@pytest.mark.parametrize("qname", QNAMES)
def test_fig12_direct_benchmark(benchmark, smc_direct, qname):
    query = QUERIES[qname](smc_direct)
    benchmark(lambda: query.run(params=DEFAULT_PARAMS))
