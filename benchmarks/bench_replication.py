"""Read-scaling and catch-up benchmark for the replication fleet.

Starts an in-process :class:`Fleet` (one writer, N WAL-shipping read
replicas) over a freshly generated TPC-H dataset, keeps a background
writer committing batches through the router, then measures three
things:

* **read scaling** — aggregate closed-loop read throughput through
  :class:`RoutedClient` as the replica count grows (1, 2, 4), with the
  same client count per point, so added replicas are the only variable;
* **apply lag** — the distribution (p50/p99) of each replica's
  ``lag_records`` watermark sampled over the wire via the ``lsn`` op
  while the writer runs;
* **catch-up** — time for a fresh replica to join (clone + tail replay)
  as a function of the committed tail length accumulated before it
  joins.

Correctness gates (exit 1 on violation):

* differential equality: every query in the mix returns byte-identical
  results on the primary and on every replica as in-process, with the
  writer churning a replicated scratch collection;
* zero failed requests: reads may redirect on STALE_READ (counted),
  but any other failure is fatal.

Usage::

    python benchmarks/bench_replication.py            # full sweep
    python benchmarks/bench_replication.py --smoke    # CI-sized sweep
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

QUERY_MIX = ["q1", "q6", "q3", "q12", "q14"]


def _canonical(result):
    return (tuple(result.columns), sorted(map(repr, result.rows)))


def _percentile(sorted_values, q):
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


class _ReadLoop(threading.Thread):
    """One closed-loop reader through its own fleet router."""

    def __init__(self, endpoints, duration, mix, bound, stop_event):
        super().__init__(daemon=True)
        self.endpoints = endpoints
        self.duration = duration
        self.mix = mix
        self.bound = bound
        self.stop_event = stop_event
        self.completed = 0
        self.redirects = 0
        self.failed = 0
        self.errors = []

    def run(self):
        from repro.service.client import RoutedClient, ServiceError

        try:
            router = RoutedClient(
                self.endpoints, staleness_bound=self.bound, stale_wait=2.0
            )
        except Exception as exc:  # noqa: BLE001 - startup failure is fatal
            self.failed += 1
            self.errors.append(f"connect: {exc}")
            return
        deadline = time.monotonic() + self.duration
        i = 0
        try:
            while (
                time.monotonic() < deadline
                and not self.stop_event.is_set()
            ):
                name = self.mix[i % len(self.mix)]
                i += 1
                try:
                    router.query(name)
                except (ServiceError, OSError) as exc:
                    self.failed += 1
                    self.errors.append(f"{name}: {exc}")
                    continue
                self.completed += 1
            self.redirects = router.redirects
        finally:
            router.close()


class _WriteLoop(threading.Thread):
    """Background writer: replicated churn on a scratch collection."""

    def __init__(self, endpoints, stop_event, pace=0.002):
        super().__init__(daemon=True)
        self.endpoints = endpoints
        self.stop_event = stop_event
        self.pace = pace
        self.committed = 0
        self.errors = []

    def run(self):
        from repro.service.client import RoutedClient

        router = RoutedClient(self.endpoints)
        i = 0
        try:
            while not self.stop_event.is_set():
                try:
                    entry = router.add(
                        "scratch", text=f"churn-{i}", stars=i % 5
                    )
                    if i % 5 == 0:
                        router.remove("scratch", entry)
                    self.committed += 1
                except Exception as exc:  # noqa: BLE001 - gated below
                    self.errors.append(str(exc))
                    if len(self.errors) > 10:
                        return
                i += 1
                if self.pace:
                    time.sleep(self.pace)
        finally:
            router.close()


class _LagSampler(threading.Thread):
    """Samples each replica's lag over the wire via the ``lsn`` op."""

    def __init__(self, replica_endpoints, stop_event, period=0.02):
        super().__init__(daemon=True)
        self.replica_endpoints = replica_endpoints
        self.stop_event = stop_event
        self.period = period
        self.samples = []

    def run(self):
        from repro.service.client import ServiceClient

        clients = [
            ServiceClient(host, port, open_session=False)
            for host, port in self.replica_endpoints
        ]
        try:
            while not self.stop_event.is_set():
                for client in clients:
                    try:
                        reply = client.call({"op": "lsn"})
                    except Exception:  # noqa: BLE001 - sampler best-effort
                        continue
                    self.samples.append(int(reply.get("lag_records", 0)))
                time.sleep(self.period)
        finally:
            for client in clients:
                try:
                    client.close()
                except Exception:
                    pass


def _build_fleet(root, data, replicas):
    from repro.core.collection import Collection
    from repro.service.fleet import Fleet
    from repro.tpch.loader import load_smc
    from tests.schemas import TNote

    colls = load_smc(data)
    colls["scratch"] = Collection(
        TNote, manager=colls["_manager"], name="scratch"
    )
    return Fleet(
        str(root),
        collections=colls,
        replicas=replicas,
        fsync_policy="none",
        poll_wait=0.05,
        max_concurrency=8,
    ).start()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument(
        "--replicas", type=int, nargs="*", default=None,
        help="replica counts for the read-scaling sweep",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_replication.json")
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON payload"
    )
    args = parser.parse_args(argv)

    import tempfile

    sys.path.insert(0, str(REPO_ROOT))  # tests.schemas for the scratch rows

    from repro.bench.harness import bench_scale_factor, write_json_atomic
    from repro.service.client import ServiceClient
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    if args.smoke:
        sf = args.sf or 0.002
        duration = args.duration or 1.5
        replica_counts = args.replicas or [1, 2]
        tail_points = [100, 300]
    else:
        sf = args.sf or bench_scale_factor(0.01)
        duration = args.duration or 5.0
        replica_counts = args.replicas or [1, 2, 4]
        tail_points = [200, 800, 2000]

    print(f"generating TPC-H SF={sf} ...")
    data = generate(sf, seed=42)

    baseline_colls = load_smc(data)
    plain = {
        k: v for k, v in baseline_colls.items() if not k.startswith("_")
    }
    builders = dict(QUERIES)
    builders.update(EXTRA_QUERIES)
    baselines = {
        name: _canonical(
            builders[name](plain).run(
                engine="compiled", params=DEFAULT_PARAMS
            )
        )
        for name in QUERY_MIX
    }
    baseline_colls["_manager"].close()

    tmp = tempfile.TemporaryDirectory(prefix="bench-repl-")
    mismatches = 0
    total_failed = 0
    scaling_records = []
    lag_records = []

    # -- read scaling + apply lag + differential gate -------------------
    for nreplicas in replica_counts:
        fleet = _build_fleet(
            Path(tmp.name) / f"fleet-{nreplicas}", data, nreplicas
        )
        try:
            fleet.wait_caught_up()
            stop_event = threading.Event()
            writer = _WriteLoop(fleet.endpoints(), stop_event)
            writer.start()
            sampler = _LagSampler(
                [n.endpoint for n in fleet.nodes if n is not fleet.primary],
                stop_event,
            )
            sampler.start()

            # Differential gate under replicated churn, on every node.
            for node in fleet.nodes:
                with ServiceClient(port=node.port) as probe:
                    for name in QUERY_MIX:
                        remote = probe.query(name)
                        if _canonical(remote) != baselines[name]:
                            mismatches += 1
                            print(
                                f"MISMATCH {name} on {node.name}",
                                file=sys.stderr,
                            )

            loops = [
                _ReadLoop(
                    fleet.endpoints(), duration, QUERY_MIX, 64, stop_event
                )
                for __ in range(args.clients)
            ]
            start = time.monotonic()
            for loop in loops:
                loop.start()
            for loop in loops:
                loop.join(timeout=duration + 30)
            elapsed = time.monotonic() - start
            stop_event.set()
            writer.join(timeout=10)
            sampler.join(timeout=10)

            completed = sum(loop.completed for loop in loops)
            failed = sum(loop.failed for loop in loops) + len(writer.errors)
            total_failed += failed
            for loop in loops:
                for err in loop.errors[:3]:
                    print(f"  error: {err}", file=sys.stderr)
            for err in writer.errors[:3]:
                print(f"  writer error: {err}", file=sys.stderr)
            throughput = completed / elapsed if elapsed > 0 else 0.0
            lags = sorted(sampler.samples)
            record = {
                "replicas": nreplicas,
                "clients": args.clients,
                "duration_s": round(elapsed, 3),
                "completed": completed,
                "failed": failed,
                "redirects": sum(loop.redirects for loop in loops),
                "throughput_qps": round(throughput, 2),
                "writer_commits": writer.committed,
            }
            scaling_records.append(record)
            lag_records.append(
                {
                    "replicas": nreplicas,
                    "samples": len(lags),
                    "lag_p50_records": _percentile(lags, 0.50),
                    "lag_p99_records": _percentile(lags, 0.99),
                    "lag_max_records": lags[-1] if lags else None,
                }
            )
            print(
                f"replicas={nreplicas}  qps={throughput:8.1f}  "
                f"writer_commits={writer.committed}  "
                f"lag p50/p99={_percentile(lags, 0.5)}/"
                f"{_percentile(lags, 0.99)} records  failed={failed}"
            )
        finally:
            fleet.close()

    # -- catch-up time vs accumulated tail length -----------------------
    catchup_records = []
    for tail in tail_points:
        fleet = _build_fleet(Path(tmp.name) / f"catchup-{tail}", data, 0)
        try:
            with fleet.client() as router:
                for i in range(tail):
                    router.add("scratch", text=f"tail-{i}", stars=i % 5)
            start = time.perf_counter()
            node = fleet.add_replica()
            dt = time.perf_counter() - start
            applied = node.replication.applied_lsn
            committed = fleet.primary.store.committed_lsn
            if applied < committed:
                total_failed += 1
                print(
                    f"catch-up stopped short: {applied} < {committed}",
                    file=sys.stderr,
                )
            catchup_records.append(
                {
                    "tail_batches": tail,
                    "catchup_s": round(dt, 4),
                    "applied_lsn": applied,
                }
            )
            print(f"tail={tail:>5} batches  catch-up={dt * 1000:8.1f}ms")
        finally:
            fleet.close()
    tmp.cleanup()

    if not args.no_json:
        payload = {
            "bench": "replication",
            "scale_factor": sf,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "duration_per_point_s": duration,
            "query_mix": QUERY_MIX,
            "differential_mismatches": mismatches,
            "notes": (
                "One writer + N WAL-shipping read replicas in one "
                "process; readers are closed loops through RoutedClient "
                "(bounded staleness, redirect on STALE_READ), the writer "
                "churns a replicated scratch collection, and lag is the "
                "replicas' lag_records watermark sampled via the lsn op. "
                "Catch-up is clone + tail replay time for a fresh "
                "replica joining after `tail_batches` committed batches."
            ),
            "read_scaling": scaling_records,
            "apply_lag": lag_records,
            "catchup": catchup_records,
        }
        write_json_atomic(args.out, payload)
        print(f"wrote {args.out}")

    if mismatches:
        print(
            f"{mismatches} quer(ies) diverged across the fleet",
            file=sys.stderr,
        )
        return 1
    if total_failed:
        print(f"{total_failed} request(s) failed", file=sys.stderr)
        return 1
    print("fleet answers matched in-process results on every node")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
