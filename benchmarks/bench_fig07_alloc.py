"""Figure 7 — batch allocation throughput.

The paper allocates ``lineitem`` objects (default constructor) and
compares: pure allocation of managed objects, ConcurrentBag,
ConcurrentDictionary, and SMCs, with 1/2/4 threads and both GC modes.
Expected shape: SMC >= pure managed allocation > Bag > Dictionary; batch
GC beats interactive GC for the managed series; SMC throughput is
GC-mode independent.

The GC-mode split is produced by the cost model of
:mod:`repro.managed.gcsim`: the measured wall time of the managed series
is augmented with the simulated collector time for the allocated volume
(CPython's refcounting has no generational pauses to measure natively;
see DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureReport
from repro.bench.workloads import allocation_throughput
from repro.core.collection import Collection
from repro.managed.collections_ import ManagedBag, ManagedDictionary
from repro.managed.gcsim import GcParams, SimulatedHeap
from repro.memory.manager import MemoryManager
from repro.tpch.schema import Lineitem

_COUNT = 40_000
_OBJ_SIZE = 184  # lineitem slot size, used by the GC cost model
_THREADS = (1, 2, 4)


def _gc_overhead(mode: str, count: int) -> float:
    """Simulated collector seconds for allocating *count* live objects.

    Batch mode charges the stop-the-world pauses; interactive mode charges
    its short pauses plus the full background marking work with a 25%
    concurrency overhead — which is why the paper finds batch collection
    gives the higher *throughput* while interactive gives the lower
    *pauses* (sections on Figures 7 and 9).
    """
    heap = SimulatedHeap(mode, GcParams())
    for i in range(count):
        heap.allocate(_OBJ_SIZE, long_lived=True)  # batch load: all survive
    return heap.stats.total_pause + heap.stats.background_cpu * 1.25


def _managed_throughput(make_sink, threads: int, mode: str) -> float:
    sink, add_one = make_sink()
    raw = allocation_throughput(add_one, _COUNT, threads)
    wall = _COUNT / raw
    return _COUNT / (wall + _gc_overhead(mode, _COUNT))


def _managed_throughput_both(make_sink, threads: int):
    """Both GC modes derived from one wall-clock measurement, so the
    batch/interactive comparison is not polluted by run-to-run noise."""
    sink, add_one = make_sink()
    raw = allocation_throughput(add_one, _COUNT, threads)
    wall = _COUNT / raw
    return (
        _COUNT / (wall + _gc_overhead("batch", _COUNT)),
        _COUNT / (wall + _gc_overhead("interactive", _COUNT)),
    )


def _pure_sink():
    record_cls = Lineitem.managed_class()
    arrays = []

    def add_one(i):
        arrays.append(record_cls(orderkey=i))

    return arrays, add_one


def _bag_sink():
    bag = ManagedBag(Lineitem)

    def add_one(i):
        bag.add(orderkey=i)

    return bag, add_one


def _dict_sink():
    d = ManagedDictionary(Lineitem)

    def add_one(i):
        d.add(key=i, orderkey=i)

    return d, add_one


def _smc_throughput(threads: int) -> float:
    manager = MemoryManager()
    coll = Collection(Lineitem, manager=manager)
    rate = allocation_throughput(lambda i: coll.add(orderkey=i), _COUNT, threads)
    manager.close()
    return rate


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 7", "batch allocation throughput", "objects/second"
    )
    yield rep
    rep.print()


def test_fig07_throughput_matrix(report, benchmark):
    def _run():
            results = {}
            for threads in _THREADS:
                batch, interactive = _managed_throughput_both(_pure_sink, threads)
                results[("pure", "batch", threads)] = batch
                results[("pure", "interactive", threads)] = interactive
                batch, interactive = _managed_throughput_both(_bag_sink, threads)
                results[("bag", "batch", threads)] = batch
                results[("bag", "interactive", threads)] = interactive
                batch, interactive = _managed_throughput_both(_dict_sink, threads)
                results[("dict", "batch", threads)] = batch
                results[("dict", "interactive", threads)] = interactive
                results[("smc", "any", threads)] = _smc_throughput(threads)
            for (series, mode, threads), rate in results.items():
                report.record(f"{series} ({mode})", f"{threads}T", rate)
            for threads in _THREADS:
                # Batch GC must beat interactive GC for managed allocation
                # (the paper's consistent finding on this benchmark)...
                assert (
                    results[("pure", "batch", threads)]
                    > results[("pure", "interactive", threads)]
                )
                # ...and SMC allocation must stay in the same league as the
                # thread-safe managed collections.  NOTE (EXPERIMENTS.md):
                # the paper's SMC > pure-allocation ordering inverts in
                # CPython, where object allocation is a pooled pointer
                # bump while SMC construction serialises field bytes.
                assert (
                    results[("smc", "any", threads)]
                    > results[("dict", "batch", threads)] / 5
                )
            # GC-free SMC throughput is stable across thread counts.
            assert (
                results[("smc", "any", 4)]
                > results[("smc", "any", 1)] * 0.5
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("kind", ["pure", "bag", "dict", "smc"])
def test_fig07_single_thread_benchmark(benchmark, kind):
    if kind == "smc":
        manager = MemoryManager()
        coll = Collection(Lineitem, manager=manager)
        counter = iter(range(10**9))

        def unit():
            coll.add(orderkey=next(counter))

        benchmark(unit)
        manager.close()
        return
    sinks = {"pure": _pure_sink, "bag": _bag_sink, "dict": _dict_sink}
    __, add_one = sinks[kind]()
    counter = iter(range(10**9))
    benchmark(lambda: add_one(next(counter)))
