"""Figure 13 — comparison to an in-memory columnar RDBMS.

TPC-H Q1–Q6 on the column-store comparator (the SQL Server 2014 stand-in,
with clustered indexes on ``shipdate`` and ``orderdate``) versus
direct-pointer SMCs and columnar SMCs, relative to the RDBMS.

Expected shape (paper): SMCs win most queries (reference joins instead
of value joins); the database wins where its clustered indexes prune the
scan — in this repo that is the date-selective Q3/Q4/Q6 family, matching
the paper's observation that "the database benefits from the indexes on
shipdate and orderdate".
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureReport, time_callable
from repro.rdbms.queries import run_plan
from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

QNAMES = ["q1", "q2", "q3", "q4", "q5", "q6"]


@pytest.fixture(scope="module")
def report():
    rep = FigureReport(
        "Figure 13", "Q1-Q6 relative to the RDBMS comparator", "x RDBMS"
    )
    yield rep
    rep.print()


def test_fig13_relative_times(report, rdbms, smc_direct, smc_columnar, benchmark):
    def _run():
            for qname in QNAMES:
                base = time_callable(
                    lambda: run_plan(qname, rdbms, DEFAULT_PARAMS), repeat=3
                )
                report.record("RDBMS (column store)", qname, 1.0)
                q_direct = QUERIES[qname](smc_direct)
                q_col = QUERIES[qname](smc_columnar)
                report.record(
                    "SMC (direct)",
                    qname,
                    time_callable(lambda: q_direct.run(params=DEFAULT_PARAMS), repeat=3)
                    / base,
                )
                report.record(
                    "SMC (columnar)",
                    qname,
                    time_callable(lambda: q_col.run(params=DEFAULT_PARAMS), repeat=3)
                    / base,
                )
            # SMCs must stay competitive on the scan/aggregation-heavy Q1
            # (no index helps the RDBMS there).
            assert report.series["SMC (columnar)"].value_at("q1") < 1.6
            # The RDBMS wins the shipdate-index query (Q6), as in the paper.
            assert report.series["SMC (direct)"].value_at("q6") > 1.0

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("qname", QNAMES)
def test_fig13_rdbms_benchmark(benchmark, rdbms, qname):
    benchmark(lambda: run_plan(qname, rdbms, DEFAULT_PARAMS))
