"""TPC-H end-to-end: loaders and Q1–Q6 value agreement across ALL engines.

This is the repo's strongest correctness check: one generated dataset is
loaded into every storage engine — row SMC (indirect and direct-pointer),
columnar SMC, ManagedList, ManagedDictionary, and the RDBMS column store —
and all six evaluation queries must produce identical values everywhere
(compiled and interpreted).
"""

from decimal import Decimal

import pytest

from repro.memory.manager import MemoryManager
from repro.rdbms.queries import run_plan
from repro.tpch import DEFAULT_PARAMS, generate, load_managed, load_rdbms, load_smc
from repro.tpch.queries import QUERIES


def _norm_rows(rows):
    out = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, Decimal):
                cells.append(round(float(cell), 4))
            elif isinstance(cell, float):
                cells.append(round(cell, 4))
            else:
                cells.append(cell)
        out.append(tuple(cells))
    return sorted(out, key=repr)


@pytest.fixture(scope="module")
def engines(tpch_tiny):
    smc = load_smc(tpch_tiny)
    direct = load_smc(tpch_tiny, manager=MemoryManager(direct_pointers=True))
    columnar = load_smc(tpch_tiny, columnar=True)
    mlist = load_managed(tpch_tiny, "list")
    mdict = load_managed(tpch_tiny, "dict")
    rdbms = load_rdbms(tpch_tiny)
    return {
        "smc": smc,
        "smc-direct": direct,
        "columnar": columnar,
        "list": mlist,
        "dict": mdict,
        "rdbms": rdbms,
    }


def test_loaders_preserve_row_counts(tpch_tiny, engines):
    for label in ("smc", "columnar"):
        colls = engines[label]
        for table, count in tpch_tiny.row_counts().items():
            assert len(colls[table]) == count, (label, table)
    assert len(engines["rdbms"]["lineitem"]) == len(tpch_tiny.lineitem)


def test_smc_references_navigate(engines):
    li = next(iter(engines["smc"]["lineitem"]))
    assert li.order.orderkey == li.orderkey
    assert li.part.partkey == li.partkey
    assert li.supplier.suppkey == li.suppkey
    assert li.order.customer.nation.region.name in (
        "AFRICA",
        "AMERICA",
        "ASIA",
        "EUROPE",
        "MIDDLE EAST",
    )


def test_managed_references_navigate(engines):
    li = engines["list"]["lineitem"].records_list()[0]
    assert li.order.orderkey == li.orderkey
    assert li.order.customer.nation.region.name


def test_rdbms_clustered_indexes_exist(engines):
    assert "shipdate" in engines["rdbms"]["lineitem"].clustered
    assert "orderdate" in engines["rdbms"]["orders"].clustered


@pytest.mark.parametrize("qname", ["q1", "q2", "q3", "q4", "q5", "q6"])
def test_query_value_agreement(qname, engines):
    reference = None
    for label in ("smc", "smc-direct", "columnar", "list", "dict"):
        colls = engines[label]
        query = QUERIES[qname](colls)
        compiled = _norm_rows(query.run(params=DEFAULT_PARAMS).rows)
        if reference is None:
            reference = compiled
            assert reference, f"{qname} produced no rows at this scale"
        assert compiled == reference, f"{qname}: {label} compiled diverges"
    # Interpreted engine on two representatives (slow, so not all five).
    for label in ("smc", "list"):
        query = QUERIES[qname](engines[label])
        interp = _norm_rows(
            query.run(engine="interpreted", params=DEFAULT_PARAMS).rows
        )
        assert interp == reference, f"{qname}: {label} interpreted diverges"
    # SMC "safe" compiled flavour (the paper's SMC (C#) series).
    query = QUERIES[qname](engines["smc"])
    safe = _norm_rows(
        query.run(flavor="smc-safe", params=DEFAULT_PARAMS).rows
    )
    assert safe == reference, f"{qname}: smc-safe diverges"
    # The relational comparator.
    __, rows = run_plan(qname, engines["rdbms"], DEFAULT_PARAMS)
    assert _norm_rows(rows) == reference, f"{qname}: rdbms diverges"


def test_q1_group_count(engines):
    result = QUERIES["q1"](engines["smc"]).run(params=DEFAULT_PARAMS)
    flags = {(r[0], r[1]) for r in result.rows}
    assert flags <= {("A", "F"), ("R", "F"), ("N", "F"), ("N", "O")}
    assert len(flags) >= 3


def test_q3_returns_top10_by_revenue(engines):
    result = QUERIES["q3"](engines["smc"]).run(params=DEFAULT_PARAMS)
    revenues = result.column("revenue")
    assert revenues == sorted(revenues, reverse=True)
    assert len(result) <= 10


def test_q6_single_scalar(engines):
    result = QUERIES["q6"](engines["smc"]).run(params=DEFAULT_PARAMS)
    assert len(result) == 1
    assert result.rows[0][0] > 0


def test_parameter_sensitivity(engines):
    """Changing a parameter changes results without recompiling."""
    import datetime

    q = QUERIES["q6"](engines["smc"])
    p1 = dict(DEFAULT_PARAMS)
    p2 = dict(DEFAULT_PARAMS, q6_date=datetime.date(1993, 1, 1),
              q6_date_hi=datetime.date(1994, 1, 1))
    r1 = q.run(params=p1).rows[0][0]
    r2 = q.run(params=p2).rows[0][0]
    assert r1 != r2


@pytest.mark.parametrize("qname", ["q7", "q10", "q12", "q14"])
def test_extra_query_rdbms_agreement(qname, engines):
    """The comparator's plans for the extra queries match the SMC engines."""
    from repro.tpch.queries import EXTRA_QUERIES

    smc_rows = _norm_rows(
        EXTRA_QUERIES[qname](engines["smc"]).run(params=DEFAULT_PARAMS).rows
    )
    __, rows = run_plan(qname, engines["rdbms"], DEFAULT_PARAMS)
    assert _norm_rows(rows) == smc_rows
