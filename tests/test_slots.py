"""Slot-directory word codec, including property-based roundtrips."""

from hypothesis import given, strategies as st

from repro.memory import slots


def test_state_constants_distinct():
    assert len({slots.FREE, slots.VALID, slots.LIMBO}) == 3


def test_pack_free_is_zero():
    assert slots.pack(slots.FREE) == 0


def test_state_extraction():
    word = slots.pack(slots.LIMBO, 17)
    assert slots.state_of(word) == slots.LIMBO
    assert slots.epoch_of(word) == 17


def test_reclaimable_requires_two_epochs():
    word = slots.pack(slots.LIMBO, epoch=10)
    assert not slots.is_reclaimable(word, 10)
    assert not slots.is_reclaimable(word, 11)
    assert slots.is_reclaimable(word, 12)
    assert slots.is_reclaimable(word, 100)


def test_non_limbo_never_reclaimable():
    assert not slots.is_reclaimable(slots.pack(slots.VALID), 10**6)
    assert not slots.is_reclaimable(slots.pack(slots.FREE), 10**6)


@given(
    state=st.sampled_from([slots.FREE, slots.VALID, slots.LIMBO]),
    epoch=st.integers(min_value=0, max_value=slots.EPOCH_MASK),
)
def test_pack_roundtrip(state, epoch):
    word = slots.pack(state, epoch)
    assert slots.state_of(word) == state
    assert slots.epoch_of(word) == epoch
    assert 0 <= word < 2**32


@given(epoch=st.integers(min_value=0, max_value=slots.EPOCH_MASK - 2))
def test_reclamation_boundary(epoch):
    word = slots.pack(slots.LIMBO, epoch)
    assert not slots.is_reclaimable(word, epoch + 1)
    assert slots.is_reclaimable(word, epoch + 2)
