"""Address-space arithmetic and block registration."""

import pytest

from repro.errors import MemoryExhaustedError
from repro.memory.addressing import NULL_ADDRESS, AddressSpace


def test_block_size_is_power_of_two():
    space = AddressSpace(block_shift=12)
    assert space.block_size == 4096


def test_block_shift_bounds():
    with pytest.raises(ValueError):
        AddressSpace(block_shift=7)
    with pytest.raises(ValueError):
        AddressSpace(block_shift=31)


def test_register_starts_at_one():
    space = AddressSpace()
    assert space.register(object()) == 1


def test_address_roundtrip():
    space = AddressSpace(block_shift=16)
    addr = space.address_of(5, 1234)
    assert space.block_id_of(addr) == 5
    assert space.offset_of(addr) == 1234


def test_address_zero_is_never_valid():
    space = AddressSpace()
    with pytest.raises(ValueError):
        space.block_at(0)


def test_null_address_constant():
    assert NULL_ADDRESS == -1


def test_block_at_resolves_registered_block():
    space = AddressSpace()
    marker = object()
    block_id = space.register(marker)
    assert space.block_at(space.address_of(block_id, 42)) is marker


def test_unregister_invalidates_addresses():
    space = AddressSpace()
    block_id = space.register(object())
    space.unregister(block_id)
    with pytest.raises(ValueError):
        space.block_at(space.address_of(block_id))


def test_unregister_twice_rejected():
    space = AddressSpace()
    block_id = space.register(object())
    space.unregister(block_id)
    with pytest.raises(ValueError):
        space.unregister(block_id)


def test_block_ids_are_recycled():
    space = AddressSpace()
    first = space.register(object())
    space.unregister(first)
    assert space.register(object()) == first


def test_try_block_at_dead_address():
    space = AddressSpace()
    assert space.try_block_at(space.address_of(99)) is None
    assert space.try_block_at(0) is None


def test_live_blocks_iteration():
    space = AddressSpace()
    markers = [object() for __ in range(3)]
    ids = [space.register(m) for m in markers]
    space.unregister(ids[1])
    live = list(space.live_blocks())
    assert markers[0] in live and markers[2] in live and markers[1] not in live
    assert space.live_block_count == 2


def test_total_bytes_tracks_live_blocks():
    space = AddressSpace(block_shift=12)
    assert space.total_bytes == 0
    bid = space.register(object())
    assert space.total_bytes == 4096
    space.unregister(bid)
    assert space.total_bytes == 0
