"""Extended query features: case_when, year_of, having, distinct, explain,
and the extra TPC-H queries (Q7/Q10/Q12/Q14)."""

import datetime
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.managed.collections_ import ManagedList
from repro.memory.manager import MemoryManager
from repro.query.builder import Count, Sum
from repro.query.expressions import case_when, param, year_of

from tests.schemas import TEverything, TOrder, TPerson


@pytest.fixture
def trio(manager):
    """The same small dataset in SMC, columnar and managed form."""
    smc = Collection(TEverything, manager=manager)
    Collection(TPerson, manager=manager)
    m2 = MemoryManager()
    col = ColumnarCollection(TEverything, manager=m2)
    ColumnarCollection(TPerson, manager=m2)
    ml = ManagedList(TEverything)
    for i in range(60):
        row = dict(
            i32=i,
            price=Decimal(i),
            code=f"c{i % 3}",
            day=datetime.date(2019 + (i % 4), 3, 1),
            flag=bool(i % 2),
        )
        smc.add(**row)
        col.add(**row)
        ml.add(**row)
    yield smc, col, ml
    m2.close()


def _all_engines(build, trio, **params):
    smc, col, ml = trio
    results = [
        sorted(build(smc).run(params=params).rows, key=repr),
        sorted(build(col).run(params=params).rows, key=repr),
        sorted(build(ml).run(params=params).rows, key=repr),
        sorted(build(ml).run(engine="interpreted", params=params).rows, key=repr),
        sorted(
            build(smc).run(flavor="smc-safe", params=params).rows, key=repr
        ),
    ]
    first = results[0]
    for other in results[1:]:
        assert other == first
    return first


def test_case_when_in_aggregate(trio):
    def build(src):
        return src.query().aggregate(
            evens=Sum(case_when(TEverything.flag == False, 1, 0)),  # noqa: E712
            odds=Sum(case_when(TEverything.flag == True, 1, 0)),  # noqa: E712
        )

    rows = _all_engines(build, trio)
    assert rows == [(30, 30)]


def test_case_when_with_decimal_branches(trio):
    def build(src):
        return src.query().aggregate(
            cheap=Sum(
                case_when(TEverything.price < 30, TEverything.price, 0)
            ),
        )

    rows = _all_engines(build, trio)
    assert rows[0][0] == sum(Decimal(i) for i in range(30))


def test_year_of_grouping(trio):
    def build(src):
        return (
            src.query()
            .group_by(year=year_of(TEverything.day))
            .aggregate(n=Count())
            .order_by("year")
        )

    rows = _all_engines(build, trio)
    assert [r[0] for r in rows] == [2019, 2020, 2021, 2022]
    assert all(r[1] == 15 for r in rows)


def test_having_filters_groups(trio):
    def build(src):
        return (
            src.query()
            .where(TEverything.i32 < param("cap"))
            .group_by(code=TEverything.code)
            .aggregate(n=Count())
            .having("n", ">=", 2)
            .order_by("code")
        )

    rows = _all_engines(build, trio, cap=5)
    # codes c0 (0,3), c1 (1,4), c2 (2) -> c2 filtered out.
    assert rows == [("c0", 2), ("c1", 2)]


def test_having_unknown_operator_rejected(trio):
    smc, __, ___ = trio
    with pytest.raises(ValueError):
        smc.query().group_by(c=TEverything.code).aggregate(n=Count()).having(
            "n", "~", 1
        )


def test_distinct(trio):
    def build(src):
        return src.query().select(code=TEverything.code).distinct()

    rows = _all_engines(build, trio)
    assert sorted(rows) == [("c0",), ("c1",), ("c2",)]


def test_explain_mentions_backend_and_ops(trio):
    smc, __, ml = trio
    text = smc.query().where(TEverything.i32 > 1).explain()
    assert "smc-unsafe" in text
    assert "where[" in text
    assert "TEverything" in text
    assert "managed" in ml.query().explain()


class TestExtraTpchQueries:
    @pytest.fixture(scope="class")
    def engines(self, tpch_tiny):
        from repro.tpch.loader import load_managed, load_smc

        return {
            "smc": load_smc(tpch_tiny),
            "columnar": load_smc(tpch_tiny, columnar=True),
            "list": load_managed(tpch_tiny, "list"),
        }

    @pytest.mark.parametrize("qname", ["q7", "q10", "q12", "q14"])
    def test_cross_engine_agreement(self, qname, engines):
        from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES

        reference = None
        for label, colls in engines.items():
            got = sorted(
                EXTRA_QUERIES[qname](colls).run(params=DEFAULT_PARAMS).rows,
                key=repr,
            )
            if reference is None:
                reference = got
            assert got == reference, f"{qname}: {label}"
        interp = sorted(
            EXTRA_QUERIES[qname](engines["list"])
            .run(engine="interpreted", params=DEFAULT_PARAMS)
            .rows,
            key=repr,
        )
        assert interp == reference

    def test_q12_counts_are_conditional(self, engines):
        from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES

        result = EXTRA_QUERIES["q12"](engines["smc"]).run(params=DEFAULT_PARAMS)
        assert result.columns == ["shipmode", "high_line_count", "low_line_count"]
        for __, high, low in result.rows:
            assert high >= 0 and low >= 0
            assert high + low > 0

    def test_q14_promo_share_sane(self, engines):
        from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES

        result = EXTRA_QUERIES["q14"](engines["smc"]).run(params=DEFAULT_PARAMS)
        promo, total = result.rows[0]
        assert 0 <= promo <= total
