"""Block-scan runtime: compaction-group protocol of section 5.2."""

import pytest

from repro.core.collection import Collection
from repro.core.compaction import CompactionGroup, Compactor
from repro.memory.manager import MemoryManager
from repro.query.runtime import AvgAcc, scan_blocks, top_k

from tests.schemas import TPerson


def _worn(blocks=4):
    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    handles = []
    while persons.context.block_count() < blocks:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    keep = handles[::4]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    return m, persons, keep


def test_plain_scan_covers_all_blocks(manager):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    blocks = list(scan_blocks(manager, persons.context))
    assert blocks == persons.context.blocks()


def test_scan_deduplicates_block_ids(manager):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    seen = [b.block_id for b in scan_blocks(manager, persons.context)]
    assert len(seen) == len(set(seen))


def test_scan_of_finished_group_yields_dest_once():
    m, persons, keep = _worn()
    persons.compact(occupancy_threshold=0.9)
    ids = [b.block_id for b in scan_blocks(m, persons.context)]
    assert len(ids) == len(set(ids))
    total = sum(len(b.valid_slots()) for b in scan_blocks(m, persons.context))
    assert total == len(keep)
    m.close()


def test_prestate_pin_released_on_generator_close():
    m, persons, keep = _worn()
    compactor = Compactor(m)
    groups = compactor._plan_groups(persons.context, 0.9)
    assert groups
    group = groups[0]
    gen = scan_blocks(m, persons.context)
    # Drive the generator into the group's pre-state...
    emitted = [next(gen)]
    while emitted[-1].compaction_group is not group:
        emitted.append(next(gen))
    assert group.reader_count == 1
    gen.close()  # ...and abandoning the scan must release the pin.
    assert group.reader_count == 0
    compactor.detach()
    m.close()


def test_failed_group_scans_sources():
    m, persons, keep = _worn()
    compactor = Compactor(m)
    groups = compactor._plan_groups(persons.context, 0.9)
    for g in groups:
        g.failed = True
        for b in g.sources:
            b.compaction_group = g  # leave markers in place
    total = sum(len(b.valid_slots()) for b in scan_blocks(m, persons.context))
    assert total == len(keep)
    compactor.detach()
    m.close()


def test_scan_counts_objects_exactly_once_mid_compaction():
    """Even with dest attached early and sources half-moved, a scan sees
    each live object exactly once (moved slots are limbo in the source)."""
    m, persons, keep = _worn(blocks=5)
    compactor = Compactor(m)
    groups = compactor._plan_groups(persons.context, 0.9)
    compactor._build_relocation_lists(groups)
    group = groups[0]
    # Move half of the group's items by hand (moving-phase mechanics).
    for item in group.items[: len(group.items) // 2]:
        from repro.memory.indirection import FROZEN

        m.table.set_flags(item.entry, FROZEN)
        compactor._move_item_locked(item)
    with m.critical_section():
        total = sum(
            len(b.valid_slots()) for b in scan_blocks(m, persons.context)
        )
    assert total == len(keep)
    compactor.detach()
    m.close()


def test_top_k_helper():
    assert top_k([(3,), (2,), (1,)], 2) == [(3,), (2,)]


def test_avg_acc_helper():
    acc = AvgAcc()
    assert acc.result() is None
    acc.add(10)
    acc.add(20)
    assert acc.result() == 15
