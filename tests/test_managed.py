"""Managed baseline collections."""

import threading

import pytest

from repro.managed import ManagedBag, ManagedDictionary, ManagedList

from tests.schemas import TPerson


def test_list_add_and_iterate():
    ml = ManagedList(TPerson)
    ml.add(name="a", age=1)
    ml.add(name="b", age=2)
    assert [r.age for r in ml] == [1, 2]
    assert len(ml) == 2


def test_list_accepts_prebuilt_record():
    ml = ManagedList(TPerson)
    rec = ml.new_record(name="x", age=9)
    assert ml.add(rec) is rec
    assert len(ml) == 1


def test_list_remove_specific():
    ml = ManagedList(TPerson)
    a = ml.add(name="a", age=1)
    b = ml.add(name="b", age=2)
    ml.remove(a)
    assert list(ml) == [b]


def test_list_remove_where():
    ml = ManagedList(TPerson)
    for i in range(10):
        ml.add(name=f"p{i}", age=i)
    removed = ml.remove_where(lambda r: r.age % 2 == 0)
    assert removed == 5
    assert all(r.age % 2 == 1 for r in ml)


def test_list_clear():
    ml = ManagedList(TPerson)
    ml.add(name="a", age=1)
    ml.clear()
    assert len(ml) == 0


def test_bag_has_no_targeted_removal():
    bag = ManagedBag(TPerson)
    bag.add(name="a", age=1)
    assert not hasattr(bag, "remove")


def test_bag_try_take():
    bag = ManagedBag(TPerson)
    assert bag.try_take() is None
    rec = bag.add(name="a", age=1)
    assert bag.try_take() is rec
    assert len(bag) == 0


def test_bag_thread_safe_adds():
    bag = ManagedBag(TPerson)

    def worker():
        for i in range(500):
            bag.add(name="w", age=i)

    threads = [threading.Thread(target=worker) for __ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(bag) == 2000


def test_dictionary_keyed_by_attribute():
    md = ManagedDictionary(TPerson, key="age")
    md.add(name="a", age=10)
    assert md.get(10).name == "a"
    assert md.remove(10)
    assert not md.remove(10)
    assert md.get(10) is None


def test_dictionary_explicit_key():
    md = ManagedDictionary(TPerson)
    rec = md.new_record(name="a", age=1)
    md.add(rec, key="custom")
    assert md.get("custom") is rec


def test_dictionary_sequence_key_fallback():
    md = ManagedDictionary(TPerson)
    md.add(name="a", age=1)
    md.add(name="b", age=2)
    assert len(md) == 2
    assert len(md.keys()) == 2


def test_dictionary_thread_safe_churn():
    md = ManagedDictionary(TPerson, key="age")
    errors = []

    def adder(base):
        for i in range(300):
            md.add(name="x", age=base + i)

    def remover(base):
        for i in range(300):
            md.remove(base + i)

    threads = [
        threading.Thread(target=adder, args=(0,)),
        threading.Thread(target=adder, args=(1000,)),
        threading.Thread(target=remover, args=(0,)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(md) >= 300  # the 1000-base records are untouched


def test_query_surface_on_managed_collections():
    from repro.query.builder import Count

    for coll in (ManagedList(TPerson), ManagedBag(TPerson), ManagedDictionary(TPerson)):
        for i in range(10):
            coll.add(name="x", age=i)
        n = (
            coll.query()
            .where(TPerson.age >= 5)
            .aggregate(n=Count())
            .run()
            .rows[0][0]
        )
        assert n == 5, type(coll).__name__
