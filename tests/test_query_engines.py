"""Query builder + engine agreement on randomized data.

The compiled backends (managed / smc-safe / smc-unsafe / columnar) must
produce exactly the results of the interpreted reference engine for every
plan shape.  Hypothesis drives randomized datasets through a fixed set of
plan shapes covering filters, navigation, grouping, aggregation,
semi-joins, ordering and limits.
"""

import datetime
from decimal import Decimal

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.managed.collections_ import ManagedList
from repro.memory.manager import MemoryManager
from repro.query.builder import Avg, Count, Max, Min, Sum
from repro.query.compiler import CompileError, compiled_source
from repro.query.expressions import param

from tests.schemas import TOrder, TPerson


def _norm(rows):
    out = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, Decimal):
                cells.append(round(float(cell), 6))
            elif isinstance(cell, float):
                cells.append(round(cell, 6))
            else:
                cells.append(cell)
        out.append(tuple(cells))
    return sorted(out, key=repr)


def _build_sources(people, orders):
    m = MemoryManager()
    smc_p = Collection(TPerson, manager=m)
    smc_o = Collection(TOrder, manager=m)
    ml_p = ManagedList(TPerson)
    ml_o = ManagedList(TOrder)
    m2 = MemoryManager()
    col_p = ColumnarCollection(TPerson, manager=m2)
    col_o = ColumnarCollection(TOrder, manager=m2)
    smc_handles, ml_handles, col_handles = [], [], []
    for p in people:
        smc_handles.append(smc_p.add(**p))
        ml_handles.append(ml_p.add(**p))
        col_handles.append(col_p.add(**p))
    for o in orders:
        idx = o.pop("owner_idx")
        smc_o.add(owner=smc_handles[idx], **o)
        ml_o.add(owner=ml_handles[idx], **o)
        col_o.add(owner=col_handles[idx], **o)
        o["owner_idx"] = idx
    return {
        "smc": (smc_p, smc_o, m),
        "managed": (ml_p, ml_o, None),
        "columnar": (col_p, col_o, m2),
    }


people_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "name": st.sampled_from(["ann", "bob", "cal", "dot", "eli"]),
            "age": st.integers(min_value=0, max_value=90),
            "balance": st.decimals(
                min_value=-1000, max_value=1000, places=2, allow_nan=False
            ),
        }
    ),
    min_size=1,
    max_size=25,
)


@st.composite
def dataset(draw):
    people = draw(people_strategy)
    orders = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    "orderkey": st.integers(min_value=0, max_value=10**6),
                    "owner_idx": st.integers(
                        min_value=0, max_value=len(people) - 1
                    ),
                    "total": st.decimals(
                        min_value=0, max_value=5000, places=2, allow_nan=False
                    ),
                    "placed": st.dates(
                        min_value=datetime.date(1990, 1, 1),
                        max_value=datetime.date(2030, 1, 1),
                    ),
                }
            ),
            min_size=0,
            max_size=40,
        )
    )
    return people, orders


def _check_plan(sources, build, params):
    reference = None
    for label, (pcoll, ocoll, mgr) in sources.items():
        q = build(pcoll, ocoll)
        got = _norm(q.run(engine="compiled", params=params).rows)
        interp = _norm(q.run(engine="interpreted", params=params).rows)
        assert got == interp, f"{label} compiled != interpreted"
        if label == "smc":
            safe = _norm(
                q.run(engine="compiled", flavor="smc-safe", params=params).rows
            )
            assert safe == interp, "smc-safe != interpreted"
        if reference is None:
            reference = got
        else:
            assert got == reference, f"{label} != first engine"
    for __, (___, ____, mgr) in sources.items():
        if mgr is not None:
            mgr.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=dataset())
def test_filter_group_aggregate(data):
    people, orders = data
    sources = _build_sources(people, orders)

    def build(pcoll, __):
        return (
            pcoll.query()
            .where(TPerson.age >= param("lo"))
            .group_by(name=TPerson.name)
            .aggregate(
                n=Count(),
                total=Sum(TPerson.balance),
                avg_age=Avg(TPerson.age),
                young=Min(TPerson.age),
                old=Max(TPerson.age),
            )
            .order_by("name")
        )

    _check_plan(sources, build, {"lo": 30})


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=dataset())
def test_navigation_and_select(data):
    people, orders = data
    sources = _build_sources(people, orders)

    def build(__, ocoll):
        return (
            ocoll.query()
            .where(TOrder.owner.ref("age") < param("hi"))
            .where(TOrder.placed >= param("since"))
            .select(
                okey=TOrder.orderkey,
                owner_name=TOrder.owner.ref("name"),
                weighted=TOrder.total * 2,
            )
        )

    _check_plan(
        sources, build, {"hi": 50, "since": datetime.date(2000, 1, 1)}
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=dataset())
def test_semijoin_where_in(data):
    people, orders = data
    sources = _build_sources(people, orders)

    def build(pcoll, ocoll):
        rich = pcoll.query().where(
            TPerson.balance > param("floor")
        ).select(name=TPerson.name)
        return (
            ocoll.query()
            .where_in(TOrder.owner.ref("name"), rich)
            .group_by(owner=TOrder.owner.ref("name"))
            .aggregate(total=Sum(TOrder.total))
            .order_by("owner")
        )

    _check_plan(sources, build, {"floor": Decimal("100.00")})


def test_order_by_and_take(manager):
    persons = Collection(TPerson, manager=manager)
    for i in range(20):
        persons.add(name=f"p{i % 4}", age=i, balance=Decimal(i))
    q = (
        persons.query()
        .select(name=TPerson.name, age=TPerson.age)
        .order_by("-age")
        .take(3)
    )
    top = q.run().rows
    assert [r[1] for r in top] == [19, 18, 17]
    assert q.run(engine="interpreted").rows == top


def test_enumeration_returns_refs(manager):
    persons = Collection(TPerson, manager=manager)
    handles = [persons.add(name=f"p{i}", age=i) for i in range(5)]
    result = persons.query().where(TPerson.age >= 3).run()
    assert len(result) == 2
    # Compiled enumeration yields references (paper section 4 listing).
    addresses = {r.address() for r in result.rows}
    assert addresses == {h.ref.address() for h in handles[3:]}


def test_count_helper(manager):
    persons = Collection(TPerson, manager=manager)
    for i in range(10):
        persons.add(name="x", age=i)
    assert persons.query().where(TPerson.age < 4).count() == 4


def test_between_and_isin(manager):
    persons = Collection(TPerson, manager=manager)
    for i in range(30):
        persons.add(name=f"n{i % 5}", age=i)
    q = (
        persons.query()
        .where(TPerson.age.between(param("lo"), param("hi")))
        .where(TPerson.name.isin(["n0", "n1"]))
        .select(age=TPerson.age)
    )
    got = sorted(q.run(lo=5, hi=15).column("age"))
    expect = sorted(
        i for i in range(5, 16) if i % 5 in (0, 1)
    )
    assert got == expect
    assert sorted(q.run(engine="interpreted", lo=5, hi=15).column("age")) == expect


def test_string_predicates_compiled(manager):
    persons = Collection(TPerson, manager=manager)
    for name in ["Adam", "Ada", "Eve", "Adrian", "Bob"]:
        persons.add(name=name, age=1)
    q = persons.query().where(TPerson.name.startswith("Ad")).select(
        name=TPerson.name
    )
    assert sorted(q.run().column("name")) == ["Ada", "Adam", "Adrian"]
    q2 = persons.query().where(TPerson.name.contains("v")).select(
        name=TPerson.name
    )
    assert q2.run().column("name") == ["Eve"]


def test_compiled_source_is_cached_and_inspectable(manager):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    q = persons.query().where(TPerson.age > param("n")).select(a=TPerson.age)
    src = compiled_source(q)
    assert "def __query" in src
    assert "valid_slots" in src
    from repro.query.compiler import get_compiled

    assert get_compiled(q, "smc-unsafe") is get_compiled(q, "smc-unsafe")


def test_double_projection_rejected(manager):
    persons = Collection(TPerson, manager=manager)
    q = persons.query().select(a=TPerson.age).select(b=TPerson.age)
    with pytest.raises(CompileError):
        q.run()


def test_unknown_engine_rejected(manager):
    persons = Collection(TPerson, manager=manager)
    with pytest.raises(ValueError):
        persons.query().run(engine="quantum")
