"""Memory tiering: pager, residency protocol, budget, governor tenancy.

Differential guarantees first: a budgeted manager must answer every query
byte-identically to an unbudgeted one while ``hot_bytes() <= budget``
holds at every operation boundary, and a fully-pruned scan must touch
zero cold bytes (the zone map built at demotion answers for the spilled
block).  Then the protocol pieces: the hot/cooling/cold state machine,
the two-epoch demotion grace under a live reader, pin/unpin, eviction
versus compaction ownership, the clean-spill-skip optimisation, the tier
store's region recycling, the sanitizer's tiering invariants, and the
zero-leftover ``smc_tier_*`` file contract.

All tests here are sanitizer-compatible (``pytest --sanitize``).
"""

from __future__ import annotations

import glob
import os
import tempfile
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import sanitizer
from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.errors import ProtocolViolation
from repro.memory.governor import MemoryGovernor
from repro.memory.manager import MemoryManager
from repro.memory.pager import TIER_PREFIX, TieredBuffers, TierStore
from repro.sanitizer import hooks as _hooks
from repro.tpch.loader import load_smc
from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES}

from tests.schemas import TPerson

BS = 1 << 10  # block size at block_shift=10


def _tier_files():
    return set(glob.glob(os.path.join(tempfile.gettempdir(), f"{TIER_PREFIX}*")))


def _budgeted(blocks: int, **kwargs) -> MemoryManager:
    return MemoryManager(block_shift=10, memory_budget=blocks * BS, **kwargs)


def _fill_blocks(persons, blocks, age=1):
    handles = []
    while persons.context.block_count() < blocks:
        handles.append(persons.add(name=f"p{len(handles)}", age=age))
    return handles


def _block_of(manager, handle):
    with manager.critical_section():
        return manager.space.block_at(handle.ref.address())


def _canonical(result):
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


# ----------------------------------------------------------------------
# Residency state machine and budget enforcement
# ----------------------------------------------------------------------


def test_residency_lifecycle_budget_and_cold_reads():
    m = _budgeted(3)
    pager = m.pager
    assert pager is not None and isinstance(m.space.buffers, TieredBuffers)
    persons = Collection(TPerson, manager=m)
    handles = _fill_blocks(persons, 8, age=7)

    pager.maintain()
    assert pager.hot_bytes() <= pager.budget
    counts = pager.residency_counts()
    assert counts["cold"] >= 5 and counts["cooling"] == 0
    assert sum(counts.values()) == len(persons.context.blocks())

    # Reads work in place over the cold mappings: no promotion happens.
    faults_before = pager.faults
    assert sorted(h.age for h in persons) == [7] * len(handles)
    assert all(h.name.startswith("p") for h in handles)
    assert pager.faults == faults_before

    # Cold buffers are read-only file mappings — a stray write raises
    # instead of corrupting the spilled image.
    cold = next(b for b in persons.context.blocks() if b.residency == "cold")
    assert cold.buf.readonly
    with pytest.raises(TypeError):
        cold.buf[0:1] = b"x"
    with pytest.raises(ValueError):
        cold.reset(cold.type_id, cold.context_id)

    # A write promotes (ensure_hot inside the writer's critical section),
    # marks the tier image stale, and the next demotion re-spills.
    victim = next(
        h for h in handles if _block_of(m, h).residency == "cold"
    )
    spills_before = pager.spills
    victim.age = 99
    block = _block_of(m, victim)
    assert block.residency == "hot" and block.tier_dirty
    assert pager.faults == faults_before + 1
    pager.maintain()
    assert pager.hot_bytes() <= pager.budget
    assert pager.spills > spills_before
    assert victim.age == 99  # readable again from the fresh cold image
    m.close()


def test_clean_redemotion_skips_the_spill():
    m = _budgeted(1)
    pager = m.pager
    persons = Collection(TPerson, manager=m)
    _fill_blocks(persons, 5)
    pager.maintain()
    spills = pager.spills
    assert spills >= 4

    # Fault a block back via a read reference: the tier image stays
    # current (tier_dirty=False, region retained) ...
    cold = next(b for b in persons.context.blocks() if b.residency == "cold")
    assert pager.touch(cold) is True
    assert cold.residency == "hot" and cold.tier_offset >= 0
    assert not cold.tier_dirty

    # ... so demoting it again writes nothing.
    pager.maintain()
    assert pager.hot_bytes() <= pager.budget
    assert cold.residency == "cold"
    assert pager.spills == spills


def test_pin_faults_and_bars_demotion():
    m = _budgeted(1)
    pager = m.pager
    persons = Collection(TPerson, manager=m)
    _fill_blocks(persons, 4)
    pager.maintain()
    cold = next(b for b in persons.context.blocks() if b.residency == "cold")

    with pager.pinned(cold):
        assert cold.residency == "hot"  # pin faulted it in
        assert cold.pin_count == 1
        pager.maintain()
        assert cold.residency == "hot"  # pinned blocks are not victims
    pager.maintain()
    assert cold.residency == "cold"  # unpinned -> evictable again
    with pytest.raises(ValueError):
        pager.unpin(cold)
    m.close()


def test_tier_files_are_unlinked_at_close():
    before = _tier_files()
    m = _budgeted(1)
    persons = Collection(TPerson, manager=m)
    _fill_blocks(persons, 4)
    m.pager.maintain()
    assert _tier_files() - before  # cold blocks really live in the file
    path = m.space.buffers.tier_path
    assert path is not None and TIER_PREFIX in os.path.basename(path)
    m.close()
    assert _tier_files() == before


# ----------------------------------------------------------------------
# Differential: budgeted == unbudgeted, bytes held at boundaries
# ----------------------------------------------------------------------


def test_tpch_budgeted_results_identical(tpch_small):
    plain = load_smc(tpch_small, columnar=True)
    # Small blocks so the pool has many non-active (evictable) blocks at
    # this scale factor: every context keeps its active block hot, so the
    # budget must sit above that floor for maintain() to reach it.
    tiered = load_smc(
        tpch_small,
        columnar=True,
        manager=MemoryManager(block_shift=16, memory_budget=1),
    )
    pager = tiered["_manager"].pager
    pager.set_budget(max(pager.block_size, pager.hot_bytes() // 4))
    pager.maintain()
    try:
        assert pager.hot_bytes() <= pager.budget
        assert pager.residency_counts()["cold"] > 0
        for name, builder in sorted(ALL_QUERIES.items()):
            want = _canonical(builder(plain).run(params=DEFAULT_PARAMS))
            got = _canonical(builder(tiered).run(params=DEFAULT_PARAMS))
            assert got == want, name
            pager.maintain()  # operation boundary
            assert pager.hot_bytes() <= pager.budget, name
        assert pager.faults > 0  # the budget was actually exercised
    finally:
        plain["_manager"].close()
        tiered["_manager"].close()


def test_fully_pruned_scan_touches_zero_cold_bytes():
    m = _budgeted(1)
    pager = m.pager
    persons = ColumnarCollection(TPerson, manager=m)
    n = 0
    while persons.context.block_count() < 4:
        persons.add(name=f"p{n}", age=n % 10)
        n += 1
    pager.maintain()
    assert pager.residency_counts()["cold"] >= 3

    # Every block's zone map says age <= 9: the predicate prunes them all
    # without faulting a single cold block (zone maps are built at
    # demotion and frozen while cold).
    faults = pager.faults
    result = persons.query().where(TPerson.age >= 1000).run()
    assert len(result.rows) == 0
    assert pager.faults == faults
    assert m.stats.extra.get("last_scan_tier_faults") == 0

    # Control: a selective-but-matching scan does fault cold blocks.
    result = persons.query().where(TPerson.age >= 0).run()
    assert len(result.rows) == n
    assert pager.faults > faults
    assert m.stats.extra["last_scan_tier_faults"] > 0
    m.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("add"), st.integers(0, 90)),
            st.tuples(st.just("remove"), st.integers(0, 10_000)),
            st.tuples(st.just("maintain"), st.just(0)),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_budgeted_mutations_match_always_hot(ops):
    """fault -> read -> evict cycles are invisible: a budgeted collection
    under random add/remove/maintain churn stays byte-identical to one
    that never demotes anything."""
    hot = MemoryManager(block_shift=10)
    tiered = _budgeted(2)
    try:
        ref = Collection(TPerson, manager=hot)
        sut = Collection(TPerson, manager=tiered)
        ref_handles, sut_handles = [], []
        for i, (op, arg) in enumerate(ops):
            if op == "add":
                ref_handles.append(ref.add(name=f"p{i}", age=arg))
                sut_handles.append(sut.add(name=f"p{i}", age=arg))
            elif op == "remove" and ref_handles:
                idx = arg % len(ref_handles)
                ref.remove(ref_handles.pop(idx))
                sut.remove(sut_handles.pop(idx))
            elif op == "maintain":
                tiered.pager.maintain()
                assert tiered.pager.hot_bytes() <= tiered.pager.budget
        tiered.pager.maintain()
        assert sorted((h.name, h.age) for h in sut) == sorted(
            (h.name, h.age) for h in ref
        )
    finally:
        hot.close()
        tiered.close()


# ----------------------------------------------------------------------
# Deterministic interleavings: epoch grace, compaction ownership
# ----------------------------------------------------------------------


def test_reader_critical_section_defers_demotion():
    """A reader inside a critical section pins the global epoch, so a
    cooling block cannot cross its two-epoch grace until the reader
    leaves — the buffer it may still dereference stays hot."""
    schedule = sanitizer.ScheduleController(seed=13)
    print(f"schedule seed={schedule.seed}")
    with sanitizer.enabled(schedule=schedule) as san:
        m = _budgeted(8)
        persons = Collection(TPerson, manager=m)
        _fill_blocks(persons, 4, age=5)

        gate = schedule.pause_at("scan.block", thread="tier-reader")
        seen = []

        def reader():
            from repro.query import runtime

            with m.critical_section():
                for blk in runtime.scan_blocks(m, persons.context):
                    seen.append(blk.valid_count)

        t = threading.Thread(target=reader, name="tier-reader")
        t.start()
        assert gate.wait_parked(timeout=10.0), "reader never reached the scan"

        # Retarget the budget below the pool while the reader is parked:
        # maintain() starts cooling but cannot demote (the grace epoch is
        # unreachable while the reader pins the global epoch).
        m.pager.set_budget(BS)
        m.pager.maintain()
        counts = m.pager.residency_counts()
        assert counts["cold"] == 0
        assert counts["cooling"] >= 1

        gate.release()
        t.join(timeout=10.0)
        assert not t.is_alive() and seen

        m.pager.maintain()
        assert m.pager.residency_counts()["cold"] >= 1
        assert m.pager.hot_bytes() <= m.pager.budget
        assert sorted(h.age for h in persons) == [5] * len(persons)
        san.assert_clean()
        m.close()


def test_compaction_owned_blocks_are_not_evicted():
    """Blocks claimed by an in-flight compaction are ineligible victims;
    eviction waits for the compactor to finish (the sanitizer's
    evict-owned-block invariant rides every demotion)."""
    schedule = sanitizer.ScheduleController(seed=17)
    print(f"schedule seed={schedule.seed}")
    with sanitizer.enabled(schedule=schedule) as san:
        m = _budgeted(8)
        persons = Collection(TPerson, manager=m)
        handles = _fill_blocks(persons, 4, age=3)
        keep = handles[::4]
        for h in handles:
            if h not in keep:
                persons.remove(h)

        gate = schedule.pause_at("compact.waiting")
        result = []
        compactor = threading.Thread(
            target=lambda: result.append(
                persons.compact(occupancy_threshold=0.9)
            ),
            name="smc-compactor",
        )
        compactor.start()
        assert gate.wait_parked(timeout=10.0), "compactor never parked"

        # Every under-occupied block is claimed by the parked compaction;
        # the pager must find no victim among them.
        m.pager.set_budget(BS)
        m.pager.maintain()
        owned = [
            b
            for b in persons.context.blocks()
            if b.compacting or b.compaction_group is not None
        ]
        assert owned
        assert all(b.residency != "cold" for b in owned)

        gate.release()
        compactor.join(timeout=10.0)
        assert not compactor.is_alive() and result

        m.pager.maintain()
        assert m.pager.hot_bytes() <= m.pager.budget
        assert sorted(h.age for h in persons) == [3] * len(keep)
        san.assert_clean()
        m.close()


# ----------------------------------------------------------------------
# Sanitizer invariants (synthetic events)
# ----------------------------------------------------------------------


class _FakeBlock:
    block_id = 99


def _evict_event(**overrides):
    data = dict(
        manager=None,
        block=_FakeBlock(),
        cool_epoch=4,
        epoch=6,
        pin_count=0,
        was_active=False,
        was_compacting=False,
        was_queued=False,
        was_dirty=True,
    )
    data.update(overrides)
    return data


def test_sanitizer_rejects_bad_tier_transitions():
    with sanitizer.enabled():
        san = _hooks.SANITIZER
        san.event("tier.evict", **_evict_event())  # clean demotion passes
        with pytest.raises(ProtocolViolation, match="evict-pinned-block"):
            san.event("tier.evict", **_evict_event(pin_count=1))
        with pytest.raises(ProtocolViolation, match="evict-owned-block"):
            san.event("tier.evict", **_evict_event(was_active=True))
        with pytest.raises(ProtocolViolation, match="evict-owned-block"):
            san.event("tier.evict", **_evict_event(was_compacting=True))
        with pytest.raises(ProtocolViolation, match="evict-before-grace"):
            san.event("tier.evict", **_evict_event(cool_epoch=5, epoch=6))
        san.event(
            "tier.fault",
            manager=None,
            block=_FakeBlock(),
            residency="hot",
            tier_offset=4096,
            pin_count=0,
            seconds=0.0,
        )
        with pytest.raises(ProtocolViolation, match="fault-left-cold"):
            san.event(
                "tier.fault",
                manager=None,
                block=_FakeBlock(),
                residency="cold",
                tier_offset=4096,
                pin_count=0,
                seconds=0.0,
            )
        with pytest.raises(ProtocolViolation, match="fault-left-cold"):
            san.event(
                "tier.fault",
                manager=None,
                block=_FakeBlock(),
                residency="hot",
                tier_offset=-1,
                pin_count=0,
                seconds=0.0,
            )


# ----------------------------------------------------------------------
# Tier store
# ----------------------------------------------------------------------


def test_tier_store_spill_map_free_roundtrip():
    import mmap as _mmap

    store = TierStore(100)  # rounds up to the mapping granularity
    assert store.region_size % _mmap.ALLOCATIONGRANULARITY == 0
    try:
        a = store.spill(b"alpha")
        b = store.spill(b"bravo")
        assert a != b and store.allocated_bytes == 2 * store.region_size

        seg = store.map_region(a, store.region_size)
        assert bytes(seg.buf[:5]) == b"alpha"
        with pytest.raises(TypeError):
            seg.buf[0:1] = b"x"
        seg.release()

        # Rewriting in place reuses the region; freeing recycles it.
        assert store.spill(b"ALPHA", a) == a
        store.free_region(b)
        assert store.spill(b"charlie") == b
        assert store.file_bytes == 2 * store.region_size
    finally:
        store.close()
    assert store.path is None
    with pytest.raises(ValueError):
        store.spill(b"after close")
    store.close()  # idempotent


def test_tier_store_rejects_oversized_images():
    store = TierStore(1)
    try:
        with pytest.raises(ValueError):
            store.spill(b"x" * (store.region_size + 1))
    finally:
        store.close()


# ----------------------------------------------------------------------
# Governor tenancy (budget arbitration)
# ----------------------------------------------------------------------


def _static_tenant(usage=0, misses=0):
    shares = []
    return shares, dict(
        usage=lambda: usage,
        counters=lambda: (0, misses),
        set_budget=shares.append,
    )


def test_governor_floor_honored_under_miss_spike():
    gov = MemoryGovernor(1 << 20, rebalance_every=1)
    quiet_shares, quiet = _static_tenant()
    gov.register("quiet", **quiet)

    class _Thrasher:
        misses = 0
        shares = []

    gov.register(
        "thrasher",
        usage=lambda: 0,
        counters=lambda: (0, _Thrasher.misses),
        set_budget=_Thrasher.shares.append,
        weight=4.0,
    )
    _Thrasher.misses = 1_000_000  # spike
    gov.rebalance()
    floor = int(0.25 * gov.budget_bytes / 2)
    assert quiet_shares[-1] >= floor  # quiet tenant keeps its floor
    assert _Thrasher.shares[-1] > quiet_shares[-1]  # misses pull the pool
    assert quiet_shares[-1] + _Thrasher.shares[-1] <= gov.budget_bytes


def test_governor_unregister_resplits_without_starving():
    gov = MemoryGovernor(1 << 20)
    a_shares, a = _static_tenant()
    b_shares, b = _static_tenant()
    gov.register("a", **a)
    gov.register("b", **b)
    floor_two = int(0.25 * gov.budget_bytes / 2)
    assert min(a_shares[-1], b_shares[-1]) >= floor_two

    gov.unregister("b")
    floor_one = int(0.25 * gov.budget_bytes)
    assert floor_one > floor_two  # floors only grow as the population shrinks
    assert a_shares[-1] >= floor_one
    assert "b" not in gov.snapshot()["tenants"]
    with pytest.raises(KeyError):
        gov.unregister("b")


def test_pager_as_governor_tenant():
    m = _budgeted(2)
    pager = m.pager
    persons = Collection(TPerson, manager=m)
    _fill_blocks(persons, 6)
    gov = MemoryGovernor(64 * BS)
    gov.register(
        "block_pool",
        usage=pager.governor_usage,
        counters=pager.governor_counters,
        set_budget=pager.set_budget,
        weight=4.0,
    )
    assert pager.budget == gov.snapshot()["tenants"]["block_pool"]["share_bytes"]
    pager.maintain()
    assert pager.hot_bytes() <= pager.budget
    assert gov.usage_bytes() >= pager.hot_bytes()
    gov.unregister("block_pool")
    m.close()


# ----------------------------------------------------------------------
# Introspection: telemetry, residency attribution, CLI info
# ----------------------------------------------------------------------


def test_telemetry_and_residency_by_context():
    m = _budgeted(2)
    persons = Collection(TPerson, manager=m)
    _fill_blocks(persons, 5)
    m.pager.maintain()

    tier = m.telemetry()["tier"]
    for key in (
        "budget_bytes",
        "hot_blocks",
        "cooling_blocks",
        "cold_blocks",
        "tier_file_bytes",
        "faults",
        "evictions",
        "spills",
    ):
        assert key in tier, key
    assert tier["budget_bytes"] == 2 * BS
    assert tier["cold_blocks"] >= 3
    assert tier["tier_file_bytes"] > 0
    assert m.stats.extra["tier_evictions"] == tier["evictions"]

    residency = m.pager.residency_by_context()
    ctx = residency[persons.context.context_id]
    assert ctx["cold"] == tier["cold_blocks"]
    assert ctx["hot"] + ctx["cold"] == len(persons.context.blocks())
    assert "tier" in m.describe()
    m.close()
    assert m.telemetry().get("tier") is None or True  # close is terminal


def test_cli_info_reports_residency(tmp_path):
    import subprocess
    import sys

    snap = str(tmp_path / "tiny.smcsnap")
    gen = subprocess.run(
        [sys.executable, "-m", "repro", "gen", "--sf", "0.0005", "--out", snap],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert gen.returncode == 0, gen.stderr
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "info",
            snap,
            "--memory-budget",
            str(64 * 1024),
            "--block-shift",
            "16",
        ],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    assert "hot" in proc.stdout and "cold" in proc.stdout
    assert "tier: budget" in proc.stdout
    # With the budget the pool was actually demoted under it.
    assert "0 cold blocks" not in proc.stdout


# ----------------------------------------------------------------------
# Process executor over a budgeted pool (cold blocks by file offset)
# ----------------------------------------------------------------------


def test_process_pool_reads_cold_blocks(tpch_small):
    from repro.query.procexec import ProcessScanPool

    plain = load_smc(tpch_small, columnar=True)
    tiered = load_smc(
        tpch_small,
        columnar=True,
        manager=MemoryManager(block_shift=16, shm=True, memory_budget=1),
    )
    manager = tiered["_manager"]
    pager = manager.pager
    pager.set_budget(max(pager.block_size, pager.hot_bytes() // 4))
    pager.maintain()
    pool = ProcessScanPool(manager, workers=2)
    manager.exec_pool = pool
    try:
        assert pager.residency_counts()["cold"] > 0
        for name in ("q1", "q6", "q14"):
            want = _canonical(ALL_QUERIES[name](plain).run(params=DEFAULT_PARAMS))
            got = _canonical(
                ALL_QUERIES[name](tiered).run(params=DEFAULT_PARAMS, workers=2)
            )
            assert got == want, name
            pager.maintain()
            assert pager.hot_bytes() <= pager.budget, name
    finally:
        plain["_manager"].close()
        manager.close()
