"""TPC-H data generator: determinism and spec-shaped distributions."""

import datetime
from decimal import Decimal

import pytest

from repro.tpch.datagen import NATIONS, REGIONS, generate


def test_determinism(tpch_tiny):
    again = generate(0.0005, seed=42)
    assert again.lineitem == tpch_tiny.lineitem
    assert again.orders == tpch_tiny.orders


def test_different_seed_differs(tpch_tiny):
    other = generate(0.0005, seed=7)
    assert other.lineitem != tpch_tiny.lineitem


def test_row_counts_scale():
    small = generate(0.001)
    big = generate(0.002)
    assert len(big.orders) == 2 * len(small.orders)
    assert len(big.customer) == 2 * len(small.customer)
    assert len(big.partsupp) == 4 * len(big.part)


def test_fixed_dimension_tables(tpch_tiny):
    assert [r["name"] for r in tpch_tiny.region] == REGIONS
    assert len(tpch_tiny.nation) == 25
    assert {n["regionkey"] for n in tpch_tiny.nation} == set(range(5))
    assert [n["name"] for n in tpch_tiny.nation] == [n for n, __ in NATIONS]


def test_scale_factor_validation():
    with pytest.raises(ValueError):
        generate(0)


def test_lineitems_per_order(tpch_tiny):
    per_order = {}
    for li in tpch_tiny.lineitem:
        per_order[li["orderkey"]] = per_order.get(li["orderkey"], 0) + 1
    counts = set(per_order.values())
    assert counts <= set(range(1, 8))
    avg = len(tpch_tiny.lineitem) / len(tpch_tiny.orders)
    assert 3.0 < avg < 5.0


def test_returnflag_watershed(tpch_tiny):
    watershed = datetime.date(1995, 6, 17)
    for li in tpch_tiny.lineitem:
        if li["receiptdate"] <= watershed:
            assert li["returnflag"] in ("R", "A")
        else:
            assert li["returnflag"] == "N"
        assert li["linestatus"] == ("O" if li["shipdate"] > watershed else "F")


def test_date_ordering_invariants(tpch_tiny):
    for li in tpch_tiny.lineitem:
        order = tpch_tiny.orders[li["orderkey"] - 1]
        assert order["orderkey"] == li["orderkey"]
        assert li["shipdate"] > order["orderdate"]
        assert li["receiptdate"] > li["shipdate"]


def test_money_columns_have_two_digit_scale(tpch_tiny):
    for li in tpch_tiny.lineitem[:500]:
        for col in ("extendedprice", "discount", "tax", "quantity"):
            value = li[col]
            assert isinstance(value, Decimal)
            assert value == value.quantize(Decimal("0.01"))
        assert Decimal("0") <= li["discount"] <= Decimal("0.10")
        assert Decimal("0") <= li["tax"] <= Decimal("0.08")
        assert 1 <= li["quantity"] <= 50


def test_totalprice_matches_lineitems(tpch_tiny):
    order = tpch_tiny.orders[0]
    lines = [
        li for li in tpch_tiny.lineitem if li["orderkey"] == order["orderkey"]
    ]
    total = sum(
        li["extendedprice"] * (1 - li["discount"]) * (1 + li["tax"])
        for li in lines
    ).quantize(Decimal("0.01"))
    assert order["totalprice"] == total


def test_foreign_keys_resolve(tpch_tiny):
    n_cust = len(tpch_tiny.customer)
    n_part = len(tpch_tiny.part)
    n_supp = len(tpch_tiny.supplier)
    for o in tpch_tiny.orders:
        assert 1 <= o["custkey"] <= n_cust
    for li in tpch_tiny.lineitem[:1000]:
        assert 1 <= li["partkey"] <= n_part
        assert 1 <= li["suppkey"] <= n_supp


def test_row_counts_helper(tpch_tiny):
    counts = tpch_tiny.row_counts()
    assert counts["region"] == 5
    assert counts["lineitem"] == len(tpch_tiny.lineitem)
