"""Incarnation-overflow repair scan (paper section 3.1)."""

import pytest

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.core.repair import repair_in_thread, repair_references
from repro.errors import NullReferenceError
from repro.memory.indirection import INC_MASK
from repro.memory.manager import MemoryManager

from tests.schemas import TOrder, TPerson


def _force_overflow_free(manager, collection, handle):
    """Free *handle* with its entry's counter at the overflow boundary."""
    entry = handle.ref.entry
    manager.table._inc[entry] = INC_MASK - 1
    # Refresh the handle's captured incarnation so the remove succeeds.
    handle.ref.inc = INC_MASK - 1
    collection.remove(handle)


def test_overflow_retires_entry(manager):
    persons = Collection(TPerson, manager=manager)
    h = persons.add(name="x", age=1)
    _force_overflow_free(manager, persons, h)
    manager.advance_epoch()
    manager.advance_epoch()
    manager.allocate_object(persons.context)  # drains retirement queue
    assert manager.table.retired_count == 1


def test_repair_nulls_stale_references(manager):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    keep = persons.add(name="keep", age=1)
    victim = persons.add(name="victim", age=2)
    o1 = orders.add(orderkey=1, owner=keep)
    o2 = orders.add(orderkey=2, owner=victim)
    persons.remove(victim)
    with pytest.raises(NullReferenceError):
        __ = o2.owner.name
    stats = repair_references(manager)
    assert stats["scanned"] == 2  # only rows with reference fields
    assert stats["nulled"] == 1
    # The stale reference now reads as a clean null...
    assert o2.owner is None
    # ...and the live one is untouched.
    assert o1.owner.name == "keep"


def test_repair_reclaims_retired_entries(manager):
    persons = Collection(TPerson, manager=manager)
    h = persons.add(name="x", age=1)
    entry = h.ref.entry
    _force_overflow_free(manager, persons, h)
    manager.advance_epoch()
    manager.advance_epoch()
    manager.allocate_object(persons.context)
    assert manager.table.retired_count == 1
    stats = repair_references(manager)
    assert stats["reclaimed"] == 1
    assert manager.table.retired_count == 0
    # The entry circulates again, counter reset.
    assert manager.table.incarnation(entry) == 0


def test_repair_columnar_collections(manager):
    persons = ColumnarCollection(TPerson, manager=manager)
    orders = ColumnarCollection(TOrder, manager=manager)
    p = persons.add(name="gone", age=1)
    o = orders.add(orderkey=1, owner=p)
    persons.remove(p)
    stats = repair_references(manager)
    assert stats["nulled"] == 1
    assert o.owner is None


def test_repair_direct_pointer_mode(direct_manager):
    persons = Collection(TPerson, manager=direct_manager)
    orders = Collection(TOrder, manager=direct_manager)
    p = persons.add(name="gone", age=1)
    o = orders.add(orderkey=1, owner=p)
    persons.remove(p)
    stats = repair_references(direct_manager)
    assert stats["nulled"] == 1
    assert o.owner is None


def test_repair_in_thread(manager):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    p = persons.add(name="gone", age=1)
    orders.add(orderkey=1, owner=p)
    persons.remove(p)
    thread = repair_in_thread(manager)
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert next(iter(orders)).owner is None


def test_repair_noop_on_clean_data(manager):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    p = persons.add(name="x", age=1)
    orders.add(orderkey=1, owner=p)
    stats = repair_references(manager)
    assert stats["nulled"] == 0
    assert stats["reclaimed"] == 0
