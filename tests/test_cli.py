"""Command-line interface."""

import subprocess
import sys

import pytest


def _repro(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "tpch.smcsnap")
    proc = _repro("gen", "--sf", "0.001", "--out", path)
    assert proc.returncode == 0, proc.stderr
    assert "wrote" in proc.stdout
    return path


def test_gen_creates_snapshot(snapshot):
    import os

    assert os.path.getsize(snapshot) > 1000


def test_info(snapshot):
    proc = _repro("info", snapshot)
    assert proc.returncode == 0, proc.stderr
    assert "lineitem" in proc.stdout
    assert "MemoryManager" in proc.stdout


def test_query_compiled(snapshot):
    proc = _repro("query", snapshot, "q6")
    assert proc.returncode == 0, proc.stderr
    assert "revenue" in proc.stdout
    assert "1 row(s)" in proc.stdout


def test_query_interpreted_matches(snapshot):
    a = _repro("query", snapshot, "q4")
    b = _repro("query", snapshot, "q4", "--engine", "interpreted")
    assert a.returncode == b.returncode == 0
    # Same table body (timings differ).
    body = lambda out: [l for l in out.splitlines() if "|" in l]  # noqa: E731
    assert body(a.stdout) == body(b.stdout)


def test_query_explain(snapshot):
    proc = _repro("query", snapshot, "q1", "--explain")
    assert proc.returncode == 0
    assert "backend: smc-unsafe" in proc.stdout
    assert "groupby[" in proc.stdout


def test_query_unknown_rejected(snapshot):
    proc = _repro("query", snapshot, "q99")
    assert proc.returncode == 2
    assert "unknown query" in proc.stderr


def test_bench_unknown_figure_rejected():
    proc = _repro("bench", "fig99")
    assert proc.returncode == 2
    assert "no bench matches" in proc.stderr
