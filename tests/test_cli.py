"""Command-line interface."""

import subprocess
import sys

import pytest


def _repro(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "tpch.smcsnap")
    proc = _repro("gen", "--sf", "0.001", "--out", path)
    assert proc.returncode == 0, proc.stderr
    assert "wrote" in proc.stdout
    return path


def test_gen_creates_snapshot(snapshot):
    import os

    assert os.path.getsize(snapshot) > 1000


def test_info(snapshot):
    proc = _repro("info", snapshot)
    assert proc.returncode == 0, proc.stderr
    assert "lineitem" in proc.stdout
    assert "MemoryManager" in proc.stdout


def test_query_compiled(snapshot):
    proc = _repro("query", snapshot, "q6")
    assert proc.returncode == 0, proc.stderr
    assert "revenue" in proc.stdout
    assert "1 row(s)" in proc.stdout


def test_query_interpreted_matches(snapshot):
    a = _repro("query", snapshot, "q4")
    b = _repro("query", snapshot, "q4", "--engine", "interpreted")
    assert a.returncode == b.returncode == 0
    # Same table body (timings differ).
    body = lambda out: [l for l in out.splitlines() if "|" in l]  # noqa: E731
    assert body(a.stdout) == body(b.stdout)


def test_query_explain(snapshot):
    proc = _repro("query", snapshot, "q1", "--explain")
    assert proc.returncode == 0
    assert "backend: smc-unsafe" in proc.stdout
    assert "groupby[" in proc.stdout


def test_query_unknown_rejected(snapshot):
    proc = _repro("query", snapshot, "q99")
    assert proc.returncode == 2
    assert "unknown query" in proc.stderr


def test_bench_unknown_figure_rejected():
    proc = _repro("bench", "fig99")
    assert proc.returncode == 2
    assert "no bench matches" in proc.stderr

# ----------------------------------------------------------------------
# Durability commands
# ----------------------------------------------------------------------


@pytest.fixture()
def data_dir(snapshot, tmp_path):
    """A data directory initialized from the module's TPC-H snapshot."""
    path = str(tmp_path / "data")
    proc = _repro("restore", path, snapshot)
    assert proc.returncode == 0, proc.stderr
    assert "restored" in proc.stdout
    return path


def test_restore_refuses_existing_dir(data_dir, snapshot):
    proc = _repro("restore", data_dir, snapshot)
    assert proc.returncode == 2
    assert "initialized" in proc.stderr


def test_recover_reports_state(data_dir):
    proc = _repro("recover", data_dir)
    assert proc.returncode == 0, proc.stderr
    assert "recovered" in proc.stdout
    assert "lineitem" in proc.stdout


def test_recover_uninitialized_dir_rejected(tmp_path):
    proc = _repro("recover", str(tmp_path / "empty"))
    assert proc.returncode == 1
    assert "not an initialized data directory" in proc.stderr


def test_log_dump_of_data_dir(data_dir):
    proc = _repro("log-dump", data_dir)
    assert proc.returncode == 0, proc.stderr
    assert "segment starts at LSN 1" in proc.stdout
    assert "0 records (0 committed)" in proc.stdout


def test_snapshot_export_roundtrips(data_dir, tmp_path):
    out = str(tmp_path / "export.smcsnap")
    proc = _repro("snapshot", data_dir, out)
    assert proc.returncode == 0, proc.stderr
    info = _repro("info", out)
    assert info.returncode == 0, info.stderr
    assert "lineitem" in info.stdout
