"""Data block layout, slot transitions and directory scans."""

import numpy as np
import pytest

from repro.memory.addressing import AddressSpace
from repro.memory.block import BLOCK_HEADER_SIZE, Block
from repro.memory.slots import FREE, LIMBO, VALID


@pytest.fixture
def space():
    return AddressSpace(block_shift=12)  # 4 KiB blocks keep tests small


@pytest.fixture
def block(space):
    return Block(space, slot_size=64, type_id=1, context_id=0)


def test_slot_size_must_be_aligned(space):
    with pytest.raises(ValueError):
        Block(space, slot_size=30, type_id=1, context_id=0)


def test_slot_size_must_fit_header(space):
    with pytest.raises(ValueError):
        Block(space, slot_size=8, type_id=1, context_id=0)


def test_oversized_slot_rejected(space):
    with pytest.raises(ValueError):
        Block(space, slot_size=1 << 13, type_id=1, context_id=0)


def test_slot_count_fits_block(block, space):
    per_slot = block.slot_size + 4 + 8
    assert block.slot_count >= (space.block_size - BLOCK_HEADER_SIZE) // per_slot - 1
    assert block.slot_count >= 1


def test_segments_do_not_overlap(block, space):
    dir_start = BLOCK_HEADER_SIZE + block.slot_count * block.slot_size
    assert block.object_offset == BLOCK_HEADER_SIZE
    assert dir_start + block.slot_count * 4 <= space.block_size
    # back-pointer view is 8-byte aligned inside the buffer
    assert block.backptrs.dtype == np.int64


def test_slot_address_roundtrip(block):
    for slot in (0, 1, block.slot_count - 1):
        addr = block.slot_address(slot)
        assert block.slot_of_address(addr) == slot


def test_block_alignment_trick(block, space):
    addr = block.slot_address(3)
    assert space.block_at(addr) is block


def test_fresh_block_all_free(block):
    assert block.valid_count == 0
    assert all(block.state_of(s) == FREE for s in range(block.slot_count))
    assert len(block.valid_slots()) == 0


def test_mark_valid_and_limbo(block):
    block.mark_valid(0)
    assert block.state_of(0) == VALID
    assert block.valid_count == 1
    block.mark_limbo(0, epoch=5)
    assert block.state_of(0) == LIMBO
    assert block.removal_epoch_of(0) == 5
    assert block.valid_count == 0
    assert block.limbo_count == 1


def test_mark_limbo_requires_valid(block):
    with pytest.raises(ValueError):
        block.mark_limbo(0, epoch=1)


def test_valid_slots_vectorised(block):
    for slot in (1, 3, 5):
        block.mark_valid(slot)
    assert block.valid_slots().tolist() == [1, 3, 5]


def test_find_allocatable_prefers_first_free(block):
    assert block.find_allocatable(0, global_epoch=0) == 0
    block.mark_valid(0)
    assert block.find_allocatable(0, global_epoch=0) == 1


def test_find_allocatable_skips_young_limbo(block):
    block.mark_valid(0)
    block.mark_limbo(0, epoch=10)
    for s in range(1, block.slot_count):
        block.mark_valid(s)
    assert block.find_allocatable(0, global_epoch=11) is None
    assert block.find_allocatable(0, global_epoch=12) == 0


def test_find_allocatable_respects_start(block):
    assert block.find_allocatable(5, global_epoch=0) == 5


def test_limbo_fraction_and_occupancy(block):
    n = block.slot_count
    for s in range(n):
        block.mark_valid(s)
    assert block.occupancy == 1.0
    block.mark_limbo(0, 0)
    assert block.limbo_fraction == pytest.approx(1 / n)
    assert block.occupancy == pytest.approx((n - 1) / n)


def test_reset_clears_everything(block):
    block.mark_valid(0)
    block.backptrs[0] = 77
    block.slot_incs[0] = 9
    block.mark_limbo(0, 3)
    block.alloc_cursor = 5
    block.reset(type_id=2, context_id=1)
    assert block.type_id == 2
    assert block.state_of(0) == FREE
    assert block.backptrs[0] == -1
    assert int(block.slot_incs[0]) == 0
    assert block.alloc_cursor == 0
    assert block.limbo_count == 0


def test_reset_refuses_live_objects(block):
    block.mark_valid(0)
    with pytest.raises(ValueError):
        block.reset(type_id=2, context_id=1)


def test_slot_incs_view_is_strided_into_buffer(block):
    block.slot_incs[2] = 12345
    off = block.object_offset + 2 * block.slot_size
    assert int.from_bytes(block.buf[off : off + 4], "little") == 12345


def test_release_returns_address_range(block, space):
    addr = block.slot_address(0)
    block.release()
    assert space.try_block_at(addr) is None
