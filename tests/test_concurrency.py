"""Concurrent adds, removes, queries and compaction.

The paper's thread-safety story (sections 3.4, 4): concurrent removals
may run against blocks other threads allocate into; queries enumerate
inside critical sections and see a consistent bag; freed slots are only
recycled two epochs later, so readers never observe torn objects — they
observe either the object (matching incarnation) or null.
"""

import random
import threading
import time

import pytest

from repro.core.collection import Collection
from repro.errors import NullReferenceError
from repro.memory.manager import MemoryManager
from repro.query.builder import Count, Sum
from repro.query.expressions import param

from tests.schemas import TPerson


def test_concurrent_allocations_from_multiple_threads():
    m = MemoryManager()
    persons = Collection(TPerson, manager=m)
    n_threads, per_thread = 4, 500
    barrier = threading.Barrier(n_threads)

    def worker(tid):
        barrier.wait()
        for i in range(per_thread):
            persons.add(name=f"t{tid}", age=i)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(persons) == n_threads * per_thread
    assert len(list(persons)) == n_threads * per_thread
    m.close()


def test_concurrent_add_remove_churn():
    m = MemoryManager(block_shift=12)
    persons = Collection(TPerson, manager=m)
    seed = [persons.add(name=f"s{i}", age=i) for i in range(500)]
    errors = []

    def adder():
        try:
            for i in range(1000):
                persons.add(name=f"a{i}", age=i)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def remover():
        try:
            for h in seed:
                persons.remove(h)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=adder), threading.Thread(target=remover)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(persons) == 1000
    assert all(not h.is_alive for h in seed)
    m.close()


def test_readers_see_object_or_null_never_garbage():
    """Readers racing with removal+reallocation must never read a value
    that the victim object never had (type-safe reclamation)."""
    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    victims = [persons.add(name="victim", age=7) for __ in range(100)]
    stop = threading.Event()
    bad = []

    def reader():
        while not stop.is_set():
            for h in victims:
                try:
                    with m.critical_section():
                        age = h.age
                        name = h.name
                    if age != 7 or name != "victim":
                        bad.append((name, age))
                except NullReferenceError:
                    pass

    def churner():
        rnd = random.Random(1)
        for h in victims:
            persons.remove(h)
            # Recycle aggressively with differently-valued objects.
            for i in range(20):
                persons.add(name="fresh", age=rnd.randrange(100, 200))

    readers = [threading.Thread(target=reader) for __ in range(2)]
    for t in readers:
        t.start()
    churner()
    time.sleep(0.05)
    stop.set()
    for t in readers:
        t.join()
    assert not bad
    m.close()


def test_queries_during_mutation_return_consistent_counts():
    m = MemoryManager()
    persons = Collection(TPerson, manager=m)
    for i in range(2000):
        persons.add(name="base", age=50)
    results = []
    stop = threading.Event()

    def querier():
        q = (
            persons.query()
            .where(TPerson.age == param("a"))
            .aggregate(n=Count())
        )
        while not stop.is_set():
            results.append(q.run(a=50).rows[0][0])

    def mutator():
        for i in range(300):
            h = persons.add(name="extra", age=10)
            persons.remove(h)

    qt = threading.Thread(target=querier)
    mt = threading.Thread(target=mutator)
    qt.start()
    mt.start()
    mt.join()
    stop.set()
    qt.join()
    # The age==50 population never changes; every query sees all of it.
    assert results
    assert set(results) == {2000}
    m.close()


def test_compaction_concurrent_with_queries_and_inserts():
    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    handles = []
    while persons.context.block_count() < 6:
        handles.append(persons.add(name=f"p{len(handles)}", age=1))
    keep = handles[::5]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    expected_base = len(keep)
    stop = threading.Event()
    errors = []
    totals = []

    def querier():
        q = persons.query().where(TPerson.age == 1).aggregate(n=Count())
        while not stop.is_set():
            try:
                totals.append(q.run().rows[0][0])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

    qt = threading.Thread(target=querier)
    qt.start()
    time.sleep(0.01)
    moved = persons.compact(occupancy_threshold=0.9)
    time.sleep(0.02)
    stop.set()
    qt.join()
    assert not errors
    # Every query observed exactly the stable population.
    assert set(totals) == {expected_base}
    assert len(persons) == expected_base
    m.close()


def test_epoch_advances_under_concurrent_load():
    m = MemoryManager(block_shift=10, reclamation_threshold=0.01)
    persons = Collection(TPerson, manager=m)

    def churn():
        local = [persons.add(name="c", age=i) for i in range(300)]
        for h in local:
            persons.remove(h)
        for i in range(300):
            persons.add(name="c2", age=i)

    threads = [threading.Thread(target=churn) for __ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.epochs.global_epoch > 0
    assert m.stats.limbo_reuses + m.stats.blocks_recycled > 0
    m.close()


def test_enumeration_never_sees_unpublished_objects():
    """Regression: slots become VALID only after the object is fully
    constructed (back-pointer + fields written), so a concurrent
    enumerator can never build a handle with a dangling entry."""
    m = MemoryManager()
    persons = Collection(TPerson, manager=m)
    for i in range(200):
        persons.add(name="seed", age=1)
    stop = threading.Event()
    errors = []

    def enumerator():
        while not stop.is_set():
            try:
                for h in persons:
                    name = h.name
                    if name not in ("seed", "new"):
                        errors.append(name)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

    threads = [threading.Thread(target=enumerator) for __ in range(2)]
    for t in threads:
        t.start()
    for i in range(3000):
        persons.add(name="new", age=2)
    stop.set()
    for t in threads:
        t.join()
    assert not errors
    m.close()


def test_randomized_multithread_stress():
    """Seeded multi-thread stress: concurrent adders, removers, readers
    and a compactor churn for ~2 seconds.  Per-thread RNGs derive from one
    run seed, which is printed (and included in the failure message) so a
    failing schedule can be replayed with ``SMC_STRESS_SEED=<seed>``.
    """
    import os

    seed = int(os.environ.get("SMC_STRESS_SEED", "0")) or random.randrange(
        1 << 32
    )
    print(f"stress seed={seed}")
    m = MemoryManager(block_shift=12, reclamation_threshold=0.1)
    persons = Collection(TPerson, manager=m)
    pool = [persons.add(name=f"s{i}", age=i % 97) for i in range(300)]
    pool_lock = threading.Lock()
    errors = []
    stop = threading.Event()

    def mutator(tid):
        rnd = random.Random(f"{seed}:mut{tid}")
        try:
            while not stop.is_set():
                if rnd.random() < 0.55:
                    h = persons.add(name=f"m{tid}", age=rnd.randrange(97))
                    with pool_lock:
                        pool.append(h)
                else:
                    with pool_lock:
                        h = (
                            pool.pop(rnd.randrange(len(pool)))
                            if len(pool) > 50
                            else None
                        )
                    if h is not None:
                        persons.remove(h)
        except Exception as exc:
            errors.append(exc)
            stop.set()

    def reader(tid):
        rnd = random.Random(f"{seed}:read{tid}")
        try:
            while not stop.is_set():
                with pool_lock:
                    sample = [
                        pool[rnd.randrange(len(pool))] for __ in range(30)
                    ]
                for h in sample:
                    try:
                        age = h.age
                    except NullReferenceError:
                        continue  # lost the race with a remover: fine
                    if not 0 <= age < 97:
                        raise AssertionError(f"torn read: age={age}")
        except Exception as exc:
            errors.append(exc)
            stop.set()

    def compactor_loop():
        try:
            while not stop.is_set():
                persons.compact(occupancy_threshold=0.5)
                time.sleep(0.05)
        except Exception as exc:
            errors.append(exc)
            stop.set()

    threads = [
        threading.Thread(target=mutator, args=(t,), name=f"stress-mut-{t}")
        for t in range(3)
    ]
    threads += [
        threading.Thread(target=reader, args=(t,), name=f"stress-read-{t}")
        for t in range(2)
    ]
    threads.append(
        threading.Thread(target=compactor_loop, name="stress-compact")
    )
    for t in threads:
        t.start()
    stop.wait(timeout=2.0)
    stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "stress thread hung"
    assert not errors, (
        f"stress failed (replay with SMC_STRESS_SEED={seed}): {errors[:3]}"
    )
    # The bookkeeping reconciles exactly: every handle still in the pool is
    # alive, every popped one is gone, and enumeration agrees with len().
    with pool_lock:
        assert all(h.is_alive for h in pool)
        assert len(persons) == len(pool)
        assert len(list(persons)) == len(pool)
    m.close()
