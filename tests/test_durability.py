"""Durability subsystem: WAL framing, checkpoints, crash recovery.

The crash-matrix test is the subsystem's acceptance gate: every
injected crash point (mid-append, pre-fsync with power loss, checkpoint
begin/renames) must recover to a state whose TPC-H query results are
byte-identical to the never-crashed reference, a torn final WAL record
must be dropped silently, and interior corruption must be refused with
an error naming the LSN.
"""

import datetime
import os
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.durability import (
    DataDirError,
    DurableStore,
    MutationError,
    RecoveryError,
    WalCorruptionError,
    WriteAheadLog,
    recover,
    scan_wal,
)
from repro.durability.wal import (
    ADD,
    BEGIN,
    COMMIT,
    FILE_HEADER_SIZE,
    RECORD_HEADER_SIZE,
)
from repro.errors import InjectedFaultError
from repro.memory.manager import MemoryManager

from tests.schemas import TNote, TOrder, TPerson


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "test.log")


@pytest.fixture
def data_dir(tmp_path):
    return str(tmp_path / "data")


def _fresh_store(data_dir, **kwargs):
    manager = MemoryManager(string_dict=True)
    collections = {
        "persons": Collection(TPerson, manager=manager),
        "orders": Collection(TOrder, manager=manager),
        "notes": Collection(TNote, manager=manager),
        "_manager": manager,
    }
    store = DurableStore.create(data_dir, collections=collections, **kwargs)
    return store, collections, manager


def _state(collections):
    return {
        "persons": sorted(
            (h.name, h.age, h.balance) for h in collections["persons"]
        ),
        "orders": sorted(
            (h.orderkey, h.owner.name if h.owner else None, h.total)
            for h in collections["orders"]
        ),
        "notes": sorted((h.text, h.stars) for h in collections["notes"]),
    }


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------


class TestWal:
    def test_append_scan_roundtrip(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="none")
        lsns = [wal.append(ADD, {"c": "x", "e": i}) for i in range(5)]
        wal.close()
        scan = scan_wal(wal_path)
        assert lsns == [1, 2, 3, 4, 5]
        assert [r.lsn for r in scan.records] == lsns
        assert [r.payload["e"] for r in scan.records] == list(range(5))
        assert scan.torn_bytes == 0
        assert scan.committed_count == 5

    def test_torn_final_record_dropped(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="none")
        for i in range(3):
            wal.append(ADD, {"c": "x", "e": i})
        wal.close()
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.truncate(size - 4)  # cut into the last record's payload
        scan = scan_wal(wal_path)
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_bytes > 0

    def test_torn_header_dropped(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="none")
        wal.append(ADD, {"c": "x", "e": 0})
        end = wal.size
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # 3 bytes of a never-finished header
        scan = scan_wal(wal_path)
        assert scan.committed_count == 1
        assert scan.good_offset == end
        assert scan.torn_bytes == 3

    def test_interior_corruption_names_lsn(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="none")
        offsets = {}
        for i in range(4):
            lsn = wal.append(ADD, {"c": "x", "e": i})
            offsets[lsn] = wal.size
        wal.close()
        # Flip one payload byte of LSN 2 (an interior record).
        with open(wal_path, "r+b") as fh:
            fh.seek(offsets[1] + RECORD_HEADER_SIZE + 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError) as err:
            scan_wal(wal_path)
        assert err.value.lsn == 2
        assert "LSN 2" in str(err.value)
        assert isinstance(err.value, RecoveryError)

    def test_trailing_open_batch_excluded_and_truncated(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="none")
        with wal.batch():
            wal.append(ADD, {"e": 0})
        # A batch whose COMMIT never lands: append BEGIN + one record by
        # hand, then "crash" without the COMMIT.
        wal.append(BEGIN, {"n": 99})
        wal.append(ADD, {"e": 1})
        wal.close()
        scan = scan_wal(wal_path)
        assert scan.open_batch_records == 2
        kinds = [r.kind for r in scan.committed_records()]
        assert kinds == [BEGIN, ADD, COMMIT]

        reopened = WriteAheadLog.open(wal_path, fsync_policy="none")
        assert reopened.next_lsn == 4  # LSNs 4-5 were dropped
        lsn = reopened.append(ADD, {"e": 2})
        assert lsn == 4
        reopened.close()
        again = scan_wal(wal_path)
        assert [r.lsn for r in again.records] == [1, 2, 3, 4]

    def test_not_a_wal_rejected(self, tmp_path):
        path = str(tmp_path / "junk.log")
        with open(path, "wb") as fh:
            fh.write(b"definitely not a log")
        with pytest.raises(WalCorruptionError):
            scan_wal(path)

    def test_batch_is_single_fsync(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_policy="commit")
        with wal.batch():
            for i in range(10):
                wal.append(ADD, {"e": i})
        assert wal.fsyncs == 1
        wal.close()


# ----------------------------------------------------------------------
# Store: log + replay equality
# ----------------------------------------------------------------------


class TestStoreRecovery:
    def test_mutations_replay_exactly(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        p1 = colls["persons"].add(name="alice", age=30, balance=Decimal("1.50"))
        p2 = colls["persons"].add(name="bob", age=40)
        colls["orders"].add(
            orderkey=1,
            owner=p1,
            total=Decimal("9.99"),
            placed=datetime.date(2024, 5, 17),
        )
        colls["orders"].add(orderkey=2, owner=None)
        colls["notes"].add(text="hello world", stars=5)
        colls["notes"].add(text="hello world", stars=1)  # sid reuse
        p1.age = 31
        colls["persons"].remove(p2)
        expected = _state(colls)
        store.close()
        manager.close()

        loaded, report = recover(data_dir)
        assert _state(loaded) == expected
        assert report.replayed > 0
        assert report.interned == 1  # "hello world" interned once
        loaded["_manager"].close()

    def test_open_resumes_and_checkpoint_truncates(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        colls["persons"].add(name="a", age=1)
        store.close()
        manager.close()

        s2 = DurableStore.open(data_dir)
        s2.collections["persons"].add(name="b", age=2)
        manifest = s2.checkpoint()
        assert manifest["rows"] == 2
        # The old segment is swept; the new one starts after the cut.
        wal_files = [
            f for f in os.listdir(data_dir) if f.startswith("wal-")
        ]
        assert wal_files == [os.path.basename(s2.wal.path)]
        s2.collections["persons"].add(name="c", age=3)
        s2.close()

        loaded, report = recover(data_dir)
        assert sorted(h.name for h in loaded["persons"]) == ["a", "b", "c"]
        assert report.checkpoint_rows == 2
        loaded["_manager"].close()

    def test_remove_where_is_logged(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        for i in range(10):
            colls["persons"].add(name=f"p{i}", age=i)
        removed = colls["persons"].remove_where(TPerson.age < 5)
        assert removed == 5
        expected = _state(colls)
        store.close()
        manager.close()
        loaded, __ = recover(data_dir)
        assert _state(loaded) == expected
        loaded["_manager"].close()

    def test_recovered_store_keeps_indexes(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        colls["persons"].create_index("age")
        for i in range(20):
            colls["persons"].add(name=f"p{i}", age=i % 4)
        store.checkpoint()
        colls["persons"].add(name="late", age=2)
        store.close()
        manager.close()

        loaded, __ = recover(data_dir)
        (index,) = loaded["persons"]._indexes
        assert index.field_name == "age"
        assert len(index.get(2)) == 6  # 5 checkpointed + 1 replayed
        loaded["_manager"].close()

    def test_uninitialized_dir_refused(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(str(tmp_path / "nothing"))

    def test_double_create_refused(self, data_dir):
        store, __, manager = _fresh_store(data_dir)
        store.close()
        manager.close()
        with pytest.raises(DataDirError):
            DurableStore.create(data_dir)

    def test_interior_corruption_refused_at_recovery(self, data_dir):
        store, colls, manager = _fresh_store(data_dir, fsync_policy="none")
        for i in range(5):
            colls["persons"].add(name=f"p{i}", age=i)
        wal_path = store.wal.path
        store.close()
        manager.close()
        with open(wal_path, "r+b") as fh:
            fh.seek(FILE_HEADER_SIZE + RECORD_HEADER_SIZE + 4)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(RecoveryError) as err:
            recover(data_dir)
        assert "LSN 1" in str(err.value)


# ----------------------------------------------------------------------
# Mutation batches (the service-facing op API)
# ----------------------------------------------------------------------


class TestApply:
    def test_apply_batch_roundtrip(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        results = store.apply(
            [
                {
                    "op": "add",
                    "collection": "persons",
                    "values": {"name": "ann", "age": 33},
                },
            ]
        )
        entry = results[0]["entry"]
        store.apply(
            [
                {
                    "op": "add",
                    "collection": "orders",
                    "values": {
                        "orderkey": 7,
                        "owner": {"$r": entry},
                        "total": {"$d": "12.34"},
                    },
                },
                {
                    "op": "update",
                    "collection": "persons",
                    "entry": entry,
                    "values": {"age": 34},
                },
            ]
        )
        assert [h.age for h in colls["persons"]] == [34]
        (order,) = colls["orders"]
        assert order.owner.name == "ann"
        assert order.total == Decimal("12.34")
        expected = _state(colls)
        store.close()
        manager.close()
        loaded, __ = recover(data_dir)
        assert _state(loaded) == expected
        loaded["_manager"].close()

    def test_apply_rejects_garbage(self, data_dir):
        store, colls, manager = _fresh_store(data_dir)
        with pytest.raises(MutationError):
            store.apply([])
        with pytest.raises(MutationError):
            store.apply([{"op": "add", "collection": "nope", "values": {}}])
        with pytest.raises(MutationError):
            store.apply(
                [
                    {
                        "op": "add",
                        "collection": "persons",
                        "values": {"bogus": 1},
                    }
                ]
            )
        with pytest.raises(MutationError):
            store.apply(
                [{"op": "remove", "collection": "persons", "entry": -3}]
            )
        with pytest.raises(MutationError):
            store.apply(
                [{"op": "frobnicate", "collection": "persons"}]
            )
        store.close()
        manager.close()


# ----------------------------------------------------------------------
# Crash matrix (acceptance gate)
# ----------------------------------------------------------------------

CRASH_POINTS = [
    ("wal.append.mid", False, 30),
    ("wal.append.mid", False, 0),
    ("wal.fsync", True, 1),
    ("checkpoint.begin", False, 0),
    ("checkpoint.snapshot_rename", False, 0),
    ("checkpoint.manifest_rename", False, 0),
]


class TestCrashMatrix:
    @pytest.mark.parametrize(
        "point,power_loss,after",
        CRASH_POINTS,
        ids=[f"{p}-pl{int(pl)}-a{a}" for p, pl, a in CRASH_POINTS],
    )
    def test_recovery_is_byte_exact(
        self, tpch_tiny, tmp_path, point, power_loss, after
    ):
        """Crash anywhere; recovered TPC-H answers match the reference."""
        from repro import sanitizer
        from repro.tpch.loader import load_smc
        from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

        def run_mix(collections):
            plain = {
                k: v for k, v in collections.items() if not k.startswith("_")
            }
            return {
                name: sorted(
                    map(
                        repr,
                        QUERIES[name](plain)
                        .run(engine="compiled", params=DEFAULT_PARAMS)
                        .rows,
                    )
                )
                for name in ("q1", "q6")
            }

        data_dir = str(tmp_path / "dd")
        collections = load_smc(tpch_tiny)
        collections["scratch"] = Collection(
            TNote, manager=collections["_manager"], name="scratch"
        )
        store = DurableStore.create(
            data_dir, collections=collections, fsync_policy="commit"
        )
        reference = run_mix(collections)

        plan = sanitizer.FaultPlan().crash_at(
            point, after=after, power_loss=power_loss
        )
        with sanitizer.enabled(faults=plan):
            with pytest.raises(InjectedFaultError):
                for i in range(60):
                    with store.batch():
                        for j in range(5):
                            collections["scratch"].add(
                                text=f"note-{i}-{j}", stars=j
                            )
                store.checkpoint()
        assert plan.fired.get(point) == 1
        # Simulated kill: no close(); recover from what hit the disk.
        collections["_manager"].close()

        loaded, report = recover(data_dir)
        assert run_mix(loaded) == reference
        # The recovered scratch rows are a committed prefix of the run.
        texts = sorted(h.text for h in loaded["scratch"])
        assert len(texts) % 5 == 0
        assert texts == sorted(
            f"note-{i}-{j}" for i in range(len(texts) // 5) for j in range(5)
        )
        loaded["_manager"].close()

    def test_torn_append_reopen_appends_cleanly(self, data_dir):
        """After a mid-append crash, open() truncates and resumes."""
        from repro import sanitizer

        store, colls, manager = _fresh_store(data_dir, fsync_policy="commit")
        colls["persons"].add(name="before", age=1)
        plan = sanitizer.FaultPlan().crash_at("wal.append.mid")
        with sanitizer.enabled(faults=plan):
            with pytest.raises(InjectedFaultError):
                colls["persons"].add(name="torn", age=2)
        manager.close()

        s2 = DurableStore.open(data_dir)
        assert sorted(h.name for h in s2.collections["persons"]) == ["before"]
        s2.collections["persons"].add(name="after", age=3)
        s2.close()
        loaded, __ = recover(data_dir)
        assert sorted(h.name for h in loaded["persons"]) == [
            "after",
            "before",
        ]
        loaded["_manager"].close()


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestServicePersistence:
    def test_mutate_op_and_restart(self, data_dir):
        from repro.service.server import QueryService

        store, colls, manager = _fresh_store(data_dir)
        service = QueryService(colls, manager, store=store)
        reply = service.handle(
            {
                "op": "mutate",
                "ops": [
                    {
                        "op": "add",
                        "collection": "persons",
                        "values": {"name": "srv", "age": 9},
                    }
                ],
            }
        )
        assert reply["ok"], reply
        entry = reply["results"][0]["entry"]
        reply = service.handle(
            {
                "op": "mutate",
                "ops": [
                    {
                        "op": "update",
                        "collection": "persons",
                        "entry": entry,
                        "values": {"age": 10},
                    }
                ],
            }
        )
        assert reply["ok"], reply
        bad = service.handle(
            {
                "op": "mutate",
                "ops": [{"op": "add", "collection": "nope", "values": {}}],
            }
        )
        assert not bad["ok"] and bad["error"] == "BAD_REQUEST"
        metrics = service.metrics.expose()
        assert "smc_wal_bytes_total" in metrics
        assert "smc_checkpoint_duration_seconds" in metrics
        assert "smc_recovery_replayed_total" in metrics
        service.close()  # checkpoints + closes the store
        manager.close()

        reopened = DurableStore.open(data_dir)
        assert [
            (h.name, h.age) for h in reopened.collections["persons"]
        ] == [("srv", 10)]
        assert reopened.report.replayed == 0  # close() checkpointed
        reopened.close()

    def test_mutate_without_store_is_bad_request(self, manager):
        from repro.service.server import QueryService

        colls = {"persons": Collection(TPerson, manager=manager)}
        service = QueryService(colls, manager)
        reply = service.handle({"op": "mutate", "ops": []})
        assert not reply["ok"] and reply["error"] == "BAD_REQUEST"
        service.close()
