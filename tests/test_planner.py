"""Cost-based planner, memory governor, and the budgeted caches they govern.

The identity tests pin the planner's core contract: turning the planner
on (conjunct splitting, predicate reordering, access-path choice,
adaptive join sides, morsel hints) never changes what a query returns —
results are byte-identical to the ``--no-planner`` ablation across both
SMC layouts, worker counts, and compaction churn.  The unit tests pin
the cost model's arithmetic, the governor's rebalance invariants, and
the budget/eviction behaviour of the plan cache, StringDict match cache
and WAL group-commit buffer.
"""

import datetime
import os

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.durability.wal import ADD, WriteAheadLog, scan_wal
from repro.memory.governor import MemoryGovernor
from repro.memory.manager import MemoryManager
from repro.query import planner
from repro.query.expressions import BoolOp, param
from repro.rdbms import engine as rdbms_engine
from repro.rdbms.queries import run_plan
from repro.service.metrics import MetricsRegistry
from repro.service.plancache import NOMINAL_PLAN_BYTES, PlanCache
from repro.tpch import load_rdbms, load_smc
from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES
from repro.tpch.schema import Lineitem as L

from tests.schemas import TPerson

ALL_QUERIES = dict(QUERIES)
ALL_QUERIES.update(EXTRA_QUERIES)


def _identical(result, baseline):
    assert list(result.columns) == list(baseline.columns)
    assert repr(result.rows) == repr(baseline.rows)


# ----------------------------------------------------------------------
# Planner on == planner off, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["row", "columnar"])
def test_planner_identity_all_queries(tpch_tiny, layout):
    """Every TPC-H query, both layouts, workers 1 and 4, before and
    after compaction churn: the planned result equals the ablation."""
    colls = load_smc(tpch_tiny, columnar=(layout == "columnar"))
    manager = colls["_manager"]
    try:
        def check_all():
            for name, builder in ALL_QUERIES.items():
                baseline = builder(colls).run(
                    params=DEFAULT_PARAMS, planner=False
                )
                for workers in (1, 4):
                    planned = builder(colls).run(
                        params=DEFAULT_PARAMS, planner=True, workers=workers
                    )
                    _identical(planned, baseline)

        check_all()
        # Churn: drop a stripe of lineitems, compact, and replan — stale
        # zone maps / block counts must never change answers, only costs.
        line = colls["lineitem"]
        victims = [h for i, h in enumerate(line) if i % 7 == 0]
        for h in victims:
            line.remove(h)
        if layout == "row":  # compaction is defined for row-layout SMCs
            line.compact(occupancy_threshold=0.95)
        check_all()
    finally:
        manager.close()


def test_planner_observed_selectivity_recorded(tpch_tiny):
    colls = load_smc(tpch_tiny, columnar=True)
    manager = colls["_manager"]
    try:
        result = QUERIES["q1"](colls).run(params=DEFAULT_PARAMS, planner=True)
        assert result.rows
        extra = manager.stats.extra
        # Q1's shipdate predicate covers nearly the whole relation: the
        # zone test *runs* on every block but prunes nothing.  The
        # counters must say exactly that, not "no zone test happened".
        assert extra.get("zone_tested_blocks", 0) > 0
        assert extra.get("zone_tested_blocks") == extra.get(
            "zone_pruned_blocks", 0
        ) + extra.get("zone_scanned_blocks", 0)
        assert 0 < extra.get("last_scan_selectivity_ppm", 0) <= 1_000_000
        assert extra.get("scan_rows_matched", 0) > 0
    finally:
        manager.close()


def test_prune_off_counts_untested_blocks(tpch_tiny):
    colls = load_smc(tpch_tiny, columnar=True)
    manager = colls["_manager"]
    try:
        QUERIES["q6"](colls).run(params=DEFAULT_PARAMS, prune=False)
        assert manager.stats.extra.get("zone_untested_blocks", 0) > 0
    finally:
        manager.close()


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


def test_split_conjuncts_flattens_top_level_ands():
    a = L.shipdate <= param("d")
    b = L.discount > param("lo")
    c = L.quantity < param("q")
    combined = BoolOp("and", (a, b))
    out = planner.split_conjuncts([combined, c])
    assert out == [a, b, c]
    # "or" is opaque: never split.
    kept = BoolOp("or", (a, b))
    assert planner.split_conjuncts([kept]) == [kept]


def test_nav_depth_and_predicate_cost():
    local = L.shipdate <= param("d")
    one_hop = L.order.ref("orderdate") <= param("d")
    two_hops = L.order.ref("customer").ref("mktsegment") == param("s")
    assert planner.nav_depth(local) == 0
    assert planner.nav_depth(one_hop) == 1
    assert planner.nav_depth(two_hops) == 2
    assert planner.predicate_cost(local) == 1.0
    assert planner.predicate_cost(one_hop) == 1.0 + planner.NAV_STEP_COST
    assert (
        planner.predicate_cost(two_hops)
        == 1.0 + 2 * planner.NAV_STEP_COST
    )


@pytest.fixture(scope="module")
def tpch_smc(tpch_tiny):
    colls = load_smc(tpch_tiny)
    yield colls
    colls["_manager"].close()


def test_range_selectivity_from_zone_maps(tpch_smc):
    line = tpch_smc["lineitem"]
    early = planner.estimate_selectivity(
        L.shipdate <= param("d"), {"d": datetime.date(1992, 6, 1)}, line
    )
    late = planner.estimate_selectivity(
        L.shipdate <= param("d"), {"d": datetime.date(1998, 6, 1)}, line
    )
    assert 0.0 < early < late <= 1.0
    assert late > 0.5  # covers most of the 1992-1998 shipdate domain


def test_eq_selectivity_uses_dictionary_cardinality(tpch_smc):
    line = tpch_smc["lineitem"]
    # returnflag has 3 distinct values -> eq selectivity ~ 1/3, far from
    # the uninformed default of 1.0.
    sel = planner.estimate_selectivity(
        L.returnflag == param("rf"), {"rf": "R"}, line
    )
    assert 0.0 < sel <= 0.5


def test_order_filters_prefers_cheap_local_predicates(tpch_smc):
    line = tpch_smc["lineitem"]
    d = {"d": datetime.date(1995, 6, 1)}
    f_nav = L.order.ref("orderdate") <= param("d")
    f_local = L.shipdate <= param("d")
    ordered, plans = planner.order_filters([f_nav, f_local], d, line)
    # Similar selectivity, 5x cost difference: the local predicate wins.
    assert ordered[0] is f_local
    assert plans[0].rank <= plans[1].rank
    # Ablation: order_filters is bypassed entirely when disabled at the
    # plan level, but the ranking itself must be deterministic.
    again, _ = planner.order_filters([f_nav, f_local], d, line)
    assert [e.signature() for e in again] == [
        e.signature() for e in ordered
    ]


def test_estimate_query_rows_and_routing(tpch_smc):
    q = QUERIES["q6"](tpch_smc)
    est = planner.estimate_query_rows(q, DEFAULT_PARAMS)
    assert est is not None and est >= 0
    stats = planner.table_stats(tpch_smc["lineitem"])
    assert est < stats.rows  # q6 is selective
    # Routing: tiny estimates collapse to one worker, big ones don't,
    # and "no estimate" never downgrades.
    assert planner.route_workers(10, 4) == 1
    assert planner.route_workers(planner.SMALL_SCAN_ROWS * 10, 4) == 4
    assert planner.route_workers(None, 4) == 4


# ----------------------------------------------------------------------
# Access-path choice (hash-index point lookups)
# ----------------------------------------------------------------------


def _people(manager, rows=4000, distinct=1000):
    persons = Collection(TPerson, manager=manager)
    for i in range(rows):
        persons.add(name=f"p{i}", age=i % distinct)
    return persons


def test_choose_index_point_lookup(manager):
    persons = _people(manager)
    persons.create_index("age")
    params = {"a": 37}
    pred = TPerson.age == param("a")
    ordered, plans = planner.order_filters([pred], params, persons)
    choice = planner.choose_index(persons, ordered, plans, params)
    assert choice is not None
    assert choice.key == 37
    __, __, info = planner.plan_scan("t", [pred], params, persons)
    assert info.access_path == "index-lookup"
    assert info.index_field == "age"


def test_index_lookup_results_identical(manager):
    persons = _people(manager)
    persons.create_index("age")
    q = persons.query().where(TPerson.age == param("a")).select(
        name=TPerson.name, age=TPerson.age
    )
    baseline = q.run(params={"a": 37}, planner=False)
    planned = q.run(params={"a": 37}, planner=True)
    _identical(planned, baseline)
    assert len(planned.rows) == 4  # 4000 rows, age = i % 1000
    assert manager.stats.extra.get("index_lookup_queries", 0) >= 1


def test_direct_pointer_manager_skips_index_path(direct_manager):
    persons = _people(direct_manager)
    persons.create_index("age")
    params = {"a": 37}
    pred = TPerson.age == param("a")
    ordered, plans = planner.order_filters([pred], params, persons)
    assert planner.choose_index(persons, ordered, plans, params) is None
    q = persons.query().where(TPerson.age == param("a")).select(
        age=TPerson.age
    )
    assert len(q.run(params=params, planner=True).rows) == 4


# ----------------------------------------------------------------------
# Memory governor
# ----------------------------------------------------------------------


class _FakeTenant:
    def __init__(self):
        self.used = 0
        self.hits = 0
        self.misses = 0
        self.budget = None

    def register_on(self, gov, name, weight=1.0):
        gov.register(
            name,
            usage=lambda: self.used,
            counters=lambda: (self.hits, self.misses),
            set_budget=lambda n: setattr(self, "budget", n),
            weight=weight,
        )


def test_governor_rejects_bad_budget():
    with pytest.raises(ValueError):
        MemoryGovernor(0)


def test_governor_rejects_duplicate_tenant():
    gov = MemoryGovernor(1 << 20)
    t = _FakeTenant()
    t.register_on(gov, "cache")
    with pytest.raises(ValueError):
        t.register_on(gov, "cache")


def test_governor_shares_respect_budget_and_floor():
    budget = 1_000_000
    gov = MemoryGovernor(budget)
    a, b, c = _FakeTenant(), _FakeTenant(), _FakeTenant()
    a.register_on(gov, "a")
    b.register_on(gov, "b")
    c.register_on(gov, "c")
    snap = gov.snapshot()
    shares = [t["share_bytes"] for t in snap["tenants"].values()]
    floor = int(gov._floor_fraction * budget / 3)
    assert sum(shares) <= budget
    assert all(s >= floor for s in shares)
    # Every tenant actually received its installed budget.
    assert sorted([a.budget, b.budget, c.budget]) == sorted(shares)


def test_governor_rebalances_toward_miss_heavy_tenant():
    gov = MemoryGovernor(1_000_000)
    hot, cold = _FakeTenant(), _FakeTenant()
    hot.register_on(gov, "hot")
    cold.register_on(gov, "cold")
    hot.misses += 5000
    cold.hits += 5000
    gov.rebalance()
    assert hot.budget > cold.budget
    snap = gov.snapshot()
    assert snap["tenants"]["hot"]["misses"] == 5000
    assert snap["tenants"]["hot"]["share_bytes"] == hot.budget
    # Pressure subsides: deltas reset, shares converge again.
    gov.rebalance()
    assert abs(hot.budget - cold.budget) <= gov.budget_bytes * 0.01


def test_governor_maybe_rebalance_period():
    gov = MemoryGovernor(1 << 20, rebalance_every=8)
    t = _FakeTenant()
    t.register_on(gov, "t")
    before = gov.snapshot()["rebalances"]
    fired = sum(1 for __ in range(16) if gov.maybe_rebalance())
    assert fired == 2
    assert gov.snapshot()["rebalances"] == before + 2


def test_governor_weight_biases_initial_split():
    gov = MemoryGovernor(1_000_000)
    heavy, light = _FakeTenant(), _FakeTenant()
    heavy.register_on(gov, "heavy", weight=3.0)
    light.register_on(gov, "light", weight=1.0)
    gov.rebalance()
    assert heavy.budget > light.budget


# ----------------------------------------------------------------------
# Plan cache: stats fingerprint + byte budget
# ----------------------------------------------------------------------


def test_plancache_fingerprint_drift_evicts():
    reg = MetricsRegistry()
    cache = PlanCache(reg)
    builds = []
    key = PlanCache.key_for("q1", "smc", "dict", "compiled")

    def build():
        builds.append(1)
        return object()

    p1 = cache.get_or_build(key, build, fingerprint=("lineitem", 10, 3))
    p2 = cache.get_or_build(key, build, fingerprint=("lineitem", 10, 3))
    assert p1 is p2 and len(builds) == 1
    p3 = cache.get_or_build(key, build, fingerprint=("lineitem", 14, 3))
    assert p3 is not p1 and len(builds) == 2
    stats = cache.stats()
    assert stats["stale_evictions"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert 'smc_plancache_stale_evictions_total{query="q1"} 1' in reg.expose()


def test_plancache_budget_caps_entries():
    cache = PlanCache(budget_bytes=2 * NOMINAL_PLAN_BYTES)
    for i in range(5):
        cache.get_or_build(
            PlanCache.key_for(f"q{i}", "smc", "dict", "compiled"),
            lambda: object(),
        )
    stats = cache.stats()
    assert stats["size"] == 2
    assert stats["capacity_evictions"] == 3
    assert cache.usage_bytes() == 2 * NOMINAL_PLAN_BYTES
    # Governor shrinks the share: held plans are evicted immediately.
    cache.set_budget(NOMINAL_PLAN_BYTES)
    assert cache.stats()["size"] == 1


# ----------------------------------------------------------------------
# StringDict match-set cache budget
# ----------------------------------------------------------------------


def test_strdict_match_cache_honours_budget(tpch_smc):
    sd = tpch_smc["lineitem"].strdict
    assert sd is not None
    sd.set_match_budget(None)
    for i in range(32):
        sd.match_codes("prefix", f"needle-{i}")
    assert sd._match_bytes > 0
    high_water = sd._match_bytes
    budget = high_water // 4
    sd.set_match_budget(budget)
    assert sd._match_bytes <= budget
    # New inserts keep respecting the ceiling.
    for i in range(32):
        sd.match_codes("contains", f"other-{i}")
    assert sd._match_bytes <= budget
    # Hit/miss counters move the right way for the governor.
    misses = sd.match_misses
    hits = sd.match_hits
    sd.match_codes("contains", "other-31")
    assert sd.match_hits == hits + 1 and sd.match_misses == misses
    assert sd.cache_bytes >= sd._match_bytes
    sd.set_match_budget(None)


# ----------------------------------------------------------------------
# WAL group-commit buffer
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _no_sanitizer_buffering(request):
    """Group-commit buffering is disabled under the protocol sanitizer
    (crash points need every byte on disk); skip the buffer tests."""
    from repro.sanitizer import hooks as _san

    if request.node.cls is TestWalGroupCommit and _san.SANITIZER is not None:
        pytest.skip("WAL buffering is off under the sanitizer")


class TestWalGroupCommit:
    def test_batch_buffers_until_commit(self, tmp_path):
        path = str(tmp_path / "gc.log")
        wal = WriteAheadLog.create(path, fsync_policy="none")
        base = os.path.getsize(path)
        with wal.batch():
            for i in range(10):
                wal.append(ADD, {"c": "x", "e": i})
            # Mid-batch: frames are staged in memory, not in the file.
            assert wal.buffered_bytes > 0
            assert os.path.getsize(path) == base
        # Commit boundary: one flush wrote BEGIN + records + COMMIT.
        assert wal.buffered_bytes == 0
        assert wal.buffered_records == 11  # BEGIN + 10 ADDs
        assert wal.buffer_flushes >= 1
        wal.close()
        scan = scan_wal(path)
        assert scan.committed_count == 12
        assert [r.payload.get("e") for r in scan.records][1:-1] == list(
            range(10)
        )

    def test_capacity_flush_mid_batch(self, tmp_path):
        path = str(tmp_path / "cap.log")
        wal = WriteAheadLog.create(path, fsync_policy="none")
        wal.set_buffer_capacity(4096)
        with wal.batch():
            for i in range(300):
                wal.append(ADD, {"c": "x", "e": i, "pad": "y" * 64})
        assert wal.buffer_capacity_flushes >= 1
        wal.close()
        assert scan_wal(path).committed_count == 302

    def test_power_loss_drops_buffered_tail(self, tmp_path):
        path = str(tmp_path / "pl.log")
        wal = WriteAheadLog.create(path, fsync_policy="commit")
        with wal.batch():
            wal.append(ADD, {"c": "x", "e": 0})
        wal.append(ADD, {"c": "x", "e": 1})  # auto-commit, flushed
        committed = scan_wal(path).committed_count
        try:
            wal._batch_depth = 1  # hold a batch open by hand
            wal.append(ADD, {"c": "x", "e": 2})
            assert wal.buffered_bytes > 0
            wal.simulate_power_loss()
        finally:
            wal._batch_depth = 0
        # The unflushed frame never reached the disk image.
        assert scan_wal(path).committed_count == committed


# ----------------------------------------------------------------------
# Adaptive join build side (rdbms comparator)
# ----------------------------------------------------------------------


def test_hash_join_identical_either_build_side():
    unique_keys = np.arange(100, dtype=np.int64)
    unique_rows = unique_keys * 10
    many_keys = np.array([5, 5, 3, 99, 42, 5], dtype=np.int64)
    prev = rdbms_engine.set_adaptive_joins(True)
    try:
        before = dict(rdbms_engine.JOIN_STATS)
        adaptive = rdbms_engine.hash_join(unique_keys, unique_rows, many_keys)
        assert (
            rdbms_engine.JOIN_STATS["build_many_side"]
            == before["build_many_side"] + 1
        )
        rdbms_engine.set_adaptive_joins(False)
        forced = rdbms_engine.hash_join(unique_keys, unique_rows, many_keys)
    finally:
        rdbms_engine.set_adaptive_joins(prev)
    np.testing.assert_array_equal(adaptive[0], forced[0])
    np.testing.assert_array_equal(adaptive[1], forced[1])
    # Output is ordered by many-side position with duplicates preserved.
    assert adaptive[1].tolist() == [0, 1, 2, 3, 4, 5]
    assert adaptive[0].tolist() == [50, 50, 30, 990, 420, 50]


@pytest.mark.parametrize("qname", ["q3", "q5", "q10", "q12"])
def test_rdbms_plans_identical_under_join_toggle(tpch_tiny, qname):
    db = load_rdbms(tpch_tiny)
    prev = rdbms_engine.set_adaptive_joins(True)
    try:
        __, on_rows = run_plan(qname, db, DEFAULT_PARAMS)
        rdbms_engine.set_adaptive_joins(False)
        __, off_rows = run_plan(qname, db, DEFAULT_PARAMS)
    finally:
        rdbms_engine.set_adaptive_joins(prev)
    assert repr(on_rows) == repr(off_rows)
    assert on_rows


# ----------------------------------------------------------------------
# Service: explain op, planner flag, governor wiring
# ----------------------------------------------------------------------


@pytest.fixture()
def planner_service(tpch_tiny):
    from repro.service.server import QueryService

    colls = load_smc(tpch_tiny)
    manager = colls["_manager"]
    service = QueryService(
        colls, manager, max_concurrency=4, governor_budget=1 << 20
    )
    yield service
    manager.close()


def test_service_explain_op(planner_service):
    reply = planner_service.handle({"op": "explain", "query": "q3"})
    assert reply["ok"]
    assert "planner:" in reply["text"]
    assert "sel=" in reply["text"] and "rank=" in reply["text"]
    off = planner_service.handle(
        {"op": "explain", "query": "q3", "planner": False}
    )
    assert off["ok"] and "planner: off" in off["text"]
    bad = planner_service.handle({"op": "explain", "query": "q99"})
    assert not bad["ok"]


def test_service_planner_flag_identical_rows(planner_service):
    on = planner_service.handle({"op": "query", "query": "q3", "workers": 4})
    off = planner_service.handle(
        {"op": "query", "query": "q3", "planner": False}
    )
    assert on["ok"] and off["ok"]
    assert on["columns"] == off["columns"]
    assert on["rows"] == off["rows"]


def test_service_governor_snapshot_in_info(planner_service):
    planner_service.handle({"op": "query", "query": "q6"})
    info = planner_service.handle({"op": "info"})
    assert info["ok"]
    gov = info["governor"]
    assert gov["budget_bytes"] == 1 << 20
    assert "plan_cache" in gov["tenants"]
    assert "string_dicts" in gov["tenants"]
    shares = [t["share_bytes"] for t in gov["tenants"].values()]
    assert sum(shares) <= gov["budget_bytes"]
    # The plan cache lives within the share the governor installed.
    pc = gov["tenants"]["plan_cache"]
    assert pc["usage_bytes"] <= max(pc["share_bytes"], NOMINAL_PLAN_BYTES)


def test_service_small_scan_routing(planner_service):
    # q6 on the tiny dataset estimates well under SMALL_SCAN_ROWS: a
    # 4-worker request is routed to 1 worker and counted.
    planner_service.handle({"op": "query", "query": "q6", "workers": 4})
    counter = planner_service.metrics.counter(
        "smc_serve_small_scans_routed_total",
        "Parallel queries routed to one worker by the planner estimate",
    )
    assert counter.value(query="q6") >= 1
