"""The protocol sanitizer: seeded violations are caught, real runs are clean.

Each seeded-violation test forges exactly one illegal protocol transition
(reusing a limbo slot too early, freeing twice, freezing a dead slot, ...)
and asserts the sanitizer reports it as a :class:`ProtocolViolation`
naming the broken invariant.  The clean-workload tests run the ordinary
add/remove/compact/query machinery under the sanitizer and assert no
false positives.  The fault-injection tests arm a :class:`FaultPlan` and
assert the system degrades into exactly the injected error.
"""

import threading

import pytest

from repro import sanitizer
from repro.core.collection import Collection
from repro.errors import (
    IncarnationOverflowError,
    MemoryExhaustedError,
    ProtocolViolation,
)
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import FROZEN, INC_MASK, LOCKED
from repro.memory.manager import MemoryManager
from repro.query.builder import Count

from tests.schemas import TPerson


def _locate(manager, handle):
    """(block, slot, entry) of a live handle."""
    with manager.critical_section():
        address = handle.ref.address()
    block = manager.space.block_at(address)
    return block, block.slot_of_address(address), handle.ref.entry


# ----------------------------------------------------------------------
# Seeded violations
# ----------------------------------------------------------------------


def test_detects_premature_limbo_reuse():
    with sanitizer.enabled() as san:
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="victim", age=1)
        block, slot, _ = _locate(m, h)
        persons.remove(h)  # slot -> LIMBO, stamped with the current epoch
        # Republishing without two epoch advances is a use-after-free window.
        with pytest.raises(ProtocolViolation) as exc:
            block.mark_valid(slot)
        assert "premature-reclaim" in str(exc.value)
        assert "event trace" in str(exc.value)
        assert san.violations
        m.close()


def test_detects_double_free():
    with sanitizer.enabled():
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="victim", age=1)
        block, slot, _ = _locate(m, h)
        persons.remove(h)
        with pytest.raises(ProtocolViolation) as exc:
            block.mark_limbo(slot, m.epochs.global_epoch)
        assert "double-free" in str(exc.value)
        m.close()


def test_detects_free_of_unallocated_slot():
    with sanitizer.enabled():
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="only", age=1)
        block, slot, _ = _locate(m, h)
        with pytest.raises(ProtocolViolation) as exc:
            block.mark_limbo(slot + 1, m.epochs.global_epoch)  # never allocated
        assert "free-unallocated-slot" in str(exc.value)
        m.close()


def test_detects_stale_frozen_on_free_slot():
    with sanitizer.enabled():
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="victim", age=1)
        block, slot, entry = _locate(m, h)
        block.directory[slot] = 0  # forge: the slot appears FREE
        with pytest.raises(ProtocolViolation) as exc:
            m.table.set_flags(entry, FROZEN)
        assert "frozen-free-slot" in str(exc.value)
        m.close()


def test_detects_frozen_on_null_entry():
    with sanitizer.enabled():
        m = MemoryManager()
        entry = m.table.allocate(NULL_ADDRESS)
        with pytest.raises(ProtocolViolation) as exc:
            m.table.set_flags(entry, FROZEN)
        assert "frozen-null-entry" in str(exc.value)
        m.close()


def test_detects_incarnation_regression():
    with sanitizer.enabled():
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="victim", age=1)
        entry = h.ref.entry
        persons.remove(h)  # counter 0 -> 1
        word = m.table.incarnation_word(entry)
        with pytest.raises(ProtocolViolation) as exc:
            m.table.cas_inc(entry, word, 0)  # roll the counter back
        assert "incarnation-regression" in str(exc.value)
        m.close()


def test_detects_foreign_unlock():
    with sanitizer.enabled() as san:
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="victim", age=1)
        entry = h.ref.entry
        assert m.table.try_lock(entry)
        caught = []

        def foreign():
            try:
                m.table.clear_flags(entry, LOCKED)
            except ProtocolViolation as exc:
                caught.append(exc)

        t = threading.Thread(target=foreign, name="foreign-unlocker")
        t.start()
        t.join()
        assert caught and "foreign-unlock" in str(caught[0])
        with pytest.raises(ProtocolViolation):
            san.assert_clean()  # swallowed upstream, still recorded
        m.table.clear_flags(entry, LOCKED)  # owner unlock: legal
        m.close()


def test_detects_epoch_skip_and_regression():
    with sanitizer.enabled() as san:
        m = MemoryManager()
        assert m.advance_epoch()  # 0 -> 1, observed by the sanitizer
        with pytest.raises(ProtocolViolation) as exc:
            san.event("epoch.advance", epochs=m.epochs, old=1, new=3)
        assert "epoch-skip" in str(exc.value)
        with pytest.raises(ProtocolViolation) as exc:
            san.event("epoch.advance", epochs=m.epochs, old=0, new=1)  # replay
        assert "epoch-regression" in str(exc.value)
        m.close()


# ----------------------------------------------------------------------
# Clean on real workloads
# ----------------------------------------------------------------------


def test_clean_on_add_remove_compact_query_workload():
    with sanitizer.enabled() as san:
        m = MemoryManager(block_shift=10)
        persons = Collection(TPerson, manager=m)
        handles = []
        while persons.context.block_count() < 6:
            handles.append(persons.add(name=f"p{len(handles)}", age=1))
        keep = handles[::5]
        for h in handles:
            if h not in keep:
                persons.remove(h)
        moved = persons.compact(occupancy_threshold=0.9)
        assert moved > 0
        q = persons.query().aggregate(n=Count())
        assert q.run().rows[0][0] == len(keep)
        san.assert_clean()
        m.close()
        for point in ("alloc.publish", "slot.limbo", "compact.done", "scan.block"):
            assert san.event_counts[point] > 0, point


def test_clean_on_limbo_reuse_and_block_recycling():
    with sanitizer.enabled() as san:
        m = MemoryManager(block_shift=12, reclamation_threshold=0.05)
        persons = Collection(TPerson, manager=m)
        handles = [persons.add(name=f"p{i}", age=i % 100) for i in range(2000)]
        for h in handles[::2]:
            persons.remove(h)
        for i in range(1000):
            persons.add(name="fresh", age=i % 100)
        assert len(list(persons)) == len(persons) == 2000
        san.assert_clean()
        m.close()
        assert san.event_counts["block.recycled"] > 0


def test_enabled_nests_and_restores():
    before = sanitizer.active()
    with sanitizer.enabled() as outer:
        assert sanitizer.active() is outer
        with sanitizer.enabled() as inner:
            assert sanitizer.active() is inner
        assert sanitizer.active() is outer
    assert sanitizer.active() is before


def test_sanitized_memory_manager_wrapper():
    before = sanitizer.active()
    m = sanitizer.SanitizedMemoryManager()
    assert sanitizer.active() is m.sanitizer
    persons = Collection(TPerson, manager=m)
    h = persons.add(name="x", age=1)
    persons.remove(h)
    m.sanitizer.assert_clean()
    assert m.sanitizer.event_counts["alloc.publish"] == 1
    m.close()
    assert sanitizer.active() is before


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


def test_injected_allocation_failure_leaves_no_trace():
    faults = sanitizer.FaultPlan().fail_allocation(after=1, times=1)
    with sanitizer.enabled(faults=faults) as san:
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        persons.add(name="before", age=1)
        entries_before = m.table.size
        allocs_before = m.stats.allocations
        with pytest.raises(MemoryExhaustedError):
            persons.add(name="boom", age=2)
        # The failure happened before any slot or entry was claimed.
        assert m.table.size == entries_before
        assert m.stats.allocations == allocs_before
        assert len(persons) == 1
        h = persons.add(name="after", age=3)  # the system keeps working
        assert h.age == 3
        assert faults.fired["alloc.start"] == 1
        san.assert_clean()
        m.close()


def test_forced_incarnation_overflow_retires_entry():
    faults = sanitizer.FaultPlan().force_incarnation_overflow(mode="retire")
    with sanitizer.enabled(faults=faults) as san:
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="x", age=1)
        entry = h.ref.entry
        persons.remove(h)  # counter saturates; entry must be retired
        assert not h.is_alive
        for _ in range(3):
            m.advance_epoch()
        m._drain_retired_entries()
        assert m.table.retired_count == 1
        assert m.table.incarnation(entry) == INC_MASK
        # The audited reset (post reference-repair) passes the sanitizer.
        assert m.table.reclaim_retired() == 1
        assert m.table.incarnation(entry) == 0
        san.assert_clean()
        m.close()


def test_forced_incarnation_overflow_raise_mode():
    faults = sanitizer.FaultPlan().force_incarnation_overflow(mode="raise")
    with sanitizer.enabled(faults=faults):
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        h = persons.add(name="x", age=1)
        with pytest.raises(IncarnationOverflowError):
            persons.remove(h)
        m.close()


def test_injected_compactor_crash_preserves_all_objects():
    faults = sanitizer.FaultPlan().crash_compactor(after_moves=3)
    with sanitizer.enabled(faults=faults) as san:
        m = MemoryManager(block_shift=10)
        persons = Collection(TPerson, manager=m)
        handles = []
        while persons.context.block_count() < 4:
            handles.append(persons.add(name=f"p{len(handles)}", age=7))
        keep = handles[::4]
        for h in handles:
            if h not in keep:
                persons.remove(h)
        with pytest.raises(sanitizer.InjectedFaultError):
            persons.compact(occupancy_threshold=0.9)
        assert faults.fired["compact.move_item"] == 1
        # A half-done relocation loses nothing: moved objects are in the
        # destination block, unmoved ones still in their sources, and
        # frozen survivors stay readable via the dereference slow path.
        assert [h.age for h in keep] == [7] * len(keep)
        assert len(list(persons)) == len(keep)
        san.assert_clean()
        m.close()
