"""Indirection table: entries, incarnations, flags, CAS emulation."""

import pytest

from repro.errors import IncarnationOverflowError
from repro.memory.indirection import (
    FLAG_MASK,
    FORWARD,
    FROZEN,
    INC_MASK,
    LOCKED,
    IndirectionTable,
    flags_of,
    incarnation_of,
)


@pytest.fixture
def table():
    return IndirectionTable(initial_capacity=8)


def test_flag_bits_are_distinct_and_above_counter():
    assert FROZEN & LOCKED == 0
    assert FROZEN & FORWARD == 0
    assert LOCKED & FORWARD == 0
    assert (FROZEN | LOCKED | FORWARD) & INC_MASK == 0
    assert FLAG_MASK == FROZEN | LOCKED | FORWARD


def test_word_helpers():
    word = FROZEN | 42
    assert incarnation_of(word) == 42
    assert flags_of(word) == FROZEN


def test_allocate_sets_address(table):
    idx = table.allocate(0xABC)
    assert table.address_of(idx) == 0xABC
    assert table.incarnation(idx) == 0


def test_allocate_grows_past_initial_capacity(table):
    indices = [table.allocate(i) for i in range(10_000)]
    assert len(set(indices)) == 10_000
    assert table.address_of(indices[-1]) == 9_999


def test_release_recycles_entry_keeping_incarnation(table):
    idx = table.allocate(1)
    table.increment_incarnation(idx)
    table.release(idx)
    idx2 = table.allocate(2)
    assert idx2 == idx
    # The recycled entry keeps the bumped counter, so stale references
    # created against the previous occupant keep failing (paper 3.2).
    assert table.incarnation(idx2) == 1


def test_increment_incarnation_monotonic(table):
    idx = table.allocate(1)
    assert table.increment_incarnation(idx) == 1
    assert table.increment_incarnation(idx) == 2
    assert table.incarnation(idx) == 2


def test_increment_preserves_flags(table):
    idx = table.allocate(1)
    table.set_flags(idx, FROZEN)
    table.increment_incarnation(idx)
    assert table.incarnation_word(idx) == FROZEN | 1


def test_incarnation_overflow_raises(table):
    idx = table.allocate(1)
    table._inc[idx] = INC_MASK - 1
    table.increment_incarnation(idx)
    with pytest.raises(IncarnationOverflowError):
        table.increment_incarnation(idx)


def test_overflowed_entries_are_retired_not_reused(table):
    idx = table.allocate(1)
    table._inc[idx] = INC_MASK
    table.release(idx)
    assert table.retired_count == 1
    assert table.allocate(2) != idx


def test_cas_inc(table):
    idx = table.allocate(1)
    assert table.cas_inc(idx, 0, FROZEN)
    assert not table.cas_inc(idx, 0, LOCKED)
    assert table.incarnation_word(idx) == FROZEN


def test_set_and_clear_flags(table):
    idx = table.allocate(1)
    assert table.set_flags(idx, FROZEN | LOCKED) == FROZEN | LOCKED
    assert table.clear_flags(idx, LOCKED) == FROZEN
    assert table.incarnation_word(idx) == FROZEN


def test_try_lock(table):
    idx = table.allocate(1)
    assert table.try_lock(idx)
    assert not table.try_lock(idx)
    table.clear_flags(idx, LOCKED)
    assert table.try_lock(idx)


def test_spin_while_locked_returns_final_word(table):
    idx = table.allocate(1)
    assert table.spin_while_locked(idx) == 0
    table.set_flags(idx, FROZEN)
    assert table.spin_while_locked(idx) == FROZEN


def test_live_entries(table):
    a = table.allocate(10)
    b = table.allocate(20)
    table.increment_incarnation(a)
    table.set_address(a, -1)
    table.release(a)
    assert table.live_entries().tolist() == [b]


def test_free_count(table):
    idx = table.allocate(1)
    table.increment_incarnation(idx)
    table.release(idx)
    assert table.free_count == 1
    table.allocate(2)
    assert table.free_count == 0
