"""Static tabular-type rules (paper section 2)."""

import pytest

from repro.errors import TabularTypeError
from repro.schema import CharField, Int32Field, RefField, Tabular
from repro.schema.tabular import resolve_tabular

from tests.schemas import TNode, TPerson


def test_fields_collected_in_declaration_order():
    assert [f.name for f in TPerson.__fields__] == ["name", "age", "balance"]


def test_fields_are_bound():
    assert TPerson.__fields__[0].owner is TPerson
    assert TPerson.__fields__[1].index == 1


def test_tabular_classes_cannot_be_instantiated():
    with pytest.raises(TabularTypeError):
        TPerson()


def test_no_inheritance_between_tabular_classes():
    with pytest.raises(TabularTypeError):

        class Sub(TPerson):  # noqa: F841
            extra = Int32Field()


def test_no_mixing_with_plain_classes():
    class Plain:
        pass

    with pytest.raises(TabularTypeError):

        class Mixed(Tabular, Plain):  # noqa: F841
            x = Int32Field()


def test_empty_tabular_class_rejected():
    with pytest.raises(TabularTypeError):

        class Empty(Tabular):  # noqa: F841
            pass


def test_reference_to_non_tabular_rejected():
    class NotTabular:
        pass

    with pytest.raises(TabularTypeError):

        class Bad(Tabular):  # noqa: F841
            other = RefField(NotTabular)


def test_unknown_string_target_fails_on_resolution():
    class Dangling(Tabular):
        other = RefField("NoSuchClass")

    with pytest.raises(TabularTypeError):
        Dangling.__fields__[0].resolve_target()


def test_string_target_resolution():
    assert resolve_tabular("TPerson") is TPerson


def test_self_reference_allowed():
    assert TNode.__fields__[1].resolve_target() is TNode


def test_field_instances_cannot_be_shared():
    shared = CharField(4)

    class A(Tabular):
        x = shared

    with pytest.raises(TabularTypeError):

        class B(Tabular):  # noqa: F841
            y = shared


def test_managed_class_mirrors_fields():
    record_cls = TPerson.managed_class()
    rec = record_cls(name="Ada", age=36)
    assert rec.name == "Ada"
    assert rec.age == 36
    assert rec.balance is None
    assert record_cls.__slots__ == ("name", "age", "balance")
    assert record_cls.__tabular__ is TPerson


def test_managed_class_is_cached():
    assert TPerson.managed_class() is TPerson.managed_class()


def test_managed_records_have_no_dict():
    rec = TPerson.managed_class()(name="x")
    with pytest.raises(AttributeError):
        rec.bogus = 1


def test_field_names_helper():
    assert TPerson.field_names() == ["name", "age", "balance"]


def test_layout_helper():
    assert TPerson.layout() is TPerson.__layout__
