"""Epoch-based reclamation protocol."""

import threading

import pytest

from repro.errors import ConcurrencyProtocolError
from repro.memory.epoch import EpochManager


@pytest.fixture
def epochs():
    return EpochManager()


def test_initial_epoch_zero(epochs):
    assert epochs.global_epoch == 0


def test_enter_sets_local_epoch(epochs):
    epochs.try_advance()
    assert epochs.enter_critical_section() == 1
    assert epochs.local_epoch() == 1
    epochs.exit_critical_section()


def test_exit_without_enter_raises(epochs):
    with pytest.raises(ConcurrencyProtocolError):
        epochs.exit_critical_section()


def test_nested_sections_keep_outer_epoch(epochs):
    epochs.enter_critical_section()
    epochs.try_advance()  # self is skipped, advance succeeds
    inner = epochs.enter_critical_section()
    assert inner == 0  # nested enter must not refresh the epoch
    epochs.exit_critical_section()
    epochs.exit_critical_section()
    assert not epochs.in_critical()


def test_context_manager(epochs):
    with epochs.critical_section() as e:
        assert e == 0
        assert epochs.in_critical()
    assert not epochs.in_critical()


def test_advance_blocked_by_lagging_thread(epochs):
    entered = threading.Event()
    release = threading.Event()

    def lagger():
        epochs.enter_critical_section()
        entered.set()
        release.wait()
        epochs.exit_critical_section()

    t = threading.Thread(target=lagger)
    t.start()
    entered.wait()
    assert epochs.try_advance()  # lagger is at 0 == global 0 -> advance to 1
    assert not epochs.try_advance()  # lagger still at 0 < 1 -> blocked
    release.set()
    t.join()
    assert epochs.try_advance()  # lagger gone


def test_own_critical_section_does_not_block_self(epochs):
    epochs.enter_critical_section()
    assert epochs.try_advance()
    epochs.exit_critical_section()


def test_restricted_advancement(epochs):
    me = threading.get_ident()
    epochs.restrict_advancement(me + 1)  # some other thread
    assert not epochs.try_advance()
    epochs.restrict_advancement(None)
    assert epochs.try_advance()


def test_double_restriction_rejected(epochs):
    epochs.restrict_advancement(1)
    with pytest.raises(ConcurrencyProtocolError):
        epochs.restrict_advancement(2)


def test_others_at_least(epochs):
    assert epochs.others_at_least(5)  # nobody else in critical
    entered = threading.Event()
    release = threading.Event()

    def other():
        epochs.enter_critical_section()  # local epoch 0
        entered.set()
        release.wait()
        epochs.exit_critical_section()

    t = threading.Thread(target=other)
    t.start()
    entered.wait()
    assert epochs.others_at_least(0)
    assert not epochs.others_at_least(1)
    release.set()
    t.join()


def test_min_active_epoch(epochs):
    assert epochs.min_active_epoch() == 0
    epochs.enter_critical_section()
    epochs.try_advance()
    epochs.try_advance()
    assert epochs.global_epoch == 2
    assert epochs.min_active_epoch() == 0  # we entered at 0
    epochs.exit_critical_section()
    assert epochs.min_active_epoch() == 2


def test_forget_dead_threads(epochs):
    def toucher():
        epochs.enter_critical_section()
        epochs.exit_critical_section()

    t = threading.Thread(target=toucher)
    t.start()
    t.join()
    assert epochs.forget_dead_threads() >= 1


def test_epochs_monotonic_under_concurrent_advancers(epochs):
    stop = threading.Event()
    seen = []

    def advancer():
        while not stop.is_set():
            epochs.try_advance()

    def watcher():
        last = -1
        while not stop.is_set():
            g = epochs.global_epoch
            seen.append(g >= last)
            last = g

    threads = [threading.Thread(target=advancer) for __ in range(3)]
    threads.append(threading.Thread(target=watcher))
    for t in threads:
        t.start()
    import time

    time.sleep(0.1)
    stop.set()
    for t in threads:
        t.join()
    assert all(seen)


# ----------------------------------------------------------------------
# Property: the protocol rules hold for arbitrary enter/exit/advance
# sequences (hypothesis-driven)
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st

from repro.memory import slots as slotcodec
from repro.memory.epoch import SectionContext

_N_FAKE_THREADS = 3

#: (op, thread) pairs; op 0=enter 1=exit 2=advance 3=free
_op_sequences = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, _N_FAKE_THREADS - 1)),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_op_sequences)
def test_epoch_protocol_properties(ops):
    """For any interleaving of enters, exits, advances and frees:

    * the global epoch never regresses and advances by single steps;
    * an advance succeeds iff no in-critical thread lags the epoch;
    * a freed slot is reclaimable iff the global epoch reached ``e + 2``,
      by which point every in-critical thread entered after the free.
    """
    em = EpochManager()
    # Simulated threads: section contexts registered under fake thread ids
    # (never equal to a real ident), driven exactly like enter/exit would.
    fakes = [SectionContext() for __ in range(_N_FAKE_THREADS)]
    for i, ctx in enumerate(fakes):
        em._contexts[2**60 + i] = ctx
    freed = []

    for op, tid in ops:
        ctx = fakes[tid]
        before = em.global_epoch
        if op == 0:  # enter (outermost refreshes the local epoch)
            if ctx.depth == 0:
                ctx.epoch = em.global_epoch
            ctx.depth += 1
        elif op == 1:  # exit
            if ctx.depth > 0:
                ctx.depth -= 1
        elif op == 2:  # advance, from the (real) main thread
            lagging = any(
                c.depth > 0 and c.epoch < before for c in fakes
            )
            advanced = em.try_advance()
            assert advanced == (not lagging)
            assert em.global_epoch == before + (1 if advanced else 0)
        else:  # free: a slot enters limbo stamped with the current epoch
            freed.append(em.global_epoch)
        assert em.global_epoch >= before  # never regresses

    final = em.global_epoch
    for e in freed:
        word = slotcodec.pack(slotcodec.LIMBO, e)
        assert slotcodec.is_reclaimable(word, final) == (final >= e + 2)
        if final >= e + 2:
            # No thread still inside a critical section can have begun it
            # before the free became safe: reuse cannot race a reader.
            assert all(
                c.epoch >= e + 1 for c in fakes if c.depth > 0
            )
