"""Epoch-based reclamation protocol."""

import threading

import pytest

from repro.errors import ConcurrencyProtocolError
from repro.memory.epoch import EpochManager


@pytest.fixture
def epochs():
    return EpochManager()


def test_initial_epoch_zero(epochs):
    assert epochs.global_epoch == 0


def test_enter_sets_local_epoch(epochs):
    epochs.try_advance()
    assert epochs.enter_critical_section() == 1
    assert epochs.local_epoch() == 1
    epochs.exit_critical_section()


def test_exit_without_enter_raises(epochs):
    with pytest.raises(ConcurrencyProtocolError):
        epochs.exit_critical_section()


def test_nested_sections_keep_outer_epoch(epochs):
    epochs.enter_critical_section()
    epochs.try_advance()  # self is skipped, advance succeeds
    inner = epochs.enter_critical_section()
    assert inner == 0  # nested enter must not refresh the epoch
    epochs.exit_critical_section()
    epochs.exit_critical_section()
    assert not epochs.in_critical()


def test_context_manager(epochs):
    with epochs.critical_section() as e:
        assert e == 0
        assert epochs.in_critical()
    assert not epochs.in_critical()


def test_advance_blocked_by_lagging_thread(epochs):
    entered = threading.Event()
    release = threading.Event()

    def lagger():
        epochs.enter_critical_section()
        entered.set()
        release.wait()
        epochs.exit_critical_section()

    t = threading.Thread(target=lagger)
    t.start()
    entered.wait()
    assert epochs.try_advance()  # lagger is at 0 == global 0 -> advance to 1
    assert not epochs.try_advance()  # lagger still at 0 < 1 -> blocked
    release.set()
    t.join()
    assert epochs.try_advance()  # lagger gone


def test_own_critical_section_does_not_block_self(epochs):
    epochs.enter_critical_section()
    assert epochs.try_advance()
    epochs.exit_critical_section()


def test_restricted_advancement(epochs):
    me = threading.get_ident()
    epochs.restrict_advancement(me + 1)  # some other thread
    assert not epochs.try_advance()
    epochs.restrict_advancement(None)
    assert epochs.try_advance()


def test_double_restriction_rejected(epochs):
    epochs.restrict_advancement(1)
    with pytest.raises(ConcurrencyProtocolError):
        epochs.restrict_advancement(2)


def test_others_at_least(epochs):
    assert epochs.others_at_least(5)  # nobody else in critical
    entered = threading.Event()
    release = threading.Event()

    def other():
        epochs.enter_critical_section()  # local epoch 0
        entered.set()
        release.wait()
        epochs.exit_critical_section()

    t = threading.Thread(target=other)
    t.start()
    entered.wait()
    assert epochs.others_at_least(0)
    assert not epochs.others_at_least(1)
    release.set()
    t.join()


def test_min_active_epoch(epochs):
    assert epochs.min_active_epoch() == 0
    epochs.enter_critical_section()
    epochs.try_advance()
    epochs.try_advance()
    assert epochs.global_epoch == 2
    assert epochs.min_active_epoch() == 0  # we entered at 0
    epochs.exit_critical_section()
    assert epochs.min_active_epoch() == 2


def test_forget_dead_threads(epochs):
    def toucher():
        epochs.enter_critical_section()
        epochs.exit_critical_section()

    t = threading.Thread(target=toucher)
    t.start()
    t.join()
    assert epochs.forget_dead_threads() >= 1


def test_epochs_monotonic_under_concurrent_advancers(epochs):
    stop = threading.Event()
    seen = []

    def advancer():
        while not stop.is_set():
            epochs.try_advance()

    def watcher():
        last = -1
        while not stop.is_set():
            g = epochs.global_epoch
            seen.append(g >= last)
            last = g

    threads = [threading.Thread(target=advancer) for __ in range(3)]
    threads.append(threading.Thread(target=watcher))
    for t in threads:
        t.start()
    import time

    time.sleep(0.1)
    stop.set()
    for t in threads:
        t.join()
    assert all(seen)
