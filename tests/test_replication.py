"""Replication: differential fleet, failover drills, bounded staleness.

The differential tests pin the fleet's core contract: every supported
TPC-H query returns byte-identical results on the primary and on every
read replica — including while replicated mutations churn — because a
replica at LSN *n* holds exactly the state the primary held at LSN *n*
(physical WAL shipping through the recovery apply path).

The failover drills pin the durability contract across promotion: a
primary killed at the WAL-ship point loses no acknowledged batch (the
freshest replica holds every committed-and-shipped record and only it
may promote), a lagging replica's promotion is refused with
STALE_PROMOTION, and the promoted node then passes the same
crash-recovery matrix as a seed primary.

The staleness property test drives a socket-free in-process fleet
(:class:`LoopbackClient`) under random interleavings of writes, reads
and replica pauses: reads never observe state older than
``known_committed - bound``, and a router's ``read_lsn`` watermark is
monotonic across redirects.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.collection import Collection
from repro.durability import DurableStore, recover
from repro.durability.replication import (
    ReplicationClient,
    StalePromotionError,
)
from repro.errors import InjectedFaultError
from repro.service.client import (
    LoopbackClient,
    RoutedClient,
    ServiceClient,
    ServiceNotPrimary,
    ServiceStaleRead,
)
from repro.service.fleet import Fleet
from repro.service.server import QueryService
from tests.schemas import TNote


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _note_collections():
    from repro.memory.manager import MemoryManager

    manager = MemoryManager()
    notes = Collection(TNote, manager=manager, name="notes")
    return {"notes": notes, "_manager": manager}


def _notes(store) -> list:
    return sorted((h.text, h.stars) for h in store.collections["notes"])


def _note_fleet(tmp_path, replicas=1, **kwargs):
    kwargs.setdefault("fsync_policy", "commit")
    kwargs.setdefault("poll_wait", 0.05)
    return Fleet(
        str(tmp_path / "fleet"),
        collections=_note_collections(),
        replicas=replicas,
        **kwargs,
    ).start()


def _wait_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


# ----------------------------------------------------------------------
# Differential fleet (acceptance gate)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_fleet(tpch_tiny, tmp_path_factory):
    """A TPC-H fleet (primary + 2 replicas) plus single-process baselines.

    Baselines are materialized as ``(columns, repr(rows))`` from a
    completely separate load of the same dataset, so any divergence in
    the replicated stores shows up as a byte-level repr mismatch.
    """
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    builders = dict(QUERIES)
    builders.update(EXTRA_QUERIES)

    base = load_smc(tpch_tiny)
    plain = {k: v for k, v in base.items() if not k.startswith("_")}
    baselines = {}
    for name, builder in builders.items():
        result = builder(plain).run(engine="compiled", params=DEFAULT_PARAMS)
        baselines[name] = (list(result.columns), repr(result.rows))
    base["_manager"].close()

    colls = load_smc(tpch_tiny)
    colls["scratch"] = Collection(
        TNote, manager=colls["_manager"], name="scratch"
    )
    fleet = Fleet(
        str(tmp_path_factory.mktemp("tpch-fleet")),
        collections=colls,
        replicas=2,
        fsync_policy="none",
        poll_wait=0.05,
    ).start()
    yield {"fleet": fleet, "baselines": baselines}
    fleet.close()


def _assert_matches(result, baseline):
    columns, rows_repr = baseline
    assert list(result.columns) == columns
    assert repr(result.rows) == rows_repr


class TestFleetDifferential:
    def test_all_queries_identical_on_every_node(self, tpch_fleet):
        """Every TPC-H query, on the primary and on each replica."""
        fleet = tpch_fleet["fleet"]
        fleet.wait_caught_up()
        for node in fleet.nodes:
            with ServiceClient(port=node.port) as client:
                for name, baseline in tpch_fleet["baselines"].items():
                    _assert_matches(client.query(name), baseline)

    def test_differential_under_replicated_churn(self, tpch_fleet):
        """Byte-identical TPC-H answers while replicated mutations churn.

        The churn runs through the router against a scratch collection
        that ships to the replicas like any other — so the replicas are
        continuously applying WAL batches while serving the reads.
        """
        fleet = tpch_fleet["fleet"]
        stop = threading.Event()
        churned = []
        errors = []

        def churn():
            try:
                with fleet.client(staleness_bound=8) as writer:
                    i = 0
                    while not stop.is_set():
                        entry = writer.add(
                            "scratch", text=f"churn-{i}", stars=i % 5
                        )
                        if i % 3 == 0:
                            writer.update(
                                "scratch", entry, stars=(i + 1) % 5
                            )
                        if i % 7 == 0:
                            writer.remove("scratch", entry)
                        churned.append((i, entry))
                        i += 1
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        thread = threading.Thread(target=churn, daemon=True)
        thread.start()
        try:
            with fleet.client(staleness_bound=8) as router:
                for __ in range(2):
                    for name, baseline in tpch_fleet["baselines"].items():
                        _assert_matches(router.query(name), baseline)
                assert router.read_lsn > 0
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        assert len(churned) > 0

    def test_scratch_contents_identical_at_same_lsn(self, tpch_fleet):
        """White box: a replica at LSN n holds the primary's state at n."""
        fleet = tpch_fleet["fleet"]
        with fleet.client() as router:
            for i in range(10):
                router.add("scratch", text=f"pin-{i}", stars=i % 3)
        target = fleet.primary.store.committed_lsn
        reference = sorted(
            (h.text, h.stars)
            for h in fleet.primary.store.collections["scratch"]
        )
        for node in fleet.nodes:
            if node is fleet.primary:
                continue
            assert node.replication.wait_for(target, timeout=10.0)
            rows = sorted(
                (h.text, h.stars)
                for h in node.store.collections["scratch"]
            )
            assert rows == reference, f"{node.name} diverged at LSN {target}"

    def test_replica_refuses_writes_and_names_the_primary(self, tpch_fleet):
        fleet = tpch_fleet["fleet"]
        replica = next(n for n in fleet.nodes if n is not fleet.primary)
        with ServiceClient(port=replica.port) as client:
            with pytest.raises(ServiceNotPrimary) as exc:
                client.add("scratch", text="nope", stars=0)
        assert exc.value.primary == (
            f"{fleet.primary.host}:{fleet.primary.port}"
        )

    def test_replication_metrics_exposed(self, tpch_fleet):
        fleet = tpch_fleet["fleet"]
        replica = next(n for n in fleet.nodes if n is not fleet.primary)
        with ServiceClient(port=replica.port) as client:
            text = client.metrics()
        assert "smc_repl_applied_lsn" in text
        assert "smc_repl_lag_records" in text
        assert "smc_repl_apply_records_total" in text
        with ServiceClient(port=fleet.primary.port) as client:
            text = client.metrics()
        assert 'smc_repl_ship_requests_total{kind="tail"}' in text
        assert "smc_repl_ship_records_total" in text

    def test_stale_replica_answers_stale_read_and_router_redirects(
        self, tpch_fleet
    ):
        """A paused replica refuses reads beyond its watermark; the
        router redirects and still answers correctly."""
        fleet = tpch_fleet["fleet"]
        fleet.wait_caught_up()
        replica = next(n for n in fleet.nodes if n is not fleet.primary)
        replica.replication.pause()
        try:
            with fleet.client(staleness_bound=0, stale_wait=0.1) as router:
                for i in range(3):
                    router.add("scratch", text=f"stale-{i}", stars=0)
                floor = router.min_lsn(0)
                assert floor > replica.replication.applied_lsn
                # Direct read on the paused replica: honest refusal.
                with ServiceClient(port=replica.port) as client:
                    with pytest.raises(ServiceStaleRead) as exc:
                        client.call(
                            {
                                "op": "query",
                                "query": "q6",
                                "min_lsn": floor,
                                "wait": 0.05,
                                "session": client.session,
                            }
                        )
                assert exc.value.applied_lsn < floor
                assert exc.value.min_lsn == floor
                # The router reaches the floor anyway (other replica or
                # primary) and its watermark reflects it.
                _assert_matches(
                    router.query("q6"), tpch_fleet["baselines"]["q6"]
                )
                assert router.read_lsn >= floor
        finally:
            replica.replication.resume()
        fleet.wait_caught_up()


# ----------------------------------------------------------------------
# Catch-up, checkpoint alignment, resync
# ----------------------------------------------------------------------


class TestCatchUp:
    def test_replica_restart_catches_up_from_checkpoint_and_tail(
        self, tmp_path
    ):
        fleet = _note_fleet(tmp_path, replicas=1)
        try:
            with fleet.client() as router:
                for i in range(15):
                    router.add("notes", text=f"pre-{i}", stars=i % 5)
            fleet.wait_caught_up()
            replica = fleet.nodes[1]
            replica.close()
            with fleet.client() as router:
                for i in range(20):
                    router.add("notes", text=f"gap-{i}", stars=i % 5)
            restarted = fleet.restart_replica(replica)
            # Pure tail catch-up on the existing directory: no re-clone.
            assert restarted.replication.resyncs == 0
            fleet.wait_caught_up()
            assert _notes(restarted.store) == _notes(fleet.primary.store)
            assert len(_notes(restarted.store)) == 35
        finally:
            fleet.close()

    def test_primary_checkpoint_aligns_replica_segments(self, tmp_path):
        """A primary checkpoint cuts the shipped log; the replica takes
        its own aligned checkpoint and restarts cleanly from it."""
        fleet = _note_fleet(tmp_path, replicas=1)
        try:
            with fleet.client() as router:
                for i in range(10):
                    router.add("notes", text=f"seg1-{i}", stars=1)
            fleet.wait_caught_up()
            fleet.primary.store.checkpoint()
            with fleet.client() as router:
                for i in range(10):
                    router.add("notes", text=f"seg2-{i}", stars=2)
            fleet.wait_caught_up()
            replica = fleet.nodes[1]
            _wait_until(
                lambda: replica.replication.local_checkpoints >= 1,
                what="replica checkpoint alignment",
            )
            # The replica's own data dir must recover standalone — its
            # manifest records primary entry ids (translated), and its
            # tail belongs to the aligned segment.
            restarted = fleet.restart_replica(replica)
            assert restarted.replication.resyncs == 0
            fleet.wait_caught_up()
            assert _notes(restarted.store) == _notes(fleet.primary.store)
            assert len(_notes(restarted.store)) == 20
        finally:
            fleet.close()

    def test_fall_behind_forces_resync_then_recovers(self, tmp_path):
        """A replica paused across a primary checkpoint loses its
        segment lineage: the live loop flags needs_resync (terminal),
        and a rejoin re-clones and catches up."""
        fleet = _note_fleet(tmp_path, replicas=1)
        try:
            fleet.wait_caught_up()
            replica = fleet.nodes[1]
            replica.replication.pause()
            with fleet.client() as router:
                for i in range(8):
                    router.add("notes", text=f"miss-{i}", stars=0)
            fleet.primary.store.checkpoint()  # cuts the shipped tail
            with fleet.client() as router:
                for i in range(4):
                    router.add("notes", text=f"post-{i}", stars=1)
            replica.replication.resume()
            _wait_until(
                lambda: replica.replication.needs_resync,
                what="needs_resync flag",
            )
            rejoined = fleet.restart_replica(replica)
            assert rejoined.replication.resyncs == 1
            fleet.wait_caught_up()
            assert _notes(rejoined.store) == _notes(fleet.primary.store)
            assert len(_notes(rejoined.store)) == 12
        finally:
            fleet.close()


# ----------------------------------------------------------------------
# Failover drills (acceptance gate)
# ----------------------------------------------------------------------


class TestFailoverDrills:
    def test_primary_killed_at_ship_loses_no_acked_batch(self, tmp_path):
        """Crash the primary at the WAL-ship point, promote, verify.

        Every batch the router saw acknowledged before the crash must
        be present on the promoted node; writes resume through the same
        router via NOT_PRIMARY/connection failover.
        """
        from repro import sanitizer

        fleet = _note_fleet(tmp_path, replicas=2)
        router = fleet.client(retries=6, backoff=0.05)
        try:
            acked = []
            for i in range(25):
                router.add("notes", text=f"acked-{i}", stars=i % 5)
                acked.append(f"acked-{i}")
            fleet.wait_caught_up()

            plan = sanitizer.FaultPlan().crash_at("repl.ship")
            with sanitizer.enabled(faults=plan):
                # The next replica poll fires the fault inside the
                # primary's ship path; its WAL goes inert (the process
                # "died" mid-ship).
                _wait_until(
                    lambda: plan.fired.get("repl.ship"),
                    what="repl.ship crash",
                )
            assert plan.fired["repl.ship"] == 1
            fleet.kill_primary()

            winner = fleet.failover()
            assert winner.role == "primary"
            assert winner.replication.promoted
            texts = sorted(h.text for h in winner.store.collections["notes"])
            assert texts == sorted(acked), "an acknowledged batch vanished"

            # The same router fails over: its cached primary is dead,
            # rediscovery finds the promoted node.
            entry = router.add("notes", text="post-failover", stars=5)
            assert entry >= 0
            assert router.failovers >= 1
            fleet.wait_caught_up()
            survivor = next(
                n for n in fleet.nodes
                if n.alive and n is not fleet.primary
            )
            assert _notes(survivor.store) == _notes(winner.store)
        finally:
            router.close()
            fleet.close()

    def test_lagging_replica_refuses_promotion(self, tmp_path):
        fleet = _note_fleet(tmp_path, replicas=2)
        try:
            fleet.wait_caught_up()
            lagging = fleet.nodes[2]
            lagging.replication.pause()
            with fleet.client() as router:
                for i in range(10):
                    router.add("notes", text=f"fresh-{i}", stars=0)
            fresh = fleet.nodes[1]
            assert fresh.replication.wait_for(
                fleet.primary.store.committed_lsn, timeout=10.0
            )
            floor = fresh.replication.applied_lsn
            assert lagging.replication.applied_lsn < floor
            fleet.kill_primary()

            # Direct refusal...
            with pytest.raises(StalePromotionError):
                lagging.replication.promote(min_lsn=floor)
            # ...and over the wire, with the watermarks the operator
            # needs to pick a better candidate.
            reply = lagging.service.handle(
                {"op": "promote", "min_lsn": floor}
            )
            assert reply["error"] == "STALE_PROMOTION"
            assert reply["applied_lsn"] < reply["min_lsn"] == floor
            assert not lagging.replication.promoted

            winner = fleet.failover()
            assert winner is fresh
            assert sorted(
                h.text for h in winner.store.collections["notes"]
            ) == sorted(f"fresh-{i}" for i in range(10))
        finally:
            fleet.close()

    def test_replica_killed_at_apply_restarts_and_catches_up(self, tmp_path):
        """Crash a replica mid-apply; its directory recovers and the
        rejoined replica streams only what it is missing."""
        from repro import sanitizer

        fleet = _note_fleet(tmp_path, replicas=1)
        try:
            fleet.wait_caught_up()
            replica = fleet.nodes[1]
            plan = sanitizer.FaultPlan().crash_at("repl.apply", after=3)
            with sanitizer.enabled(faults=plan):
                with fleet.client() as router:
                    for i in range(12):
                        router.add("notes", text=f"r-{i}", stars=i % 5)
                _wait_until(
                    lambda: plan.fired.get("repl.apply"),
                    what="repl.apply crash",
                )
            _wait_until(
                lambda: isinstance(
                    replica.replication.failure, InjectedFaultError
                ),
                what="replica loop death",
            )
            rejoined = fleet.restart_replica(replica)
            assert rejoined.replication.resyncs == 0
            fleet.wait_caught_up()
            assert _notes(rejoined.store) == _notes(fleet.primary.store)
            assert len(_notes(rejoined.store)) == 12
        finally:
            fleet.close()

    CRASH_POINTS = [
        ("wal.append.mid", False),
        ("wal.fsync", True),
        ("checkpoint.manifest_rename", False),
    ]

    @pytest.mark.parametrize(
        "point,power_loss",
        CRASH_POINTS,
        ids=[f"{p}-pl{int(pl)}" for p, pl in CRASH_POINTS],
    )
    def test_promoted_node_passes_crash_matrix(
        self, tmp_path, point, power_loss
    ):
        """After failover, the promoted node is a first-class primary:
        crash it at the WAL/checkpoint points and recover its directory."""
        from repro import sanitizer

        fleet = _note_fleet(tmp_path, replicas=1)
        acked = []
        try:
            with fleet.client() as router:
                for i in range(10):
                    router.add("notes", text=f"pre-{i}", stars=i % 5)
                    acked.append(f"pre-{i}")
            fleet.wait_caught_up()
            fleet.kill_primary()
            winner = fleet.failover()
            data_dir = winner.store.datadir.root
            with fleet.client() as router:
                for i in range(5):
                    router.add("notes", text=f"own-{i}", stars=i)
                    acked.append(f"own-{i}")

            plan = sanitizer.FaultPlan().crash_at(
                point, power_loss=power_loss
            )
            with sanitizer.enabled(faults=plan):
                with pytest.raises(InjectedFaultError):
                    for i in range(20):
                        winner.store.apply(
                            [
                                {
                                    "op": "add",
                                    "collection": "notes",
                                    "values": {"text": f"crash-{i}", "stars": 0},
                                }
                            ]
                        )
                    winner.store.checkpoint()
            assert plan.fired.get(point) == 1
            winner.kill()
        finally:
            fleet.close()

        loaded, report = recover(data_dir)
        texts = sorted(h.text for h in loaded["notes"])
        committed_extra = [t for t in texts if t.startswith("crash-")]
        assert [t for t in texts if not t.startswith("crash-")] == sorted(
            acked
        ), "a pre-crash acked batch vanished from the promoted node"
        # Whatever survives of the crashing run is a committed prefix.
        assert committed_extra == sorted(
            f"crash-{i}" for i in range(len(committed_extra))
        )
        loaded["_manager"].close()


# ----------------------------------------------------------------------
# Bounded-staleness property (hypothesis, socket-free fleet)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def loop_fleet(tpch_tiny, tmp_path_factory):
    """In-process fleet over LoopbackClient transports (no sockets)."""
    from repro.tpch.loader import load_smc

    root = tmp_path_factory.mktemp("loop-fleet")
    colls = load_smc(tpch_tiny)
    colls["scratch"] = Collection(
        TNote, manager=colls["_manager"], name="scratch"
    )
    store = DurableStore.create(
        str(root / "primary"), collections=colls, fsync_policy="none"
    )
    pcolls = dict(store.collections)
    pcolls["_manager"] = store.manager
    primary = QueryService(pcolls, store.manager, store=store)
    services = {"P": primary}
    repls = []
    for i in (1, 2):
        repl = ReplicationClient(
            "loop",
            0,
            str(root / f"replica-{i}"),
            fsync_policy="none",
            poll_wait=0.02,
            name=f"loop-{i}",
            transport_factory=lambda h, p: LoopbackClient(primary),
        )
        rstore = repl.sync()
        rcolls = dict(rstore.collections)
        rcolls["_manager"] = rstore.manager
        services[f"R{i}"] = QueryService(
            rcolls, rstore.manager, store=rstore, replication=repl
        )
        repl.start()
        repls.append(repl)
    yield {"services": services, "repls": repls}
    for repl in repls:
        repl.stop()
    for service in services.values():
        service.close()


class TestStalenessProperty:
    def test_staleness_bound_and_monotonic_reads(self, loop_fleet):
        """Random interleavings of writes, bounded reads and replica
        pauses: every read satisfies ``lsn >= known_committed - bound``
        and the session's read watermark never moves backwards."""
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        services = loop_fleet["services"]
        repls = loop_fleet["repls"]

        step = st.tuples(
            st.sampled_from(["write", "read", "pause", "resume"]),
            st.integers(min_value=0, max_value=3),  # staleness bound
            st.integers(min_value=0, max_value=1),  # replica index
        )

        @settings(
            max_examples=10,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )
        @given(ops=st.lists(step, min_size=4, max_size=14))
        def run(ops):
            router = RoutedClient(
                ["P", "R1", "R2"],
                staleness_bound=0,
                stale_wait=0.15,
                client_factory=lambda ep: LoopbackClient(
                    services[ep], open_session=True
                ),
            )
            try:
                last_read = 0
                wrote = 0
                for kind, bound, idx in ops:
                    if kind == "write":
                        router.add("scratch", text=f"p-{wrote}", stars=0)
                        wrote += 1
                    elif kind == "pause":
                        repls[idx].pause()
                    elif kind == "resume":
                        repls[idx].resume()
                    else:
                        floor = router.min_lsn(bound)
                        router.query("q6", bound=bound)
                        assert router.read_lsn >= floor, (
                            "read below the staleness floor"
                        )
                        assert router.read_lsn >= last_read, (
                            "read watermark moved backwards"
                        )
                        last_read = router.read_lsn
            finally:
                for repl in repls:
                    repl.resume()
                router.close()

        try:
            run()
        finally:
            for repl in repls:
                repl.resume()


# ----------------------------------------------------------------------
# Client plumbing and guard rails
# ----------------------------------------------------------------------


class TestClientAndGuards:
    def test_client_connect_retry_rides_out_slow_start(self, tmp_path):
        """ServiceClient's bounded retry connects to a server that
        comes up shortly after the first attempt is refused."""
        import socket

        from repro.service.server import ServiceServer

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # the port is now free — and refused

        fleet_colls = _note_collections()
        service = QueryService(fleet_colls, fleet_colls["_manager"])
        holder = {}

        def late_start():
            time.sleep(0.3)
            holder["server"] = ServiceServer(
                service, "127.0.0.1", port
            ).start()

        thread = threading.Thread(target=late_start, daemon=True)
        thread.start()
        try:
            with pytest.raises(OSError):
                ServiceClient(port=port, retries=0, timeout=2.0)
            client = ServiceClient(
                port=port, retries=10, backoff=0.05, timeout=5.0
            )
            assert client.ping()
            client.close()
        finally:
            thread.join(timeout=10)
            if "server" in holder:
                holder["server"].stop()

    def test_replicate_on_nondurable_service_is_bad_request(self):
        colls = _note_collections()
        service = QueryService(colls, colls["_manager"])
        try:
            reply = service.handle({"op": "replicate", "after_lsn": 0})
            assert reply["error"] == "BAD_REQUEST"
            reply = service.handle({"op": "promote"})
            assert reply["error"] == "BAD_REQUEST"
            reply = service.handle({"op": "lsn"})
            assert reply["ok"] and reply["role"] == "primary"
        finally:
            service.close()

    def test_replica_does_not_chain_ship(self, tmp_path):
        fleet = _note_fleet(tmp_path, replicas=1)
        try:
            replica = fleet.nodes[1]
            reply = replica.service.handle(
                {"op": "replicate", "after_lsn": 0}
            )
            assert reply["error"] == "BAD_REQUEST"
            assert "chained" in reply["detail"]
        finally:
            fleet.close()
