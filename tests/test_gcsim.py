"""GC cost model (Figure 9 substrate) and the real CPython GC probe."""

import pytest

from repro.managed.gcsim import (
    GcParams,
    SimulatedHeap,
    longest_timeout,
    real_gc_probe,
)


def test_mode_validation():
    with pytest.raises(ValueError):
        SimulatedHeap(mode="turbo")


def test_minor_collection_triggers_on_nursery_budget():
    heap = SimulatedHeap("batch", GcParams(nursery_bytes=1000))
    for __ in range(9):
        heap.allocate(100)
    assert heap.stats.minor_collections == 0
    heap.allocate(100)
    assert heap.stats.minor_collections == 1


def test_short_lived_objects_do_not_promote():
    heap = SimulatedHeap("batch", GcParams(nursery_bytes=1000))
    for __ in range(20):
        heap.allocate(100, long_lived=False)
    assert heap.old_live_objects == 0


def test_long_lived_objects_promote():
    heap = SimulatedHeap("batch", GcParams(nursery_bytes=1000))
    for __ in range(20):
        heap.allocate(100, long_lived=True)
    assert heap.old_live_objects > 0


def test_major_pause_scales_with_pinned_population():
    params = GcParams()
    small = SimulatedHeap("batch", params)
    small.pin_old_generation(10_000, 160)
    big = SimulatedHeap("batch", params)
    big.pin_old_generation(10_000_000, 160)
    assert big.force_major() > small.force_major() * 100


def test_interactive_mode_bounds_pauses():
    params = GcParams()
    batch = SimulatedHeap("batch", params)
    batch.pin_old_generation(5_000_000, 160)
    inter = SimulatedHeap("interactive", params)
    inter.pin_old_generation(5_000_000, 160)
    assert inter.force_major() < batch.force_major() / 5
    assert inter.stats.background_cpu > 0


def test_clock_accumulates_pauses_and_compute():
    heap = SimulatedHeap("batch", GcParams(nursery_bytes=1000))
    heap.advance(1.0)
    for __ in range(10):
        heap.allocate(100)
    assert heap.clock > 1.0
    assert heap.stats.total_pause > 0


def test_longest_timeout_shapes_figure9():
    """Managed pauses grow ~linearly; interactive pauses stay bounded."""
    sizes = [1_000_000, 5_000_000, 10_000_000]
    batch = [longest_timeout(n, "batch", churn_objects=20_000) for n in sizes]
    inter = [
        longest_timeout(n, "interactive", churn_objects=20_000) for n in sizes
    ]
    assert batch[0] < batch[1] < batch[2]
    ratio = batch[2] / batch[0]
    assert 5 < ratio < 15  # ~linear in population
    assert all(i < b for i, b in zip(inter, batch))
    assert inter[2] < batch[2] / 5


def test_smc_population_keeps_pauses_flat():
    """An SMC keeps its objects out of the collector's reach: pinning
    nothing (the blocks are a handful of buffers) keeps the max pause flat
    regardless of how much data the collection holds."""
    small = longest_timeout(0, "batch", churn_objects=20_000)
    big = longest_timeout(0, "batch", churn_objects=20_000)
    assert small == pytest.approx(big)


def test_real_gc_probe_managed_vs_offheap():
    """CPython's cycle collector visits managed records but not SMC blocks."""
    from repro.core.collection import Collection
    from repro.memory.manager import MemoryManager
    from tests.schemas import TPerson

    n = 50_000

    def managed_population():
        record = TPerson.managed_class()
        return [record(name="x", age=i) for i in range(n)]

    def smc_population():
        m = MemoryManager()
        persons = Collection(TPerson, manager=m)
        for i in range(n):
            persons.add(name="x", age=i)
        return (m, persons)

    managed_cost = real_gc_probe(managed_population)
    smc_cost = real_gc_probe(smc_population)
    # The managed population must be at least noticeably more expensive to
    # collect; exact factors vary with the machine.
    assert managed_cost > smc_cost
