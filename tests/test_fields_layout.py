"""Field codecs and slot-layout computation."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.memory.block import SLOT_HEADER_SIZE
from repro.schema.fields import (
    CharField,
    DateField,
    DecimalField,
    Int8Field,
    Int32Field,
    Int64Field,
    RefField,
    date_to_days,
    days_to_date,
)
from repro.schema.layout import SlotLayout

from tests.schemas import TEverything, TPerson


def test_date_conversions_roundtrip():
    d = datetime.date(1998, 9, 2)
    assert days_to_date(date_to_days(d)) == d


def test_date_accepts_iso_string():
    assert date_to_days("1970-01-02") == 1


@given(st.dates(min_value=datetime.date(1900, 1, 1), max_value=datetime.date(2200, 1, 1)))
def test_date_roundtrip_property(d):
    assert days_to_date(date_to_days(d)) == d


def test_decimal_raw_conversions():
    f = DecimalField(2)
    assert f.to_raw(Decimal("12.34")) == 1234
    assert f.to_raw(5) == 500
    assert f.to_raw(1.5) == 150
    assert f.to_raw("0.07") == 7
    assert f.from_raw(1234) == Decimal("12.34")


def test_decimal_scale_bounds():
    with pytest.raises(ValueError):
        DecimalField(scale=-1)
    with pytest.raises(ValueError):
        DecimalField(scale=10)


def test_decimal_rejects_junk():
    f = DecimalField(2)
    with pytest.raises(TypeError):
        f.to_raw(object())


@given(
    st.decimals(
        min_value=-(10**12), max_value=10**12, places=2, allow_nan=False
    )
)
def test_decimal_roundtrip_property(value):
    f = DecimalField(2)
    assert f.from_raw(f.to_raw(value)) == value


def test_char_field_width_validation():
    with pytest.raises(ValueError):
        CharField(0)


def test_char_encode_decode():
    layout = TPerson.__layout__
    buf = bytearray(layout.slot_size)
    layout.write_field(buf, 0, "name", "Ada", None)
    assert layout.read_field(buf, 0, "name", None) == "Ada"


def test_char_overflow_rejected():
    layout = TPerson.__layout__
    buf = bytearray(layout.slot_size)
    with pytest.raises(ValueError):
        layout.write_field(buf, 0, "name", "x" * 25, None)


def test_layout_offsets_are_aligned():
    layout = TEverything.__layout__
    for f in layout.fields:
        assert f.offset % f.align == 0, f.name
        assert f.offset >= SLOT_HEADER_SIZE


def test_layout_fields_do_not_overlap():
    layout = TEverything.__layout__
    spans = sorted((f.offset, f.offset + f.size) for f in layout.fields)
    for (s1, e1), (s2, __) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_layout_slot_size_multiple_of_eight():
    assert TEverything.__layout__.slot_size % 8 == 0
    assert TPerson.__layout__.slot_size % 8 == 0


def test_layout_classifies_fields():
    layout = TEverything.__layout__
    assert [f.name for f in layout.var_fields] == ["memo"]
    assert [f.name for f in layout.ref_fields] == ["friend"]
    assert "price" in [f.name for f in layout.scalar_fields]


def test_layout_rejects_empty():
    with pytest.raises(ValueError):
        SlotLayout([], "Empty")


def test_write_new_applies_defaults(manager):
    layout = TEverything.__layout__
    buf = bytearray(layout.slot_size)
    layout.write_new(buf, 0, {}, manager)
    assert layout.read_field(buf, 0, "i32", manager) == 0
    assert layout.read_field(buf, 0, "price", manager) == Decimal(0)
    assert layout.read_field(buf, 0, "day", manager) == datetime.date(1970, 1, 1)
    assert layout.read_field(buf, 0, "code", manager) == ""
    assert layout.read_field(buf, 0, "memo", manager) == ""
    assert layout.read_field(buf, 0, "friend", manager) == (-1, 0)


def test_write_new_rejects_unknown_fields(manager):
    layout = TPerson.__layout__
    buf = bytearray(layout.slot_size)
    with pytest.raises(TypeError):
        layout.write_new(buf, 0, {"bogus": 1}, manager)


def test_write_new_full_row_roundtrip(manager):
    layout = TEverything.__layout__
    buf = bytearray(layout.slot_size)
    values = {
        "i8": -5,
        "i16": 1234,
        "i32": -70000,
        "i64": 2**40,
        "flag": True,
        "ratio": 2.5,
        "price": Decimal("99.99"),
        "fine": Decimal("0.1234"),
        "day": datetime.date(2001, 2, 3),
        "code": "ABC",
        "memo": "a longer variable string",
        "friend": (7, 3),
    }
    layout.write_new(buf, 0, values, manager)
    row = layout.read_row(buf, 0, manager)
    assert row == values


def test_release_owned_frees_strings(manager):
    layout = TEverything.__layout__
    buf = bytearray(layout.slot_size)
    layout.write_new(buf, 0, {"memo": "hello strings"}, manager)
    assert manager.strings.bytes_in_use > 0
    layout.release_owned(buf, 0, manager)
    assert manager.strings.bytes_in_use == 0
    assert layout.read_field(buf, 0, "memo", manager) == ""


def test_varstring_overwrite_frees_old(manager):
    layout = TEverything.__layout__
    buf = bytearray(layout.slot_size)
    layout.write_new(buf, 0, {"memo": "first"}, manager)
    used = manager.strings.bytes_in_use
    layout.write_field(buf, 0, "memo", "second", manager)
    assert manager.strings.bytes_in_use == used
    assert layout.read_field(buf, 0, "memo", manager) == "second"


def test_int_field_sizes():
    assert Int8Field.size == 1
    assert Int32Field.size == 4
    assert Int64Field.size == 8
    assert RefField("TPerson").size == 16


def test_layout_repr_mentions_type():
    assert "TPerson" in repr(TPerson.__layout__)
