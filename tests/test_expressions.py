"""Expression trees: construction, evaluation, signatures."""

import datetime
from decimal import Decimal

import pytest

from repro.query.expressions import (
    Between,
    BinOp,
    BoolOp,
    Cmp,
    Const,
    Expr,
    FieldRef,
    InSet,
    Not,
    Param,
    RefIdentity,
    param,
    ref_identity,
)

from tests.schemas import TOrder, TPerson


class Row:
    def __init__(self, **kw):
        self.__dict__.update(kw)


def test_field_comparison_builds_cmp():
    expr = TPerson.age > 17
    assert isinstance(expr, Cmp)
    assert expr.op == ">"
    assert isinstance(expr.left, FieldRef)
    assert isinstance(expr.right, Const)


def test_arithmetic_builds_binop():
    expr = TPerson.balance * (1 - TPerson.balance)
    assert isinstance(expr, BinOp)
    assert expr.op == "*"
    assert isinstance(expr.right, BinOp)


def test_evaluate_simple_predicate():
    pred = TPerson.age > 17
    assert pred.evaluate(Row(age=20), {}) is True
    assert pred.evaluate(Row(age=10), {}) is False


def test_evaluate_arithmetic():
    expr = TPerson.balance * 2 + 1
    assert expr.evaluate(Row(balance=10), {}) == 21


def test_reverse_operators():
    expr = 1 - TPerson.age
    assert expr.evaluate(Row(age=3), {}) == -2
    expr2 = 10 / TPerson.age
    assert expr2.evaluate(Row(age=5), {}) == 2


def test_param_binding():
    pred = TPerson.age >= param("cutoff")
    assert pred.evaluate(Row(age=30), {"cutoff": 18}) is True
    assert pred.evaluate(Row(age=10), {"cutoff": 18}) is False


def test_boolop_flattening():
    e = (TPerson.age > 1) & (TPerson.age > 2) & (TPerson.age > 3)
    assert isinstance(e, BoolOp)
    assert len(e.parts) == 3


def test_boolop_or_and_not():
    e = (TPerson.age < 5) | (TPerson.age > 10)
    assert e.evaluate(Row(age=3), {}) is True
    assert e.evaluate(Row(age=7), {}) is False
    assert (~e).evaluate(Row(age=7), {}) is True


def test_isin():
    e = TPerson.name.isin(["a", "b"])
    assert isinstance(e, InSet)
    assert e.evaluate(Row(name="a"), {}) is True
    assert e.evaluate(Row(name="z"), {}) is False


def test_between():
    e = TPerson.age.between(10, 20)
    assert isinstance(e, Between)
    assert e.evaluate(Row(age=10), {}) is True
    assert e.evaluate(Row(age=20), {}) is True
    assert e.evaluate(Row(age=21), {}) is False


def test_string_predicates():
    assert TPerson.name.startswith("Ad").evaluate(Row(name="Adam"), {})
    assert not TPerson.name.startswith("Ad").evaluate(Row(name="Eve"), {})
    assert TPerson.name.contains("da").evaluate(Row(name="Adam"), {})


def test_navigation_evaluation():
    e = TOrder.owner.ref("age") + 1
    order = Row(owner=Row(age=41))
    assert e.evaluate(order, {}) == 42


def test_navigation_through_null_gives_none():
    e = TOrder.owner.ref("age")
    assert e.evaluate(Row(owner=None), {}) is None


def test_navigation_requires_ref_field():
    with pytest.raises(TypeError):
        TPerson.age.ref("anything")


def test_navigation_unknown_target_field():
    with pytest.raises(AttributeError):
        TOrder.owner.ref("bogus")


def test_ref_identity_evaluation():
    e = ref_identity(TOrder.owner._expr() if hasattr(TOrder.owner, "_expr") else TOrder.owner)
    target = Row(age=1)
    assert e.evaluate(Row(owner=target), {}) is target


def test_ref_identity_requires_ref():
    with pytest.raises(TypeError):
        ref_identity(TPerson.age._expr())


def test_signatures_stable_and_distinct():
    a = (TPerson.age > 17).signature()
    b = (TPerson.age > 17).signature()
    c = (TPerson.age > 18).signature()
    d = (TPerson.age >= 17).signature()
    assert a == b
    assert a != c and a != d


def test_signature_includes_navigation_path():
    sig = TOrder.owner.ref("age").signature()
    assert "owner" in sig and "age" in sig


def test_param_signature_ignores_value():
    s1 = (TPerson.age > param("x")).signature()
    assert "param(x)" in s1


def test_const_wrap():
    e = Expr.wrap(5)
    assert isinstance(e, Const)
    assert Expr.wrap(e) is e
    assert isinstance(Expr.wrap(TPerson.age), FieldRef)
