"""Columnar collections (paper section 4.1)."""

import datetime
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection, ColumnarHandle, column_dtype
from repro.errors import NullReferenceError
from repro.schema.fields import CharField, DecimalField, Int32Field

from tests.schemas import TEverything, TNote, TOrder, TPerson


@pytest.fixture
def persons(manager):
    return ColumnarCollection(TPerson, manager=manager)


def test_column_dtypes():
    import numpy as np

    assert column_dtype(DecimalField(2)) == np.int64
    assert column_dtype(Int32Field()) == np.int32
    assert column_dtype(CharField(7)) == "S7"


def test_add_and_read(persons):
    h = persons.add(name="Ada", age=36, balance=Decimal("1.25"))
    assert isinstance(h, ColumnarHandle)
    assert h.name == "Ada"
    assert h.age == 36
    assert h.balance == Decimal("1.25")


def test_remove_nulls_handle(persons):
    h = persons.add(name="Ada", age=36)
    persons.remove(h)
    assert len(persons) == 0
    with pytest.raises(NullReferenceError):
        __ = h.name


def test_update_through_handle(persons):
    h = persons.add(name="Ada", age=36)
    h.age = 37
    assert h.age == 37


def test_enumeration(persons):
    for i in range(50):
        persons.add(name=f"p{i}", age=i)
    assert [h.age for h in persons] == list(range(50))


def test_indirection_stores_block_and_slot(persons, manager):
    h = persons.add(name="Ada", age=36)
    addr = h.ref.address()
    block = manager.space.block_at(addr)
    # For columnar blocks the offset part of the address IS the slot id.
    assert block.slot_of_address(addr) == manager.space.offset_of(addr)


def test_cross_layout_references(manager):
    """A columnar collection can reference a row collection and back."""
    persons = ColumnarCollection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    p = persons.add(name="Ada", age=36)
    o = orders.add(orderkey=1, owner=p)
    assert o.owner.name == "Ada"
    persons.remove(p)
    with pytest.raises(NullReferenceError):
        __ = o.owner.name


def test_columnar_to_columnar_reference(manager):
    persons = ColumnarCollection(TPerson, manager=manager)
    orders = ColumnarCollection(TOrder, manager=manager)
    p = persons.add(name="Ada", age=36)
    o = orders.add(orderkey=7, owner=p)
    assert o.owner.name == "Ada"
    assert o.owner.age == 36
    o.owner = None
    assert o.owner is None


def test_varstring_columns(manager):
    notes = ColumnarCollection(TNote, manager=manager)
    n = notes.add(text="columnar text record", stars=4)
    assert n.text == "columnar text record"
    assert manager.strings.bytes_in_use > 0
    notes.remove(n)
    assert manager.strings.bytes_in_use == 0


def test_compaction_not_supported(persons):
    with pytest.raises(NotImplementedError):
        persons.compact()


def test_date_column(manager):
    orders = ColumnarCollection(TOrder, manager=manager)
    o = orders.add(orderkey=1, placed=datetime.date(2020, 5, 4))
    assert o.placed == datetime.date(2020, 5, 4)


def test_slot_reuse_in_columnar_blocks():
    from repro.memory.manager import MemoryManager

    m = MemoryManager(block_shift=10, reclamation_threshold=0.05)
    persons = ColumnarCollection(TPerson, manager=m)
    live = [persons.add(name=f"p{i}", age=i) for i in range(100)]
    blocks = persons.context.block_count()
    for __ in range(5):
        for h in live:
            persons.remove(h)
        live = [persons.add(name=f"r{i}", age=i) for i in range(100)]
    assert persons.context.block_count() <= blocks + 2
    m.close()


def test_query_agreement_with_row_layout(manager):
    from repro.query.expressions import param

    row = Collection(TEverything, manager=manager)
    # Columnar twin lives on its own manager to avoid type-id confusion.
    from repro.memory.manager import MemoryManager

    m2 = MemoryManager()
    colp = ColumnarCollection(TEverything, manager=m2)
    ColumnarCollection(TPerson, manager=m2)
    Collection(TPerson, manager=manager)
    rows = [
        dict(i32=i, price=Decimal(i) / 4, code=f"c{i % 3}", ratio=i / 7)
        for i in range(200)
    ]
    for r in rows:
        row.add(**r)
        colp.add(**r)
    q_row = (
        row.query()
        .where(TEverything.i32 >= param("lo"))
        .group_by(code=TEverything.code)
        .aggregate(total=__import__("repro.query.builder", fromlist=["Sum"]).Sum(TEverything.price))
        .order_by("code")
    )
    q_col = (
        colp.query()
        .where(TEverything.i32 >= param("lo"))
        .group_by(code=TEverything.code)
        .aggregate(total=__import__("repro.query.builder", fromlist=["Sum"]).Sum(TEverything.price))
        .order_by("code")
    )
    assert q_row.run(lo=50).rows == q_col.run(lo=50).rows
    m2.close()
