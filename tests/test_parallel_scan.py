"""Morsel-parallel scans and zone-map pruning.

Differential guarantees first: every TPC-H query must produce identical
results across worker counts and with pruning on/off, on both layouts,
and while a compaction cycle runs underneath.  Then the zone-map
lifecycle: lazy build, conservative staleness after frees, invalidation
on in-place updates, exact rebuild on compaction.

All tests here are sanitizer-compatible (``pytest --sanitize``).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.query.builder import Count, Sum
from repro.tpch.loader import load_smc
from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES
from tests.schemas import TPerson

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES}

#: (workers, prune) configurations differenced against (1, False).
CONFIGS = [(1, True), (4, False), (4, True)]


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


@pytest.fixture(scope="module", params=["row", "columnar"])
def tpch_smc(request, tpch_tiny):
    collections = load_smc(tpch_tiny, columnar=request.param == "columnar")
    yield collections
    collections["_manager"].close()


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_differential_workers_and_pruning(tpch_smc, name):
    """Parallel and pruned scans return exactly the serial unpruned rows."""
    query = ALL_QUERIES[name](tpch_smc)
    expected = _canonical(query.run(params=DEFAULT_PARAMS, workers=1, prune=False))
    for workers, prune in CONFIGS:
        got = query.run(params=DEFAULT_PARAMS, workers=workers, prune=prune)
        assert _canonical(got) == expected, (name, workers, prune)


def _worn_people(n=3000, keep_mod=3):
    """A multi-block population with most rows freed (compaction bait)."""
    m = MemoryManager(block_shift=14)  # 16 KiB blocks: several per 1k rows
    people = Collection(TPerson, manager=m)
    handles = [people.add(name="p", age=i, balance=i) for i in range(n)]
    for i, h in enumerate(handles):
        if i % keep_mod:
            people.remove(h)
    return m, people


def test_parallel_scan_during_compaction():
    """Workers racing a compaction cycle still see every survivor once."""
    m, people = _worn_people()
    query = (
        people.query()
        .where(TPerson.age >= 0)
        .aggregate(n=Count(), total=Sum(TPerson.age))
    )
    expected = _canonical(query.run(workers=1, prune=False))

    results = []
    errors = []
    stop = threading.Event()

    def scanner():
        try:
            while not stop.is_set():
                results.append(
                    _canonical(query.run(workers=4, prune=True))
                )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=scanner) for __ in range(2)]
    for t in threads:
        t.start()
    try:
        for __ in range(3):
            people.compact(occupancy_threshold=0.9)
    finally:
        stop.set()
        for t in threads:
            t.join()
    m.close()
    assert not errors, errors
    assert results and all(r == expected for r in results)


def _count(result):
    """Scalar Count() value (an empty selection aggregates to no rows)."""
    return result.rows[0][0] if result.rows else 0


def _lineitem_block(people):
    blocks = people.context.blocks()
    assert len(blocks) >= 1
    return blocks[0]


def test_zone_map_built_lazily_by_pruning_scan():
    m = MemoryManager()
    people = Collection(TPerson, manager=m)
    for i in range(100):
        people.add(name="p", age=i)
    block = _lineitem_block(people)
    assert block.zones is None  # writers never build statistics

    probe = people.query().where(TPerson.age == 5_000).aggregate(n=Count())
    assert _count(probe.run(workers=1, prune=True)) == 0
    zones = block.zones
    assert zones is not None and zones.version == block.zone_version
    assert (zones.lo["age"], zones.hi["age"]) == (0, 99)
    m.close()


def test_zone_staleness_free_keeps_bounds_conservative():
    """Freeing the extremum leaves bounds wide: missed pruning, never a
    missed match."""
    m = MemoryManager()
    people = Collection(TPerson, manager=m)
    handles = [people.add(name="p", age=i) for i in range(100)]
    probe = people.query().where(TPerson.age >= 99).aggregate(n=Count())
    assert _count(probe.run(workers=1, prune=True)) == 1

    block = _lineitem_block(people)
    people.remove(handles[99])  # drop the max
    zones = block.zones
    assert zones.stale >= 1
    assert zones.hi["age"] == 99  # stale-wide, by design
    before = dict(m.stats.extra)
    assert _count(probe.run(workers=1, prune=True)) == 0
    # The conservative map admits the block even though it can no longer match.
    assert m.stats.extra.get("zone_pruned_blocks", 0) == before.get(
        "zone_pruned_blocks", 0
    )
    m.close()


def test_zone_invalidated_by_inplace_update():
    """An update past the recorded bounds must defeat pruning immediately."""
    m = MemoryManager()
    people = Collection(TPerson, manager=m)
    handles = [people.add(name="p", age=i) for i in range(100)]
    probe = people.query().where(TPerson.age >= 5_000).aggregate(n=Count())
    assert _count(probe.run(workers=1, prune=True)) == 0
    handles[0].age = 10_000
    assert _count(probe.run(workers=1, prune=True)) == 1
    block = _lineitem_block(people)
    assert block.zones.hi["age"] == 10_000  # rebuilt after invalidation
    m.close()


def test_zone_rebuilt_exactly_on_compaction():
    """Compaction squeezes out freed extrema: the rebuilt map prunes what
    the stale one could not."""
    m, people = _worn_people(n=3000, keep_mod=3)
    survivors_max = max(h.age for h in people)
    probe = (
        people.query()
        .where(TPerson.age > survivors_max)
        .aggregate(n=Count())
    )
    assert _count(probe.run(workers=1, prune=True)) == 0
    moved = people.compact(occupancy_threshold=0.9)
    assert moved > 0
    for block in people.context.blocks():
        zones = block.zones
        if zones is None or zones.version != block.zone_version:
            continue
        assert zones.hi["age"] <= survivors_max
    before = m.stats.extra.get("zone_pruned_blocks", 0)
    assert _count(probe.run(workers=1, prune=True)) == 0
    # Rebuilt (or lazily re-derived) bounds now exclude the probe range.
    assert m.stats.extra.get("zone_pruned_blocks", 0) > before
    m.close()


def test_selective_band_prunes_most_blocks():
    """A narrow band over an insertion-ordered key skips >=50% of blocks."""
    m = MemoryManager(block_shift=14)
    people = Collection(TPerson, manager=m)
    for i in range(5_000):
        people.add(name="p", age=i)
    nblocks = people.context.block_count()
    assert nblocks >= 4
    probe = (
        people.query()
        .where(TPerson.age.between(100, 200))
        .aggregate(n=Count())
    )
    before_p = m.stats.extra.get("zone_pruned_blocks", 0)
    before_s = m.stats.extra.get("zone_scanned_blocks", 0)
    assert _count(probe.run(workers=1, prune=True)) == 101
    pruned = m.stats.extra.get("zone_pruned_blocks", 0) - before_p
    scanned = m.stats.extra.get("zone_scanned_blocks", 0) - before_s
    assert pruned + scanned == nblocks
    assert pruned / nblocks >= 0.5
    m.close()
