"""Memory contexts, reclamation queue, thread-local allocation blocks."""

import threading

import pytest

from repro.memory.allocator import ReclamationQueue, ThreadLocalBlocks
from repro.memory.manager import MemoryManager


class _FakeBlock:
    def __init__(self):
        self.is_active = False
        self.compacting = False
        self.queued_for_reclaim = False
        self.reclaim_ready_epoch = -1
        self.block_id = 0


def test_queue_push_pop_ready():
    q = ReclamationQueue()
    blk = _FakeBlock()
    q.push(blk, ready_epoch=5)
    assert len(q) == 1
    assert q.pop_ready(global_epoch=4) is None
    assert q.pop_ready(global_epoch=5) is blk
    assert not blk.queued_for_reclaim


def test_queue_push_is_idempotent():
    q = ReclamationQueue()
    blk = _FakeBlock()
    q.push(blk, 1)
    q.push(blk, 2)
    assert len(q) == 1


def test_queue_blocked_head():
    q = ReclamationQueue()
    blk = _FakeBlock()
    assert not q.has_blocked_head(0)
    q.push(blk, ready_epoch=10)
    assert q.has_blocked_head(9)
    assert not q.has_blocked_head(10)


def test_queue_drain():
    q = ReclamationQueue()
    blocks = [_FakeBlock() for __ in range(3)]
    for b in blocks:
        q.push(b, 0)
    drained = q.drain()
    assert len(drained) == 3
    assert len(q) == 0
    assert not any(b.queued_for_reclaim for b in blocks)


def test_thread_local_blocks_per_thread():
    tl = ThreadLocalBlocks()
    tl.set("main-block")
    seen = {}

    def worker():
        seen["before"] = tl.get()
        tl.set("worker-block")
        seen["after"] = tl.get()

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen["before"] is None
    assert seen["after"] == "worker-block"
    assert tl.get() == "main-block"
    assert set(tl.values()) == {"main-block", "worker-block"}


def test_context_blocks_snapshot(manager):
    ctx = manager.create_context(slot_size=48, type_name="T")
    assert ctx.blocks() == []
    manager.allocate_object(ctx)
    snap = ctx.blocks()
    assert len(snap) == 1
    snap.clear()  # mutating the snapshot must not affect the context
    assert ctx.block_count() == 1


def test_allocation_spans_blocks():
    m = MemoryManager(block_shift=10)
    ctx = m.create_context(slot_size=64, type_name="T")
    n = 0
    while ctx.block_count() < 3:
        m.allocate_object(ctx)
        n += 1
    assert n > 10
    assert ctx.live_count == n
    m.close()


def test_iter_valid_in_memory_order():
    m = MemoryManager(block_shift=10)
    ctx = m.create_context(slot_size=64, type_name="T")
    pairs = [m.allocate_object(ctx)[:2] for __ in range(40)]
    seen = list(ctx.iter_valid())
    assert seen == [(b, s) for b, s in pairs]
    m.close()


def test_free_slot_queues_block_past_threshold():
    m = MemoryManager(block_shift=10, reclamation_threshold=0.1)
    ctx = m.create_context(slot_size=64, type_name="T")
    refs = []
    # Fill two blocks so the first is no longer the active alloc block.
    while ctx.block_count() < 2:
        refs.append(m.allocate_object(ctx)[2])
    first_block = ctx.blocks()[0]
    victims = [r for r in refs if m.space.block_at(r.address()) is first_block]
    for r in victims:
        m.free_object(r)
    assert first_block.queued_for_reclaim
    assert ctx.reclaim_queue_length == 1
    m.close()


def test_compactable_blocks_excludes_active(manager):
    ctx = manager.create_context(slot_size=48, type_name="T")
    manager.allocate_object(ctx)
    # The only block is the calling thread's active block.
    assert ctx.compactable_blocks(occupancy_threshold=1.1) == []


def test_total_bytes(manager):
    ctx = manager.create_context(slot_size=48, type_name="T")
    manager.allocate_object(ctx)
    assert ctx.total_bytes() == manager.space.block_size


def test_per_thread_allocation_blocks_are_private():
    m = MemoryManager()
    ctx = m.create_context(slot_size=48, type_name="T")
    m.allocate_object(ctx)
    blocks = {}

    def worker():
        blk, __, __ = m.allocate_object(ctx)
        blocks["worker"] = blk

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    main_block = ctx.blocks()[0]
    assert blocks["worker"] is not main_block
    m.close()
