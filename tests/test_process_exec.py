"""Multi-process scatter-gather execution over shared-memory block pools.

Differential guarantees first: with blocks in named shared-memory
segments, every TPC-H query routed through the process pool must return
exactly the serial in-process rows, on both layouts, across mutations
(worker respawn) and worker death (morsel redispatch).  Then the
protocol pieces: segment visibility and the attach round-trip, the
cross-process epoch pins, plan/accumulator wire encoding, and the
zero-orphan ``/dev/shm`` contract.

All tests here are sanitizer-compatible (``pytest --sanitize``).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.memory.manager import MemoryManager
from repro.memory.shm import SEGMENT_PREFIX, SharedBuffers
from repro.query.procexec import ProcessScanPool, run_process_scan
from repro.tpch.loader import load_smc
from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES}


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


# ----------------------------------------------------------------------
# Buffer policy: named segments, attach round-trip, leak contract
# ----------------------------------------------------------------------


def test_shared_buffers_create_attach_release():
    before = _segments()
    buffers = SharedBuffers()
    seg = buffers.create(4096)
    assert seg.name.startswith(SEGMENT_PREFIX)
    assert f"/dev/shm/{seg.name}" in _segments() - before

    view = np.frombuffer(seg.buf, dtype=np.uint8)
    view[: 4] = (1, 2, 3, 4)
    # Same-process attach returns the cached mapping; the bytes written
    # through the owner's view are the bytes an attacher reads.
    att = buffers.attach(seg.name)
    assert bytes(att.buf[:4]) == b"\x01\x02\x03\x04"

    view = None
    seg.release()
    buffers.close()
    assert _segments() == before


def test_heap_vs_shm_results_identical(tpch_tiny):
    heap = load_smc(tpch_tiny, columnar=True)
    shm = load_smc(tpch_tiny, columnar=True, shm=True)
    try:
        for name, builder in sorted(ALL_QUERIES.items()):
            want = _canonical(builder(heap).run(params=DEFAULT_PARAMS))
            got = _canonical(builder(shm).run(params=DEFAULT_PARAMS))
            assert got == want, name
    finally:
        heap["_manager"].close()
        shm["_manager"].close()


def test_no_orphan_segments_after_close(tpch_tiny):
    before = _segments()
    collections = load_smc(tpch_tiny, shm=True)
    manager = collections["_manager"]
    pool = ProcessScanPool(manager, workers=2)
    manager.exec_pool = pool
    query = ALL_QUERIES["q6"](collections)
    query.run(params=DEFAULT_PARAMS, workers=2)
    assert _segments() - before  # blocks really live in /dev/shm
    manager.close()  # shuts the pool, unlinks every segment
    assert _segments() == before


# ----------------------------------------------------------------------
# Scatter-gather differential: every query, both layouts
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=["row", "columnar"])
def pooled_smc(request, tpch_tiny):
    collections = load_smc(
        tpch_tiny, columnar=request.param == "columnar", shm=True
    )
    manager = collections["_manager"]
    manager.exec_pool = ProcessScanPool(manager, workers=2)
    yield collections
    manager.close()


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_differential_process_pool(pooled_smc, name):
    """Process-pool scans return exactly the serial in-process rows."""
    manager = pooled_smc["_manager"]
    query = ALL_QUERIES[name](pooled_smc)
    expected = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
    before = manager.stats.extra.get("exec_process_queries", 0)
    got = query.run(params=DEFAULT_PARAMS, workers=2)
    assert _canonical(got) == expected
    # The query really took the process path, not the thread fallback.
    assert manager.stats.extra.get("exec_process_queries", 0) == before + 1


def test_enumeration_falls_back_to_threads(pooled_smc):
    """Plans without a terminal (handle enumeration) stay in-process."""
    manager = pooled_smc["_manager"]
    before = manager.stats.extra.get("exec_thread_queries", 0)
    rows = pooled_smc["region"].query().run(workers=2)
    assert len(list(rows)) == len(pooled_smc["region"])
    assert manager.stats.extra.get("exec_thread_queries", 0) == before + 1


# ----------------------------------------------------------------------
# Mutations, worker death, epoch pins
# ----------------------------------------------------------------------


def _shm_tpch(tpch_tiny, columnar=False):
    collections = load_smc(tpch_tiny, columnar=columnar, shm=True)
    manager = collections["_manager"]
    manager.exec_pool = ProcessScanPool(manager, workers=2)
    return collections, manager


def test_mutation_respawns_workers(tpch_tiny):
    collections, manager = _shm_tpch(tpch_tiny)
    try:
        query = ALL_QUERIES["q1"](collections)
        expected = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
        assert _canonical(query.run(params=DEFAULT_PARAMS, workers=2)) == expected
        fp = manager.exec_pool.fingerprint()
        collections["lineitem"].add(**tpch_tiny.lineitem[0])
        assert manager.exec_pool.fingerprint() != fp
        post = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
        assert _canonical(query.run(params=DEFAULT_PARAMS, workers=2)) == post
        assert manager.stats.extra.get("exec_worker_respawns", 0) >= 1
    finally:
        manager.close()


def test_worker_crash_redispatches_morsels(tpch_tiny):
    """A worker SIGKILLed mid-query is detected; its unacked morsels are
    re-executed in the parent and the result stays byte-identical."""
    from repro import sanitizer

    collections, manager = _shm_tpch(tpch_tiny)
    try:
        query = ALL_QUERIES["q1"](collections)
        expected = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
        # after=0: every participating worker dies on its first morsel,
        # so the parent must recover the entire dispatch set.
        plan = sanitizer.FaultPlan().crash_at("exec.worker", after=0)
        with sanitizer.enabled(manager=manager, faults=plan):
            got = query.run(params=DEFAULT_PARAMS, workers=2)
        assert _canonical(got) == expected
        assert manager.stats.extra.get("exec_morsels_redispatched", 0) >= 1
        # The next query respawns a full complement and still agrees.
        again = query.run(params=DEFAULT_PARAMS, workers=2)
        assert _canonical(again) == expected
        assert manager.exec_pool.alive_workers() == 2
    finally:
        manager.close()


def test_compaction_churn_differential(tpch_tiny):
    """Serial and process-pool scans agree across compaction cycles."""
    collections, manager = _shm_tpch(tpch_tiny)  # row layout: compactable
    try:
        lineitem = collections["lineitem"]
        for i, handle in enumerate(list(lineitem)):
            if i % 3 == 0:
                lineitem.remove(handle)
        for __ in range(2):
            moved = lineitem.compact(occupancy_threshold=0.9)
            assert moved >= 0
            for name in ("q1", "q6", "q14"):
                query = ALL_QUERIES[name](collections)
                want = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
                got = _canonical(query.run(params=DEFAULT_PARAMS, workers=2))
                assert got == want, name
    finally:
        manager.close()


def test_worker_pin_holds_reclamation_epoch(tpch_tiny):
    """A worker's published reader section pins min_active_epoch exactly
    like an in-process critical section would."""
    collections, manager = _shm_tpch(tpch_tiny)
    try:
        pool = manager.exec_pool
        pool._ensure_workers()
        rec = pool._procs[0]
        base = rec["index"] * 4
        pinned = manager.epochs.global_epoch
        # Publish a reader section the way the worker does: payload
        # first, flag last.
        pool._slots[base + 1 : base + 4] = (pinned, rec["pid"], 1)
        pool._slots[base] = 1
        for __ in range(3):
            manager.advance_epoch()
        assert manager.epochs.min_active_epoch() <= pinned
        pool._slots[base] = 0
        manager.advance_epoch()
        assert manager.epochs.min_active_epoch() > pinned
    finally:
        manager.close()


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------


def test_plan_wire_roundtrip_executes(tpch_tiny):
    """An encoded-then-decoded plan runs to the same rows in-process."""
    from repro.query import plansnap
    from repro.query.columnar_exec import build_scan_plan

    collections = load_smc(tpch_tiny, shm=True)
    manager = collections["_manager"]
    try:
        for name in ("q1", "q6", "q12"):
            query = ALL_QUERIES[name](collections)
            expected = _canonical(query.run(params=DEFAULT_PARAMS, workers=1))
            plan, __ = build_scan_plan(query, DEFAULT_PARAMS, prune=True)
            wire = plansnap.encode_plan(manager, plan)
            decoded = plansnap.decode_plan(manager, wire)
            assert decoded.zone_tests == []  # workers never prune
            acc = decoded.make_accumulator()
            probes = decoded.make_probes()
            for block in decoded.source.context.blocks():
                decoded.process_block(block, probes, acc)
            columns, rows = acc.finish(manager)
            assert (tuple(columns), sorted(map(tuple, rows))) == expected, name
    finally:
        manager.close()


def test_pool_requires_shared_buffers(tpch_tiny):
    collections = load_smc(tpch_tiny)  # heap policy
    manager = collections["_manager"]
    try:
        with pytest.raises(ValueError, match="shared-memory"):
            ProcessScanPool(manager, workers=2)
    finally:
        manager.close()


def test_foreign_plan_is_refused(tpch_tiny):
    """A pool never runs a plan built against a different manager."""
    from repro.query.columnar_exec import build_scan_plan

    a = load_smc(tpch_tiny, shm=True)
    b = load_smc(tpch_tiny)
    try:
        pool = ProcessScanPool(a["_manager"], workers=1)
        a["_manager"].exec_pool = pool
        plan, __ = build_scan_plan(
            ALL_QUERIES["q6"](b), DEFAULT_PARAMS, prune=False
        )
        assert run_process_scan(plan, pool) is None
    finally:
        a["_manager"].close()
        b["_manager"].close()
