"""Auto-compaction policy and memory-system introspection."""

import pytest

from repro.core.collection import Collection
from repro.memory.manager import MemoryManager

from tests.schemas import TPerson


def test_auto_compact_threshold_validation(manager):
    with pytest.raises(ValueError):
        Collection(TPerson, manager=manager, auto_compact_occupancy=1.5)


def test_auto_compaction_triggers_on_shrinkage():
    m = MemoryManager(block_shift=10)
    persons = Collection(
        TPerson, manager=m, auto_compact_occupancy=0.4, name="auto"
    )
    handles = []
    while persons.context.block_count() < 8:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    blocks_before = persons.context.block_count()
    keep = set(handles[::10])
    for h in handles:
        if h not in keep:
            persons.remove(h)
    assert m.stats.compactions >= 1
    assert persons.context.block_count() < blocks_before
    assert sorted(h.age for h in persons) == sorted(h.age for h in keep)
    m.close()


def test_no_auto_compaction_by_default():
    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    handles = []
    while persons.context.block_count() < 6:
        handles.append(persons.add(name="x", age=1))
    for h in handles[: len(handles) * 9 // 10]:
        persons.remove(h)
    assert m.stats.compactions == 0
    m.close()


def test_describe_reports_contexts(manager):
    persons = Collection(TPerson, manager=manager, name="people")
    for i in range(10):
        persons.add(name=f"p{i}", age=i)
    persons.remove(next(iter(persons)))
    text = manager.describe()
    assert "MemoryManager" in text
    assert "TPerson" in text or "people" in text
    assert "9 live" in text
    assert "indirection table" in text
    assert "string heap" in text
