"""Shared fixtures: memory managers and session-scoped TPC-H datasets."""

from __future__ import annotations

import pytest

from repro.memory.manager import MemoryManager
from repro.tpch.datagen import generate


@pytest.fixture
def manager():
    m = MemoryManager()
    yield m
    m.close()


@pytest.fixture
def direct_manager():
    m = MemoryManager(direct_pointers=True)
    yield m
    m.close()


@pytest.fixture(scope="session")
def tpch_tiny():
    """~3k lineitems; enough for cross-engine value checks."""
    return generate(0.0005, seed=42)


@pytest.fixture(scope="session")
def tpch_small():
    """~12k lineitems; used by the heavier integration tests."""
    return generate(0.002, seed=42)
