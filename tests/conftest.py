"""Shared fixtures: memory managers and session-scoped TPC-H datasets.

Running ``pytest --sanitize`` wraps every test in the protocol sanitizer
(``repro.sanitizer``): all memory-protocol invariants are checked live and
any violation fails the test with the offending event trace.
"""

from __future__ import annotations

import pytest

from repro.memory.manager import MemoryManager
from repro.tpch.datagen import generate


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every test under the memory-protocol sanitizer",
    )


@pytest.fixture(autouse=True)
def _protocol_sanitizer(request):
    if not request.config.getoption("--sanitize"):
        yield None
        return
    from repro import sanitizer

    with sanitizer.enabled() as san:
        yield san
        san.assert_clean()


@pytest.fixture
def manager():
    m = MemoryManager()
    yield m
    m.close()


@pytest.fixture
def direct_manager():
    m = MemoryManager(direct_pointers=True)
    yield m
    m.close()


@pytest.fixture(scope="session")
def tpch_tiny():
    """~3k lineitems; enough for cross-engine value checks."""
    return generate(0.0005, seed=42)


@pytest.fixture(scope="session")
def tpch_small():
    """~12k lineitems; used by the heavier integration tests."""
    return generate(0.002, seed=42)
