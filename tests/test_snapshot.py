"""Snapshot persistence: save/load roundtrips."""

import datetime
import os
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.io import SnapshotError, load_collections, save_collections
from repro.memory.manager import MemoryManager

from tests.schemas import TEverything, TNode, TNote, TOrder, TPerson


@pytest.fixture
def snap_path(tmp_path):
    return str(tmp_path / "data.smcsnap")


def test_roundtrip_scalars_and_strings(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    notes = Collection(TEverything, manager=manager)
    for i in range(50):
        persons.add(name=f"p{i}", age=i, balance=Decimal(i) / 4)
        notes.add(
            i32=i,
            price=Decimal(i),
            day=datetime.date(2020, 1, 1) + datetime.timedelta(days=i),
            code=f"c{i}",
            memo=f"variable text {i}",
            flag=bool(i % 2),
        )
    written = save_collections(snap_path, {"persons": persons, "notes": notes})
    assert written == 100

    loaded = load_collections(snap_path)
    lp, ln = loaded["persons"], loaded["notes"]
    assert sorted((h.name, h.age, h.balance) for h in lp) == sorted(
        (h.name, h.age, h.balance) for h in persons
    )
    assert sorted((h.i32, h.price, h.day, h.code, h.memo, h.flag) for h in ln) == sorted(
        (h.i32, h.price, h.day, h.code, h.memo, h.flag) for h in notes
    )
    loaded["_manager"].close()


def test_roundtrip_references(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    people = [persons.add(name=f"p{i}", age=i) for i in range(10)]
    for i, p in enumerate(people):
        orders.add(orderkey=i, owner=p, total=Decimal(i))
    orders.add(orderkey=99, owner=None)  # null reference round-trips too

    save_collections(snap_path, {"persons": persons, "orders": orders})
    loaded = load_collections(snap_path)
    lo = sorted(loaded["orders"], key=lambda h: h.orderkey)
    assert lo[-1].owner is None
    for h in lo[:-1]:
        assert h.owner.name == f"p{h.orderkey}"
    loaded["_manager"].close()


def test_roundtrip_self_references(manager, snap_path):
    nodes = Collection(TNode, manager=manager)
    a = nodes.add(value=1)
    b = nodes.add(value=2, next=a)
    a.next = b  # cycle
    save_collections(snap_path, {"nodes": nodes})
    loaded = load_collections(snap_path)
    ln = sorted(loaded["nodes"], key=lambda h: h.value)
    assert ln[0].next.value == 2
    assert ln[1].next.value == 1
    loaded["_manager"].close()


def test_load_into_columnar(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    for i in range(20):
        persons.add(name=f"p{i}", age=i)
    save_collections(snap_path, {"persons": persons})
    loaded = load_collections(snap_path, columnar=True)
    from repro.core.columnar import ColumnarCollection

    assert isinstance(loaded["persons"], ColumnarCollection)
    assert sorted(h.age for h in loaded["persons"]) == list(range(20))
    loaded["_manager"].close()


def test_reference_outside_snapshot_rejected(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    orders.add(orderkey=1, owner=persons.add(name="x", age=1))
    with pytest.raises(SnapshotError):
        save_collections(snap_path, {"orders": orders})  # persons missing


def test_bad_magic_rejected(snap_path):
    with open(snap_path, "wb") as fh:
        fh.write(b"NOTASNAP")
    with pytest.raises(SnapshotError):
        load_collections(snap_path)


def test_truncated_file_rejected(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    save_collections(snap_path, {"persons": persons})
    data = open(snap_path, "rb").read()
    with open(snap_path, "wb") as fh:
        fh.write(data[: len(data) - 5])
    with pytest.raises(SnapshotError):
        load_collections(snap_path)


def test_underscore_keys_skipped(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    save_collections(snap_path, {"persons": persons, "_manager": manager})
    loaded = load_collections(snap_path)
    assert set(k for k in loaded if not k.startswith("_")) == {"persons"}
    loaded["_manager"].close()


def test_tpch_snapshot_roundtrip(tpch_tiny, tmp_path):
    """End-to-end: snapshot a loaded TPC-H database, reload, re-run Q5."""
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

    src = load_smc(tpch_tiny)
    path = str(tmp_path / "tpch.smcsnap")
    save_collections(path, src)
    loaded = load_collections(path)
    before = sorted(QUERIES["q5"](src).run(params=DEFAULT_PARAMS).rows)
    after = sorted(QUERIES["q5"](loaded).run(params=DEFAULT_PARAMS).rows)
    assert before == after
    loaded["_manager"].close()


def test_dict_varstring_roundtrip_after_compaction(snap_path):
    """Dict-encoded varstring columns survive save/load after compaction.

    Compaction relocates slots holding dictionary codes and the snapshot
    writer stores decoded text; this pins the full pipeline: intern,
    churn (so codes enter and leave the dictionary), compact, save,
    reload with dict encoding on *and* off.  Small blocks force the rows
    across several blocks so compaction really relocates.
    """
    manager = MemoryManager(block_shift=10, reclamation_threshold=0.99)
    assert manager.string_dict
    notes = Collection(TNote, manager=manager)
    handles = []
    for i in range(400):
        handles.append(notes.add(text=f"tag-{i % 7}", stars=i % 5))
    # Remove most of a prefix so compaction has something to relocate and
    # several dictionary codes drop to zero refcount.
    for h in handles[:300]:
        notes.remove(h)
    for __ in range(4):
        manager.advance_epoch()
    moved = notes.compact(occupancy_threshold=0.9)
    assert moved > 0
    expected = sorted((h.text, h.stars) for h in notes)
    assert len(expected) == 100

    save_collections(snap_path, {"notes": notes})

    loaded = load_collections(snap_path, string_dict=True)
    ln = loaded["notes"]
    assert ln.strdict is not None
    assert sorted((h.text, h.stars) for h in ln) == expected
    # Distinct count reflects only surviving strings.
    assert ln.strdict.live_count == len({t for t, __ in expected})
    loaded["_manager"].close()

    plain = load_collections(snap_path, string_dict=False)
    lp = plain["notes"]
    assert lp.strdict is None
    assert sorted((h.text, h.stars) for h in lp) == expected
    plain["_manager"].close()
    manager.close()

def test_indexes_survive_roundtrip(manager, snap_path):
    """Regression: loaded collections used to come back with no indexes.

    ``save_collections`` now records every ``index_specs()`` entry in a
    trailing section and the loader re-creates (and re-populates) them,
    so queries that rely on index acceleration keep working — and stay
    *correct* as post-load mutations update live indexes instead of
    silently missing ones.
    """
    persons = Collection(TPerson, manager=manager)
    persons.create_index("age")
    persons.create_sorted_index("name")
    for i in range(30):
        persons.add(name=f"p{i:02d}", age=i % 3)

    save_collections(snap_path, {"persons": persons})
    loaded = load_collections(snap_path)
    lp = loaded["persons"]

    assert lp.index_specs() == [("age", "hash"), ("name", "sorted")]
    hash_index, sorted_index = lp._indexes
    assert len(hash_index.get(1)) == 10
    assert [h.name for h in sorted_index.range("p00", "p04")] == [
        "p00",
        "p01",
        "p02",
        "p03",
        "p04",
    ]
    # The re-created indexes are live, not a frozen copy.
    lp.add(name="zz", age=1)
    assert len(hash_index.get(1)) == 11
    loaded["_manager"].close()


def test_old_snapshot_without_index_section_loads(manager, snap_path):
    """Pre-index snapshot files (no trailing section) still load."""
    persons = Collection(TPerson, manager=manager)
    persons.create_index("age")
    persons.add(name="x", age=1)
    save_collections(snap_path, {"persons": persons})
    # Strip the trailing index section: u32 count + one (collection,
    # field, kind) entry, each string u32-length-prefixed.
    data = open(snap_path, "rb").read()
    entry_len = sum(4 + len(s) for s in (b"persons", b"age", b"hash"))
    with open(snap_path, "wb") as fh:
        fh.write(data[: len(data) - 4 - entry_len])
    loaded = load_collections(snap_path)
    assert loaded["persons"].index_specs() == []
    assert [h.age for h in loaded["persons"]] == [1]
    loaded["_manager"].close()


# ----------------------------------------------------------------------
# Property-based roundtrip (hypothesis)
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

# CharField stores fixed-width bytes padded with NULs and the loader
# rstrips trailing NUL/space, so generated codes must be ASCII with no
# trailing whitespace.  VarStrings take arbitrary text (no surrogates).
_codes = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=10
)
_memos = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FFF
    ),
    max_size=24,
)
_decimals2 = st.decimals(
    min_value=-10**6, max_value=10**6, places=2, allow_nan=False
)
_decimals4 = st.decimals(
    min_value=-10**4, max_value=10**4, places=4, allow_nan=False
)
_dates = st.dates(
    min_value=datetime.date(1970, 1, 1), max_value=datetime.date(2200, 1, 1)
)

_everything_rows = st.lists(
    st.fixed_dictionaries(
        {
            "i8": st.integers(-128, 127),
            "i16": st.integers(-(2**15), 2**15 - 1),
            "i32": st.integers(-(2**31), 2**31 - 1),
            "i64": st.integers(-(2**63), 2**63 - 1),
            "flag": st.booleans(),
            "ratio": st.floats(allow_nan=False, allow_infinity=False, width=64),
            "price": _decimals2,
            "fine": _decimals4,
            "day": _dates,
            "code": _codes,
            "memo": _memos,
        }
    ),
    max_size=30,
)

_node_specs = st.lists(
    st.tuples(st.integers(-(2**31), 2**31 - 1), st.integers(0, 40)),
    max_size=20,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=_everything_rows,
    node_specs=_node_specs,
    friend_of=st.lists(st.integers(0, 40), max_size=30),
    use_dict=st.booleans(),
)
def test_snapshot_roundtrip_property(rows, node_specs, friend_of, use_dict):
    """SMCSNAP1 round-trips arbitrary rows: every field kind, null and
    cyclic references, dict-encoded varstrings."""
    import tempfile

    manager = MemoryManager(string_dict=use_dict)
    tmp = tempfile.TemporaryDirectory(prefix="smcsnap-prop-")
    path = os.path.join(tmp.name, "prop.smcsnap")
    try:
        persons = Collection(TPerson, manager=manager)
        every = Collection(TEverything, manager=manager)
        nodes = Collection(TNode, manager=manager)
        people = [
            persons.add(name=f"p{i}", age=i)
            for i in range(max(friend_of, default=-1) + 1)
        ]
        for i, row in enumerate(rows):
            friend = None
            if i < len(friend_of) and people:
                friend = people[friend_of[i] % len(people)]
            every.add(friend=friend, **row)
        made = [nodes.add(value=value) for value, __ in node_specs]
        for handle, (__, nxt) in zip(made, node_specs):
            if made:
                handle.next = made[nxt % len(made)]  # cycles welcome

        expected_every = sorted((
            (
                h.i8, h.i16, h.i32, h.i64, h.flag, h.ratio, h.price,
                h.fine, h.day, h.code, h.memo,
                None if h.friend is None else h.friend.name,
            )
            for h in every
        ), key=repr)
        expected_nodes = sorted(
            ((h.value, None if h.next is None else h.next.value) for h in nodes),
            key=repr,
        )
        save_collections(
            path, {"persons": persons, "every": every, "nodes": nodes}
        )

        loaded = load_collections(path, string_dict=use_dict)
        got_every = sorted((
            (
                h.i8, h.i16, h.i32, h.i64, h.flag, h.ratio, h.price,
                h.fine, h.day, h.code, h.memo,
                None if h.friend is None else h.friend.name,
            )
            for h in loaded["every"]
        ), key=repr)
        got_nodes = sorted(
            (
                (h.value, None if h.next is None else h.next.value)
                for h in loaded["nodes"]
            ),
            key=repr,
        )
        assert got_every == expected_every
        assert got_nodes == expected_nodes
        loaded["_manager"].close()
    finally:
        manager.close()
        tmp.cleanup()
