"""Snapshot persistence: save/load roundtrips."""

import datetime
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.io import SnapshotError, load_collections, save_collections
from repro.memory.manager import MemoryManager

from tests.schemas import TEverything, TNode, TNote, TOrder, TPerson


@pytest.fixture
def snap_path(tmp_path):
    return str(tmp_path / "data.smcsnap")


def test_roundtrip_scalars_and_strings(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    notes = Collection(TEverything, manager=manager)
    for i in range(50):
        persons.add(name=f"p{i}", age=i, balance=Decimal(i) / 4)
        notes.add(
            i32=i,
            price=Decimal(i),
            day=datetime.date(2020, 1, 1) + datetime.timedelta(days=i),
            code=f"c{i}",
            memo=f"variable text {i}",
            flag=bool(i % 2),
        )
    written = save_collections(snap_path, {"persons": persons, "notes": notes})
    assert written == 100

    loaded = load_collections(snap_path)
    lp, ln = loaded["persons"], loaded["notes"]
    assert sorted((h.name, h.age, h.balance) for h in lp) == sorted(
        (h.name, h.age, h.balance) for h in persons
    )
    assert sorted((h.i32, h.price, h.day, h.code, h.memo, h.flag) for h in ln) == sorted(
        (h.i32, h.price, h.day, h.code, h.memo, h.flag) for h in notes
    )
    loaded["_manager"].close()


def test_roundtrip_references(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    people = [persons.add(name=f"p{i}", age=i) for i in range(10)]
    for i, p in enumerate(people):
        orders.add(orderkey=i, owner=p, total=Decimal(i))
    orders.add(orderkey=99, owner=None)  # null reference round-trips too

    save_collections(snap_path, {"persons": persons, "orders": orders})
    loaded = load_collections(snap_path)
    lo = sorted(loaded["orders"], key=lambda h: h.orderkey)
    assert lo[-1].owner is None
    for h in lo[:-1]:
        assert h.owner.name == f"p{h.orderkey}"
    loaded["_manager"].close()


def test_roundtrip_self_references(manager, snap_path):
    nodes = Collection(TNode, manager=manager)
    a = nodes.add(value=1)
    b = nodes.add(value=2, next=a)
    a.next = b  # cycle
    save_collections(snap_path, {"nodes": nodes})
    loaded = load_collections(snap_path)
    ln = sorted(loaded["nodes"], key=lambda h: h.value)
    assert ln[0].next.value == 2
    assert ln[1].next.value == 1
    loaded["_manager"].close()


def test_load_into_columnar(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    for i in range(20):
        persons.add(name=f"p{i}", age=i)
    save_collections(snap_path, {"persons": persons})
    loaded = load_collections(snap_path, columnar=True)
    from repro.core.columnar import ColumnarCollection

    assert isinstance(loaded["persons"], ColumnarCollection)
    assert sorted(h.age for h in loaded["persons"]) == list(range(20))
    loaded["_manager"].close()


def test_reference_outside_snapshot_rejected(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    orders.add(orderkey=1, owner=persons.add(name="x", age=1))
    with pytest.raises(SnapshotError):
        save_collections(snap_path, {"orders": orders})  # persons missing


def test_bad_magic_rejected(snap_path):
    with open(snap_path, "wb") as fh:
        fh.write(b"NOTASNAP")
    with pytest.raises(SnapshotError):
        load_collections(snap_path)


def test_truncated_file_rejected(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    save_collections(snap_path, {"persons": persons})
    data = open(snap_path, "rb").read()
    with open(snap_path, "wb") as fh:
        fh.write(data[: len(data) - 5])
    with pytest.raises(SnapshotError):
        load_collections(snap_path)


def test_underscore_keys_skipped(manager, snap_path):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    save_collections(snap_path, {"persons": persons, "_manager": manager})
    loaded = load_collections(snap_path)
    assert set(k for k in loaded if not k.startswith("_")) == {"persons"}
    loaded["_manager"].close()


def test_tpch_snapshot_roundtrip(tpch_tiny, tmp_path):
    """End-to-end: snapshot a loaded TPC-H database, reload, re-run Q5."""
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

    src = load_smc(tpch_tiny)
    path = str(tmp_path / "tpch.smcsnap")
    save_collections(path, src)
    loaded = load_collections(path)
    before = sorted(QUERIES["q5"](src).run(params=DEFAULT_PARAMS).rows)
    after = sorted(QUERIES["q5"](loaded).run(params=DEFAULT_PARAMS).rows)
    assert before == after
    loaded["_manager"].close()


def test_dict_varstring_roundtrip_after_compaction(snap_path):
    """Dict-encoded varstring columns survive save/load after compaction.

    Compaction relocates slots holding dictionary codes and the snapshot
    writer stores decoded text; this pins the full pipeline: intern,
    churn (so codes enter and leave the dictionary), compact, save,
    reload with dict encoding on *and* off.  Small blocks force the rows
    across several blocks so compaction really relocates.
    """
    manager = MemoryManager(block_shift=10, reclamation_threshold=0.99)
    assert manager.string_dict
    notes = Collection(TNote, manager=manager)
    handles = []
    for i in range(400):
        handles.append(notes.add(text=f"tag-{i % 7}", stars=i % 5))
    # Remove most of a prefix so compaction has something to relocate and
    # several dictionary codes drop to zero refcount.
    for h in handles[:300]:
        notes.remove(h)
    for __ in range(4):
        manager.advance_epoch()
    moved = notes.compact(occupancy_threshold=0.9)
    assert moved > 0
    expected = sorted((h.text, h.stars) for h in notes)
    assert len(expected) == 100

    save_collections(snap_path, {"notes": notes})

    loaded = load_collections(snap_path, string_dict=True)
    ln = loaded["notes"]
    assert ln.strdict is not None
    assert sorted((h.text, h.stars) for h in ln) == expected
    # Distinct count reflects only surviving strings.
    assert ln.strdict.live_count == len({t for t, __ in expected})
    loaded["_manager"].close()

    plain = load_collections(snap_path, string_dict=False)
    lp = plain["notes"]
    assert lp.strdict is None
    assert sorted((h.text, h.stars) for h in lp) == expected
    plain["_manager"].close()
    manager.close()
