"""Direct pointers between SMCs (paper section 6)."""

import pytest

from repro.core.collection import Collection
from repro.errors import NullReferenceError
from repro.memory.indirection import FORWARD
from repro.memory.manager import MemoryManager

from tests.schemas import TOrder, TPerson


@pytest.fixture
def world(direct_manager):
    persons = Collection(TPerson, manager=direct_manager)
    orders = Collection(TOrder, manager=direct_manager)
    return direct_manager, persons, orders


def test_ref_field_stores_raw_address(world):
    m, persons, orders = world
    p = persons.add(name="A", age=1)
    o = orders.add(orderkey=1, owner=p)
    addr = o.ref.address()
    block = m.space.block_at(addr)
    off = m.space.offset_of(addr)
    field = orders.layout.by_name["owner"]
    word, inc = field.decode_words(block.buf, off + field.offset)
    assert word == p.ref.address()


def test_navigation_checks_slot_incarnation(world):
    m, persons, orders = world
    p = persons.add(name="A", age=1)
    o = orders.add(orderkey=1, owner=p)
    assert o.owner.name == "A"
    persons.remove(p)
    with pytest.raises(NullReferenceError):
        __ = o.owner.name


def test_slot_reuse_does_not_resurrect_direct_pointer():
    m = MemoryManager(block_shift=10, direct_pointers=True)
    persons = Collection(TPerson, manager=m)
    orders = Collection(TOrder, manager=m)
    p = persons.add(name="victim", age=1)
    o = orders.add(orderkey=1, owner=p)
    old_addr = p.ref.address()
    persons.remove(p)
    # Recycle until an object lands on the victim's slot (allocations
    # advance the epoch and drain the reclamation queue on their own).
    for i in range(2000):
        fresh = persons.add(name=f"f{i}", age=i)
        if fresh.ref.address() == old_addr:
            break
    else:
        pytest.fail("slot was never recycled")
    with pytest.raises(NullReferenceError):
        __ = o.owner.name
    m.close()


def test_compaction_leaves_forward_tombstones(world):
    m, persons, orders = world
    small = MemoryManager(block_shift=10, direct_pointers=True)
    persons = Collection(TPerson, manager=small)
    orders = Collection(TOrder, manager=small)
    handles = []
    while persons.context.block_count() < 4:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    keep = handles[::4]
    order_handles = [orders.add(orderkey=i, owner=h) for i, h in enumerate(keep)]
    old_addrs = [h.ref.address() for h in keep]
    old_blocks = [small.space.block_at(a) for a in old_addrs]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    moved = persons.compact(occupancy_threshold=0.9)
    assert moved > 0
    # Moved sources carry the FORWARD flag in their slot headers.
    forwards = 0
    for blk, addr in zip(old_blocks, old_addrs):
        slot = blk.slot_of_address(addr)
        if int(blk.slot_incs[slot]) & FORWARD:
            forwards += 1
    assert forwards > 0
    # Navigation still reaches every kept person (healed or rewritten).
    for i, o in enumerate(order_handles):
        assert o.owner.name == keep[i].name
    small.close()


def test_pointer_rewrite_after_compaction(world):
    """After the post-compaction scan, in-row words point at new slots."""
    small = MemoryManager(block_shift=10, direct_pointers=True)
    persons = Collection(TPerson, manager=small)
    orders = Collection(TOrder, manager=small)
    handles = []
    while persons.context.block_count() < 4:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    keep = handles[::4]
    order_handles = [orders.add(orderkey=i, owner=h) for i, h in enumerate(keep)]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    persons.compact(occupancy_threshold=0.9)
    field = orders.layout.by_name["owner"]
    for i, o in enumerate(order_handles):
        addr = o.ref.address()
        block = small.space.block_at(addr)
        off = small.space.offset_of(addr)
        word, inc = field.decode_words(block.buf, off + field.offset)
        # Word must equal the owner's *current* address (not a tombstone).
        assert word == keep[i].ref.address()
    small.close()


def test_direct_mode_self_reference(direct_manager):
    from tests.schemas import TNode

    nodes = Collection(TNode, manager=direct_manager)
    tail = nodes.add(value=2)
    head = nodes.add(value=1, next=tail)
    assert head.next.value == 2
    nodes.remove(tail)
    with pytest.raises(NullReferenceError):
        __ = head.next.value


def test_compiled_query_navigation_direct(direct_manager):
    from repro.query.expressions import param

    persons = Collection(TPerson, manager=direct_manager)
    orders = Collection(TOrder, manager=direct_manager)
    people = [persons.add(name=f"p{i}", age=i) for i in range(50)]
    for i, p in enumerate(people):
        orders.add(orderkey=i, owner=p)
    q = orders.query().where(TOrder.owner.ref("age") >= param("lo")).select(
        okey=TOrder.orderkey
    )
    got = sorted(q.run(lo=40).column("okey"))
    assert got == list(range(40, 50))
    # Matches the interpreter.
    assert sorted(q.run(engine="interpreted", lo=40).column("okey")) == got
