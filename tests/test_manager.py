"""Memory manager: allocation, free, limbo reclamation, block pooling."""

import pytest

from repro.errors import ConcurrencyProtocolError, NullReferenceError
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.manager import MemoryManager
from repro.memory.slots import LIMBO, VALID


@pytest.fixture
def ctx(manager):
    return manager.create_context(slot_size=48, type_name="T")


def test_type_ids_are_interned(manager):
    a = manager.type_id_for("X")
    assert manager.type_id_for("X") == a
    assert manager.type_id_for("Y") != a


def test_allocate_returns_live_ref(manager, ctx):
    block, slot, ref = manager.allocate_object(ctx)
    assert block.state_of(slot) == VALID
    assert ref.is_alive
    assert ref.address() == block.slot_address(slot)
    assert int(block.backptrs[slot]) == ref.entry


def test_free_nulls_reference(manager, ctx):
    __, __, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    assert not ref.is_alive
    with pytest.raises(NullReferenceError):
        ref.address()


def test_double_free_raises(manager, ctx):
    __, __, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    with pytest.raises(NullReferenceError):
        manager.free_object(ref)


def test_free_moves_slot_to_limbo(manager, ctx):
    block, slot, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    assert block.state_of(slot) == LIMBO
    assert ctx.live_count == 0


def test_free_bumps_slot_header_incarnation(manager, ctx):
    block, slot, ref = manager.allocate_object(ctx)
    before = int(block.slot_incs[slot])
    manager.free_object(ref)
    assert int(block.slot_incs[slot]) == before + 1


def test_free_defers_entry_recycling_by_two_epochs(manager, ctx):
    """The entry's pointer survives the free (grace-period readers may
    still follow it); the entry is recycled two epochs later."""
    block, slot, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    # Immediately after the free the pointer is intact and the entry is
    # not yet reusable.
    assert manager.table.address_of(ref.entry) == block.slot_address(slot)
    assert manager.table.free_count == 0
    manager.advance_epoch()
    manager.advance_epoch()
    manager.allocate_object(ctx)  # allocation drains retired entries
    assert manager.table.address_of(ref.entry) == NULL_ADDRESS or (
        manager.table.address_of(ref.entry) != block.slot_address(slot)
    )


def test_limbo_slot_reused_after_two_epochs(manager):
    # Small blocks force the allocator to face the limbo slots quickly.
    small = MemoryManager(block_shift=10, reclamation_threshold=0.01)
    ctx = small.create_context(slot_size=48, type_name="T")
    refs = [small.allocate_object(ctx)[2] for __ in range(200)]
    blocks = ctx.block_count()
    for ref in refs:
        small.free_object(ref)
    # Allocations drive epoch advancement and reclaim the queued blocks.
    for __ in range(200):
        small.allocate_object(ctx)
    assert ctx.block_count() <= blocks + 1
    assert small.stats.limbo_reuses > 0 or small.stats.blocks_recycled > 0
    small.close()


def test_stats_counters(manager, ctx):
    __, __, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    assert manager.stats.allocations == 1
    assert manager.stats.frees == 1
    assert manager.stats.blocks_allocated == 1


def test_block_pooling_across_contexts(manager):
    c1 = manager.create_context(slot_size=48, type_name="A")
    manager.allocate_object(c1)
    c1.close()
    c2 = manager.create_context(slot_size=48, type_name="B")
    manager.allocate_object(c2)
    assert manager.stats.blocks_pooled == 1
    assert manager.stats.blocks_allocated == 1


def test_reclamation_threshold_validation():
    with pytest.raises(ValueError):
        MemoryManager(reclamation_threshold=1.5)


def test_closed_manager_rejects_operations(ctx, manager):
    manager.close()
    with pytest.raises(ConcurrencyProtocolError):
        manager.allocate_object(ctx)


def test_close_is_idempotent(manager):
    manager.close()
    manager.close()


def test_context_manager_protocol():
    with MemoryManager() as m:
        ctx = m.create_context(slot_size=48, type_name="T")
        m.allocate_object(ctx)
    with pytest.raises(ConcurrencyProtocolError):
        m.allocate_object(ctx)


def test_total_bytes_counts_blocks(manager, ctx):
    assert manager.total_bytes() == 0
    manager.allocate_object(ctx)
    assert manager.total_bytes() == manager.space.block_size


def test_advance_epoch_helper(manager):
    e = manager.epochs.global_epoch
    assert manager.advance_epoch()
    assert manager.epochs.global_epoch == e + 1
    assert manager.stats.epoch_advances == 1


def test_ref_equality_and_hash(manager, ctx):
    __, __, ref = manager.allocate_object(ctx)
    from repro.memory.reference import Ref

    clone = Ref(manager, ref.entry, ref.inc)
    assert ref == clone
    assert hash(ref) == hash(clone)
    __, __, other = manager.allocate_object(ctx)
    assert ref != other


def test_stale_ref_against_reused_entry(manager, ctx):
    """A recycled indirection entry must not resurrect old references."""
    __, __, ref = manager.allocate_object(ctx)
    manager.free_object(ref)
    manager.advance_epoch()
    manager.advance_epoch()
    # Reuse the same entry for a fresh object (drained at allocation).
    __, __, fresh = manager.allocate_object(ctx)
    assert fresh.entry == ref.entry
    assert fresh.is_alive
    with pytest.raises(NullReferenceError):
        ref.address()


def test_try_address(manager, ctx):
    __, __, ref = manager.allocate_object(ctx)
    assert ref.try_address() is not None
    manager.free_object(ref)
    assert ref.try_address() is None
