"""Compaction protocol (paper section 5)."""

import threading
import time

import pytest

from repro.core.collection import Collection
from repro.core.compaction import Compactor, DONE, FAILED, PENDING
from repro.errors import ConcurrencyProtocolError, NullReferenceError
from repro.memory.manager import MemoryManager

from tests.schemas import TPerson


def _make_worn_collection(block_shift=10, live_per_block=3, blocks=6):
    """A collection with several under-occupied blocks."""
    m = MemoryManager(block_shift=block_shift, reclamation_threshold=0.99)
    persons = Collection(TPerson, manager=m)
    handles = []
    while persons.context.block_count() < blocks + 1:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    # Thin out every block except a few survivors.
    survivors = []
    per_block = {}
    for h in handles:
        blk = m.space.block_at(h.ref.address())
        kept = per_block.setdefault(blk.block_id, [])
        if len(kept) < live_per_block:
            kept.append(h)
            survivors.append(h)
        else:
            persons.remove(h)
    return m, persons, survivors


def test_compaction_reduces_block_count():
    m, persons, survivors = _make_worn_collection()
    before_blocks = persons.context.block_count()
    before = sorted((h.name, h.age) for h in survivors)
    moved = persons.compact(occupancy_threshold=0.5)
    assert moved > 0
    assert persons.context.block_count() < before_blocks
    assert m.stats.compactions == 1
    # Every survivor stays reachable through its old handle.
    after = sorted((h.name, h.age) for h in survivors)
    assert after == before
    m.close()


def test_compaction_preserves_enumeration():
    m, persons, survivors = _make_worn_collection()
    persons.compact(occupancy_threshold=0.5)
    assert sorted(h.age for h in persons) == sorted(h.age for h in survivors)
    assert len(persons) == len(survivors)
    m.close()


def test_compaction_noop_when_occupancy_high():
    m = MemoryManager()
    persons = Collection(TPerson, manager=m)
    for i in range(10):
        persons.add(name=f"p{i}", age=i)
    assert persons.compact(occupancy_threshold=0.0) == 0
    m.close()


def test_compaction_emptied_blocks_returned_to_pool():
    m, persons, survivors = _make_worn_collection()
    persons.compact(occupancy_threshold=0.5)
    compactor = Compactor(m)
    # Retired blocks become releasable two epochs later.
    m.advance_epoch()
    m.advance_epoch()
    compactor.detach()
    assert m.stats.blocks_pooled >= 0  # pool path exercised on next acquire


def test_epoch_advances_through_cycle():
    m, persons, __ = _make_worn_collection()
    e = m.epochs.global_epoch
    persons.compact(occupancy_threshold=0.5)
    # freezing (e+1), relocation (e+2), exit (e+3)
    assert m.epochs.global_epoch >= e + 3
    assert m.next_relocation_epoch is None
    assert not m.in_moving_phase
    m.close()


def test_compaction_with_references_from_other_collection():
    from tests.schemas import TOrder

    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    orders = Collection(TOrder, manager=m)
    handles = []
    while persons.context.block_count() < 4:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    keep = handles[:: len(handles) // 8 or 1]
    order_handles = [
        orders.add(orderkey=i, owner=h) for i, h in enumerate(keep)
    ]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    persons.compact(occupancy_threshold=0.9)
    # Indirection keeps references valid across relocation (section 5.1).
    for i, o in enumerate(order_handles):
        assert o.owner.name == keep[i].name
    m.close()


def test_removed_objects_stay_null_after_compaction():
    m, persons, survivors = _make_worn_collection()
    victim = survivors[0]
    persons.remove(victim)
    persons.compact(occupancy_threshold=0.5)
    with pytest.raises(NullReferenceError):
        __ = victim.name
    m.close()


def test_two_compactions_in_sequence():
    m, persons, survivors = _make_worn_collection(blocks=8)
    persons.compact(occupancy_threshold=0.5)
    for h in list(persons)[::2]:
        persons.remove(h)
    moved = persons.compact(occupancy_threshold=0.9)
    assert len(persons) > 0
    assert sorted(h.age for h in persons) == sorted(
        h.age for h in survivors if h.is_alive
    )
    m.close()


def test_only_one_compactor_per_manager():
    m = MemoryManager()
    c = Compactor(m)
    with pytest.raises(ConcurrencyProtocolError):
        Compactor(m)
    c.detach()
    c2 = Compactor(m)
    c2.detach()
    m.close()


def test_reader_in_critical_section_bails_relocation():
    """A reader holding the group's pre-state pins it; the compactor
    times out and fails the group rather than move under the reader."""
    m, persons, survivors = _make_worn_collection(blocks=4)
    compactor = Compactor(m)
    groups = compactor._plan_groups(persons.context, 0.5)
    assert groups
    group = groups[0]
    assert group.try_pin_prestate()
    try:
        # Compactor must give up on this group after its timeout.
        import repro.core.compaction as comp

        old = comp._READER_WAIT_TIMEOUT
        comp._READER_WAIT_TIMEOUT = 0.05
        try:
            moved = compactor._run_cycle(persons.context, groups)
        finally:
            comp._READER_WAIT_TIMEOUT = old
    finally:
        group.unpin_prestate()
        compactor.detach()
    assert group.failed
    # Data remains intact and reachable.
    assert sorted(h.age for h in persons) == sorted(h.age for h in survivors)
    m.close()


def test_concurrent_readers_during_compaction():
    """Readers hammer handles while a compaction cycle runs."""
    m, persons, survivors = _make_worn_collection(blocks=8)
    expected = sorted(h.age for h in survivors)
    errors = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            try:
                with m.critical_section():
                    ages = sorted(h.age for h in survivors)
                if ages != expected:
                    errors.append(ages)
            except NullReferenceError as exc:  # pragma: no cover
                errors.append(exc)

    threads = [threading.Thread(target=reader) for __ in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.02)
    moved = persons.compact(occupancy_threshold=0.5)
    time.sleep(0.05)
    stop.set()
    for t in threads:
        t.join()
    assert not errors
    assert moved >= 0
    assert sorted(h.age for h in persons) == expected
    m.close()


def test_relocation_item_states():
    assert PENDING != FAILED != DONE
