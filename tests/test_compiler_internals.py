"""Compiler internals: scaled-decimal algebra, caching, ablation flavour."""

import datetime
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.query.builder import Count, Sum
from repro.query.compiler import (
    _decimal_raw,
    _to_raw,
    clear_cache,
    compiled_source,
    get_compiled,
)
from repro.query.expressions import param

from tests.schemas import TEverything, TPerson


@pytest.fixture
def rows(manager):
    coll = Collection(TEverything, manager=manager)
    Collection(TPerson, manager=manager)
    for i in range(50):
        coll.add(
            i32=i,
            i64=i * 1000,
            price=Decimal(i) / 2,
            fine=Decimal(i) / 16,
            ratio=i / 3,
            day=datetime.date(2020, 1, 1) + datetime.timedelta(days=i),
            code=f"c{i % 4}",
            memo=f"memo {i}",
            flag=bool(i % 2),
        )
    return coll


def _both(q, **params):
    a = q.run(engine="compiled", params=params).rows
    b = q.run(engine="interpreted", params=params).rows
    return sorted(a, key=repr), sorted(b, key=repr)


def test_decimal_times_decimal_scale_sum(rows):
    # price (scale 2) * fine (scale 4) -> scale 6 in raw algebra.
    q = rows.query().aggregate(v=Sum(TEverything.price * TEverything.fine))
    compiled, interp = _both(q)
    assert float(compiled[0][0]) == pytest.approx(float(interp[0][0]))


def test_decimal_plus_int_alignment(rows):
    q = rows.query().where(TEverything.price + 1 > Decimal("20")).aggregate(
        n=Count()
    )
    compiled, interp = _both(q)
    assert compiled == interp


def test_decimal_division_goes_float(rows):
    q = rows.query().where(TEverything.price / 2 > 5).aggregate(n=Count())
    compiled, interp = _both(q)
    assert compiled[0][0] == interp[0][0]


def test_date_param_conversion(rows):
    q = rows.query().where(TEverything.day >= param("d")).aggregate(n=Count())
    compiled, interp = _both(q, d=datetime.date(2020, 2, 1))
    assert compiled == interp
    assert compiled[0][0] == 19


def test_char_param_conversion(rows):
    q = rows.query().where(TEverything.code == param("c")).aggregate(n=Count())
    compiled, interp = _both(q, c="c1")
    assert compiled == interp


def test_varstring_predicate(rows):
    q = rows.query().where(TEverything.memo.contains("4")).select(
        memo=TEverything.memo
    )
    compiled, interp = _both(q)
    assert compiled == interp
    assert any("4" in m[0] for m in compiled)


def test_bool_field_roundtrip(rows):
    q = rows.query().where(TEverything.flag == True).aggregate(n=Count())  # noqa: E712
    compiled, interp = _both(q)
    assert compiled[0][0] == 25


def test_float_arithmetic(rows):
    q = rows.query().aggregate(v=Sum(TEverything.ratio * 2))
    compiled, interp = _both(q)
    assert compiled[0][0] == pytest.approx(interp[0][0])


def test_scalar_ablation_flavor_agrees(rows):
    q = (
        rows.query()
        .where(TEverything.i32 >= param("lo"))
        .group_by(code=TEverything.code)
        .aggregate(total=Sum(TEverything.price), n=Count())
        .order_by("code")
    )
    vectorised = q.run(params={"lo": 10}).rows
    scalar = q.run(flavor="smc-unsafe-scalar", params={"lo": 10}).rows
    assert scalar == vectorised


def test_scalar_flavor_source_contains_struct_calls(rows):
    q = rows.query().where(TEverything.i32 > 1).select(v=TEverything.i32)
    src = compiled_source(q, "smc-unsafe")
    assert "_u_i(" in src or "unpack" in src  # raw struct reads
    assert "enter_critical_section" in src


def test_cache_distinguishes_flavors(rows):
    q = rows.query().select(v=TEverything.i32)
    a = get_compiled(q, "smc-unsafe")
    b = get_compiled(q, "smc-safe")
    assert a is not b
    assert get_compiled(q, "smc-safe") is b


def test_cache_distinguishes_query_structure(rows):
    q1 = rows.query().where(TEverything.i32 > 1).select(v=TEverything.i32)
    q2 = rows.query().where(TEverything.i32 > 2).select(v=TEverything.i32)
    assert get_compiled(q1, "smc-safe") is not get_compiled(q2, "smc-safe")


def test_param_does_not_change_cache_identity(rows):
    q = rows.query().where(TEverything.i32 > param("x")).select(v=TEverything.i32)
    before = get_compiled(q, "smc-safe")
    q.run(flavor="smc-safe", x=10)
    q.run(flavor="smc-safe", x=40)
    assert get_compiled(q, "smc-safe") is before


def test_clear_cache(rows):
    q = rows.query().select(v=TEverything.i32)
    a = get_compiled(q, "smc-safe")
    clear_cache()
    assert get_compiled(q, "smc-safe") is not a


def test_decimal_raw_helper():
    assert _decimal_raw(Decimal("1.25"), 2) == 125
    assert _decimal_raw(3, 2) == 300
    assert _decimal_raw(1.5, 2) == 150
    assert _decimal_raw("0.07", 2) == 7


def test_to_raw_helper():
    assert _to_raw(datetime.date(1970, 1, 2), ("date", None)) == 1
    assert _to_raw(Decimal("2.50"), ("decimal", 2)) == 250
    assert _to_raw("ab", ("str", 4)) == b"ab\x00\x00"
    assert _to_raw(7, ("int", None)) == 7
