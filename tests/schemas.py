"""Tabular classes shared across test modules.

Defined once: the tabular registry is keyed by class name, so re-defining
the same names in several modules would silently re-wire reference
targets between test files.
"""

from __future__ import annotations

from repro.schema import (
    BoolField,
    CharField,
    DateField,
    DecimalField,
    Float64Field,
    Int8Field,
    Int16Field,
    Int32Field,
    Int64Field,
    RefField,
    Tabular,
    VarStringField,
)


class TPerson(Tabular):
    name = CharField(24)
    age = Int32Field()
    balance = DecimalField(2)


class TOrder(Tabular):
    orderkey = Int64Field()
    owner = RefField("TPerson")
    total = DecimalField(2)
    placed = DateField()


class TNote(Tabular):
    text = VarStringField()
    stars = Int8Field()


class TEverything(Tabular):
    """One field of every kind, for layout and codec tests."""

    i8 = Int8Field()
    i16 = Int16Field()
    i32 = Int32Field()
    i64 = Int64Field()
    flag = BoolField()
    ratio = Float64Field()
    price = DecimalField(2)
    fine = DecimalField(4)
    day = DateField()
    code = CharField(10)
    memo = VarStringField()
    friend = RefField("TPerson")


class TNode(Tabular):
    """Self-referencing type (linked structures)."""

    value = Int64Field()
    next = RefField("TNode")
