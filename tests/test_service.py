"""Query service: metrics, admission, leases, protocol, differential TCP.

The differential tests pin the service's core contract: every supported
TPC-H query returns byte-identical results through the TCP service —
any worker count, with or without a concurrent churn mutator — as via
the in-process engine.  The lease-watchdog tests pin the reclamation
guarantee: a dead or stalled client session cannot block epoch
advancement, and limbo slots become reclaimable once its lease expires.
"""

import datetime
import threading
import time
from decimal import Decimal

import pytest

from repro.memory.manager import MemoryManager
from repro.service.admission import AdmissionController, OverloadedError
from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    instrument_manager,
)
from repro.service.plancache import PlanCache
from repro.service.session import SessionExpiredError, SessionRegistry
from repro.service import protocol


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


def test_counter_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "requests")
    c.inc()
    c.inc(2, op="query")
    assert c.value() == 1
    assert c.value(op="query") == 2
    with pytest.raises(ValueError):
        c.inc(-1)
    text = reg.expose()
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{op="query"} 2' in text


def test_gauge_callback_and_series():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "queue depth", callback=lambda: 7.0)
    assert g.value() == 7.0
    s = reg.gauge("per_ctx")
    s.attach_series(lambda: {(("context", "A"),): 3.0})
    text = reg.expose()
    assert "depth 7" in text
    assert 'per_ctx{context="A"} 3' in text


def test_histogram_buckets_and_quantiles():
    h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in [0.005] * 50 + [0.05] * 40 + [0.5] * 10:
        h.observe(v)
    assert h.count() == 100
    assert h.quantile(0.5) <= 0.1
    assert 0.1 <= h.quantile(0.99) <= 1.0
    samples = "\n".join(h.samples())
    assert 'lat_bucket{le="0.01"} 50' in samples
    assert 'lat_bucket{le="+Inf"} 100' in samples
    assert "lat_count 100" in samples


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    # Same-kind re-registration returns the existing instrument.
    assert reg.counter("x") is reg.counter("x")


def test_instrument_manager_exposes_memory_telemetry(manager):
    from repro.core.collection import Collection
    from tests.schemas import TNote

    notes = Collection(TNote, manager=manager)
    for i in range(20):
        notes.add(text=f"t{i % 3}", stars=i % 5)
    reg = MetricsRegistry()
    instrument_manager(reg, manager)
    text = reg.expose()
    assert "smc_global_epoch" in text
    assert 'smc_context_limbo_fraction{context="TNote"}' in text
    assert 'smc_string_dict_distinct{collection="TNote"} 3' in text
    assert "smc_allocations_total 20" in text


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def test_admission_bounds_concurrency_and_sheds_on_full_queue():
    ctl = AdmissionController(max_concurrency=1, queue_depth=0)
    ctl.acquire()
    with pytest.raises(OverloadedError) as exc:
        ctl.acquire()
    assert exc.value.reason == "queue_full"
    ctl.release()
    ctl.acquire()  # slot free again
    ctl.release()


def test_admission_class_timeout_sheds():
    ctl = AdmissionController(
        max_concurrency=1,
        queue_depth=4,
        class_timeouts={"interactive": 0.05, "default": 0.05},
    )
    ctl.acquire()
    start = time.monotonic()
    with pytest.raises(OverloadedError) as exc:
        ctl.acquire("interactive")
    assert exc.value.reason == "timed_out"
    assert time.monotonic() - start < 2.0
    ctl.release()


def test_admission_queue_admits_when_slot_frees():
    ctl = AdmissionController(max_concurrency=1, queue_depth=4)
    ctl.acquire()
    admitted = threading.Event()

    def waiter():
        ctl.acquire("batch")
        admitted.set()
        ctl.release()

    t = threading.Thread(target=waiter)
    t.start()
    time.sleep(0.05)
    assert not admitted.is_set()
    ctl.release()
    t.join(timeout=5)
    assert admitted.is_set()


def test_admission_metrics_count_sheds():
    reg = MetricsRegistry()
    ctl = AdmissionController(max_concurrency=1, queue_depth=0, metrics=reg)
    ctl.acquire()
    with pytest.raises(OverloadedError):
        ctl.acquire("batch")
    ctl.release()
    shed = reg.get("service_requests_shed_total")
    assert shed.value(queue_class="batch", reason="queue_full") == 1


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------


def test_plan_cache_hits_and_misses():
    reg = MetricsRegistry()
    cache = PlanCache(metrics=reg)
    built = []

    def build():
        built.append(1)
        return object()

    key = PlanCache.key_for("q1", "smc-unsafe", "dict", "compiled")
    a = cache.get_or_build(key, build)
    b = cache.get_or_build(key, build)
    assert a is b
    assert len(built) == 1
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "size": 1,
        "stale_evictions": 0,
        "capacity_evictions": 0,
    }
    other = PlanCache.key_for("q1", "columnar", "dict", "compiled")
    cache.get_or_build(other, build)
    assert cache.stats()["size"] == 2
    cache.invalidate()
    assert cache.stats()["size"] == 0


# ----------------------------------------------------------------------
# Epoch leases + session watchdog (reclamation regression)
# ----------------------------------------------------------------------


def test_lease_pins_epoch_until_revoked(manager):
    lease = manager.epochs.create_lease("s1")
    lease.enter()
    assert manager.epochs.try_advance()  # lease still at current epoch
    assert not manager.epochs.try_advance()  # now it lags: pinned
    assert lease.revoke()
    assert manager.epochs.try_advance()
    # Post-revocation interactions are safe no-ops / errors.
    lease.exit()
    with pytest.raises(Exception):
        lease.enter()


def test_forget_dead_threads_spares_idle_leases(manager):
    lease = manager.epochs.create_lease("idle")
    manager.epochs.forget_dead_threads()
    assert lease.epoch is not None  # still registered
    lease.release()
    assert manager.epochs.lease_count() == 0


def test_watchdog_expires_stalled_session_and_unblocks_reclamation():
    """A stalled session's lease cannot wedge limbo reclamation."""
    from repro.core.collection import Collection
    from tests.schemas import TNote

    manager = MemoryManager(block_shift=10, reclamation_threshold=0.0)
    registry = SessionRegistry(manager, lease_ttl=0.05)
    try:
        notes = Collection(TNote, manager=manager)
        handles = [notes.add(text=f"x{i}", stars=0) for i in range(64)]

        session = registry.create()
        session.enter()  # client enters a query... and stalls forever

        manager.advance_epoch()  # lease was current: one advance succeeds
        assert not manager.advance_epoch()  # now pinned by the lease

        for h in handles[:48]:
            notes.remove(h)  # limbo piles up behind the stuck lease
        assert not manager.advance_epoch()

        # Watchdog: session idle past TTL gets expired, lease revoked
        # (the background sweeper may beat the manual sweep; either way
        # the session must end up expired).
        deadline = time.monotonic() + 5.0
        while not session.expired and time.monotonic() < deadline:
            registry.sweep()
            time.sleep(0.01)
        assert session.expired
        with pytest.raises(SessionExpiredError):
            registry.require(session.session_id)

        # Epoch advances again and limbo becomes reclaimable.
        assert manager.advance_epoch()
        assert manager.advance_epoch()
        before = manager.stats.limbo_reuses
        for i in range(48):
            notes.add(text=f"y{i}", stars=1)
        assert manager.stats.limbo_reuses > before
    finally:
        registry.close()
        manager.close()


def test_session_release_drops_lease(manager):
    registry = SessionRegistry(manager, lease_ttl=30.0)
    try:
        session = registry.create()
        assert manager.epochs.lease_count() == 1
        assert registry.release(session.session_id)
        assert manager.epochs.lease_count() == 0
        assert not registry.release(session.session_id)
    finally:
        registry.close()


# ----------------------------------------------------------------------
# Protocol codec
# ----------------------------------------------------------------------


def test_protocol_value_roundtrip_exact():
    rows = [
        (Decimal("123.4500"), datetime.date(1998, 9, 2), 1.5, 7, "x", None),
        (Decimal("-0.01"), datetime.date(1992, 1, 1), 0.1 + 0.2, -1, "", True),
    ]
    decoded = protocol.decode_rows(protocol.encode_rows(rows))
    assert repr(decoded) == repr(rows)
    for (a, b) in zip(decoded[0], rows[0]):
        assert type(a) is type(b) or b is None


def test_protocol_framing_roundtrip():
    msg = {"op": "query", "rows": [[{"$d": "1.5"}]]}
    frame = protocol.dump_message(msg)
    assert protocol.load_message(frame[4:]) == msg
    with pytest.raises(protocol.ProtocolError):
        protocol.load_message(b"[1, 2]")  # not an object
    with pytest.raises(protocol.ProtocolError):
        protocol.load_message(b"\xff\xfe")


# ----------------------------------------------------------------------
# End-to-end service (in-process handler + TCP)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_service(tpch_tiny):
    """A served TPC-H dataset plus in-process baselines for every query."""
    from repro.service.server import QueryService, ServiceServer
    from repro.tpch.loader import load_smc
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    collections = load_smc(tpch_tiny)
    manager = collections["_manager"]
    plain = {k: v for k, v in collections.items() if not k.startswith("_")}
    builders = dict(QUERIES)
    builders.update(EXTRA_QUERIES)
    baselines = {
        name: builder(plain).run(engine="compiled", params=DEFAULT_PARAMS)
        for name, builder in builders.items()
    }
    service = QueryService(collections, manager, max_concurrency=4)
    server = ServiceServer(service).start()
    yield {
        "server": server,
        "service": service,
        "manager": manager,
        "baselines": baselines,
    }
    server.stop()
    manager.close()


def _assert_identical(result, baseline):
    assert list(result.columns) == list(baseline.columns)
    assert repr(result.rows) == repr(baseline.rows)


@pytest.mark.parametrize("workers", [1, 2])
def test_differential_all_queries_over_tcp(tpch_service, workers):
    from repro.service.client import ServiceClient

    with ServiceClient(port=tpch_service["server"].port) as client:
        for name, baseline in tpch_service["baselines"].items():
            _assert_identical(client.query(name, workers=workers), baseline)


def test_differential_under_concurrent_mutators(tpch_service):
    """Byte-identical TPC-H answers while a mutator churns the manager."""
    from repro.service.client import ServiceClient

    service = tpch_service["service"]
    service.start_churn(high_water=128, compact_every=500)
    try:
        with ServiceClient(port=tpch_service["server"].port) as client:
            for __ in range(3):
                for name, baseline in tpch_service["baselines"].items():
                    _assert_identical(client.query(name, workers=2), baseline)
        assert service.churn.ops > 0
    finally:
        service.stop_churn()


def test_concurrent_clients_differential(tpch_service):
    from repro.service.client import ServiceClient

    port = tpch_service["server"].port
    baselines = tpch_service["baselines"]
    failures = []

    def worker(names):
        try:
            with ServiceClient(port=port) as client:
                for name in names:
                    _assert_identical(client.query(name), baselines[name])
        except Exception as exc:  # noqa: BLE001 - collected for assertion
            failures.append(exc)

    names = list(baselines)
    threads = [
        threading.Thread(target=worker, args=(names[i::4],)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures


def test_unknown_query_and_op_are_bad_requests(tpch_service):
    service = tpch_service["service"]
    reply = service.handle({"op": "query", "query": "q99"})
    assert reply["error"] == "BAD_REQUEST"
    reply = service.handle({"op": "frobnicate"})
    assert reply["error"] == "BAD_REQUEST"


def test_expired_session_gets_lease_expired(tpch_service):
    service = tpch_service["service"]
    hello = service.handle({"op": "hello", "ttl": 0.01})
    assert hello["ok"]
    time.sleep(0.02)
    assert service.sessions.sweep() >= 1
    reply = service.handle(
        {"op": "query", "query": "q6", "session": hello["session"]}
    )
    assert reply["error"] == "LEASE_EXPIRED"


def test_killed_client_cannot_wedge_epoch(tpch_service):
    """Abruptly closing a client's socket must not pin the epoch forever."""
    import socket as socket_mod

    from repro.service import protocol as proto

    server = tpch_service["server"]
    manager = tpch_service["manager"]
    sock = socket_mod.create_connection(("127.0.0.1", server.port))
    proto.send_message(sock, {"op": "hello", "ttl": 0.05})
    reply = proto.recv_message(sock)
    session_id = reply["session"]
    # Simulate a client killed mid-flight: run one query (so the session
    # is live), then vanish without bye.
    proto.send_message(
        sock, {"op": "query", "query": "q6", "session": session_id}
    )
    proto.recv_message(sock)
    sock.close()

    service = tpch_service["service"]
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if service.sessions.get(session_id) is None:
            break
        service.sessions.sweep()
        time.sleep(0.02)
    assert service.sessions.get(session_id) is None
    # Epoch advancement is unobstructed.
    assert manager.advance_epoch()
    assert manager.advance_epoch()


def test_service_sheds_with_explicit_overloaded(tpch_tiny):
    from repro.service.client import ServiceClient, ServiceOverloadedError
    from repro.service.server import QueryService, ServiceServer
    from repro.tpch.loader import load_smc

    collections = load_smc(tpch_tiny)
    manager = collections["_manager"]
    service = QueryService(
        collections,
        manager,
        max_concurrency=1,
        queue_depth=0,
        class_timeouts={"default": 0.05},
    )
    server = ServiceServer(service).start()
    try:
        # Hold the only slot so every query is shed immediately.
        service.admission.acquire()
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceOverloadedError) as exc:
                client.query("q6")
            assert exc.value.reason == "queue_full"
        service.admission.release()
        with ServiceClient(port=server.port) as client:
            assert client.query("q6").rows  # recovers after release
    finally:
        server.stop()
        manager.close()


def test_metrics_scrape_over_tcp(tpch_service):
    from repro.service.client import ServiceClient

    with ServiceClient(port=tpch_service["server"].port) as client:
        client.query("q1")
        text = client.metrics()
    assert "# TYPE service_requests_total counter" in text
    assert "smc_global_epoch" in text
    assert "service_plan_cache_misses_total" in text
    assert "smc_compiled_cache_hits_total" in text
    assert 'service_request_seconds_bucket{op="query",le="+Inf"}' in text
    assert "smc_scan_rows_total" in text


def test_info_reports_plan_cache_and_telemetry(tpch_service):
    from repro.service.client import ServiceClient

    with ServiceClient(port=tpch_service["server"].port) as client:
        client.query("q3")
        client.query("q3")
        info = client.info()
    tel = info["telemetry"]
    assert tel["global_epoch"] >= 0
    assert any(ctx["name"] == "Lineitem" for ctx in tel["contexts"])
    assert tel["string_dicts"]["Lineitem"] > 0
    stats = info["plan_cache"]
    assert stats["misses"] >= 1
    assert stats["hits"] >= 1
