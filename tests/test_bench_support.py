"""Bench harness and shared workloads."""

import random

import pytest

from repro.bench.harness import FigureReport, Series, bench_scale_factor, time_callable
from repro.bench.workloads import RefreshStreams, allocation_throughput, lineitem_values, wear
from repro.core.collection import Collection
from repro.managed.collections_ import ManagedList
from repro.memory.manager import MemoryManager
from repro.tpch.schema import Lineitem


def test_series_records_points():
    s = Series("a")
    s.add("x", 1.0)
    s.add("y", 2.0)
    assert s.value_at("x") == 1.0
    assert s.value_at("missing") is None


def test_figure_report_render():
    rep = FigureReport("Figure T", "test", "ms")
    rep.record("alpha", "q1", 1.5)
    rep.record("alpha", "q2", 2.5)
    rep.record("beta", "q1", 3.0)
    text = rep.render()
    assert "Figure T" in text
    assert "alpha" in text and "beta" in text
    assert "q1" in text and "q2" in text
    assert "1.5" in text
    assert rep.xs() == ["q1", "q2"]


def test_figure_report_normalised():
    rep = FigureReport("F", "t", "ms")
    rep.record("base", "x", 2.0)
    rep.record("other", "x", 4.0)
    norm = rep.normalised("base")
    assert norm.series["other"].value_at("x") == 2.0
    assert norm.series["base"].value_at("x") == 1.0


def test_time_callable_returns_positive():
    assert time_callable(lambda: sum(range(100)), repeat=2) > 0


def test_bench_scale_factor_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SF", "0.5")
    assert bench_scale_factor() == 0.5
    monkeypatch.delenv("REPRO_BENCH_SF")
    assert bench_scale_factor(0.02) == 0.02


def test_lineitem_values_shape():
    rnd = random.Random(1)
    values = lineitem_values(rnd, 42)
    assert values["orderkey"] == 42
    assert set(values) <= {f.name for f in Lineitem.__fields__}
    # Must be loadable into a real collection.
    m = MemoryManager()
    coll = Collection(Lineitem, manager=m)
    h = coll.add(**values)
    assert h.orderkey == 42
    m.close()


def test_allocation_throughput_counts_everything():
    sink = []
    rate = allocation_throughput(lambda i: sink.append(i), count=400, threads=4)
    assert rate > 0
    assert len(sink) == 400
    assert len(set(sink)) == 400  # disjoint id ranges per thread


def test_refresh_streams_insert_and_delete():
    m = MemoryManager()
    coll = Collection(Lineitem, manager=m)
    rnd = random.Random(2)
    for i in range(1000):
        coll.add(**lineitem_values(rnd, i))

    def remove_by_orderkeys(victims):
        removed = 0
        for h in list(coll):
            if h.orderkey in victims:
                coll.remove(h)
                removed += 1
        return removed

    streams = RefreshStreams(
        insert=lambda v: coll.add(**v),
        keys=lambda: [h.orderkey for h in coll],
        remove_by_orderkeys=remove_by_orderkeys,
        initial_population=1000,
    )
    assert streams.batch == 1
    added = streams.run_insert_stream()
    assert added == 1
    assert len(coll) == 1001
    removed = streams.run_delete_stream()
    assert removed == 1
    assert len(coll) == 1000
    m.close()


def test_refresh_streams_throughput_runs():
    ml = ManagedList(Lineitem)
    rnd = random.Random(2)
    for i in range(500):
        ml.add(**lineitem_values(rnd, i))
    streams = RefreshStreams(
        insert=lambda v: ml.add(**v),
        keys=lambda: [r.orderkey for r in ml],
        remove_by_orderkeys=lambda victims: ml.remove_where(
            lambda r: r.orderkey in victims
        ),
        initial_population=500,
    )
    rate = streams.throughput(seconds=0.05, threads=2)
    assert rate > 0


def test_wear_preserves_population_size():
    m = MemoryManager()
    coll = Collection(Lineitem, manager=m)
    rnd = random.Random(9)
    handles = [coll.add(**lineitem_values(rnd, i)) for i in range(300)]
    population = wear(
        handles,
        remove=coll.remove,
        insert=lambda v: coll.add(**v),
        fraction=0.5,
        rounds=2,
    )
    assert len(population) == 300
    assert len(coll) == 300
    # The collection went through churn: limbo slots or recycled blocks.
    assert m.stats.frees == 300  # 150 * 2 rounds
    m.close()
