"""Smoke tests: every shipped example runs to completion."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, extra_env=None) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "NullReferenceError" in out
    assert "rich persons" in out


def test_compaction_demo_runs():
    out = _run("compaction_demo.py")
    assert "compaction relocated" in out
    assert "direct pointers" in out
    assert "references OK" in out


def test_columnar_analytics_runs():
    out = _run("columnar_analytics.py")
    assert "columnar layout" in out
    assert "volume leaders" in out


@pytest.mark.slow
def test_business_intelligence_runs():
    out = _run("business_intelligence.py")
    assert "Q1 pricing summary" in out
    assert "gc.collect()" in out


@pytest.mark.slow
def test_refresh_pipeline_runs():
    out = _run("refresh_pipeline.py")
    assert "aggregation queries" in out
    assert "final population" in out


def test_data_lifecycle_runs():
    out = _run("data_lifecycle.py")
    assert "auto-compaction ran 1x" in out or "auto-compaction ran" in out
    assert "repair scan" in out
    assert "MemoryManager" in out
