"""Deterministic race reproductions via the sanitizer's schedule control.

Each test drives a specific cross-thread interleaving of the reclamation
protocol by parking a thread at a named yield point (a :class:`Gate`) and
resuming it once the racing step has executed — the schedule is forced,
not hoped for, so the tests are deterministic.  Every test prints its
schedule seed; re-running with the same seed (and thread names) replays
the same per-thread jitter decisions.
"""

import threading

import pytest

from repro import sanitizer
from repro.core.collection import Collection
from repro.memory import slots as slotcodec
from repro.memory.manager import MemoryManager
from repro.query import runtime

from tests.schemas import TPerson


def _fill_blocks(persons, blocks, age=1):
    handles = []
    while persons.context.block_count() < blocks:
        handles.append(persons.add(name=f"p{len(handles)}", age=age))
    return handles


def _block_id_of(manager, handle):
    with manager.critical_section():
        return manager.space.block_at(handle.ref.address()).block_id


def test_compact_during_deref_bails_out_in_waiting_phase():
    """A reader that hits a frozen object in the waiting phase bails the
    relocation out; the compactor retries it in the next round."""
    schedule = sanitizer.ScheduleController(seed=7)
    print(f"schedule seed={schedule.seed}")
    with sanitizer.enabled(schedule=schedule) as san:
        m = MemoryManager(block_shift=10)
        persons = Collection(TPerson, manager=m)
        handles = _fill_blocks(persons, 4, age=7)
        keep = handles[::4]
        for h in handles:
            if h not in keep:
                persons.remove(h)
        # The main thread's active (still-filling) block is not compacted;
        # only survivors in the under-occupied candidate blocks relocate.
        candidate_ids = {
            b.block_id for b in persons.context.compactable_blocks(0.9)
        }
        expected_moves = sum(
            1 for h in keep if _block_id_of(m, h) in candidate_ids
        )
        victim = next(h for h in keep if _block_id_of(m, h) in candidate_ids)
        assert expected_moves >= 1

        # Park the compactor right after it entered the relocation epoch,
        # before it starts moving: the waiting phase, held open.
        gate = schedule.pause_at("compact.waiting")
        result = []
        compactor = threading.Thread(
            target=lambda: result.append(
                persons.compact(occupancy_threshold=0.9)
            ),
            name="smc-compactor",
        )
        compactor.start()
        assert gate.wait_parked(timeout=10.0), "compactor never reached waiting"

        # The global epoch is the relocation epoch; a reader entering now
        # dereferences a frozen survivor -> case (b): bail the move out.
        assert m.epochs.global_epoch == m.next_relocation_epoch
        assert not m.in_moving_phase
        assert victim.age == 7  # reads fine through the slow path
        assert m.stats.bailed_relocations >= 1

        gate.release()
        compactor.join(timeout=10.0)
        assert not compactor.is_alive()
        # The bailed-out item was retried in a later round: every scheduled
        # survivor (the victim included) was still relocated, none lost.
        assert result == [expected_moves]
        assert _block_id_of(m, victim) not in candidate_ids
        assert sorted(h.age for h in persons) == [7] * len(keep)
        san.assert_clean()
        m.close()


def test_free_during_scan_blocks_reuse_until_reader_exits():
    """A slot freed while a reader scans its block stays unreusable until
    the reader leaves its critical section (the e+2 rule in action)."""
    schedule = sanitizer.ScheduleController(seed=11)
    print(f"schedule seed={schedule.seed}")
    with sanitizer.enabled(schedule=schedule) as san:
        m = MemoryManager(block_shift=10)
        persons = Collection(TPerson, manager=m)
        handles = _fill_blocks(persons, 2)
        victim = handles[0]
        with m.critical_section():
            address = victim.ref.address()
        block = m.space.block_at(address)
        slot = block.slot_of_address(address)

        gate = schedule.pause_at("scan.block", thread="scan-reader")
        seen = []

        def reader():
            with m.critical_section():
                for blk in runtime.scan_blocks(m, persons.context):
                    seen.append(blk.valid_count)

        t = threading.Thread(target=reader, name="scan-reader")
        t.start()
        assert gate.wait_parked(timeout=10.0), "reader never reached the scan"

        # Free the victim while the reader is mid-scan at epoch e.
        persons.remove(victim)
        removal = block.removal_epoch_of(slot)
        # The global epoch can advance at most once past the reader ...
        m.advance_epoch()
        assert not m.epochs.try_advance()
        # ... so the freed slot is pinned in limbo, not reusable.
        word = int(block.directory[slot])
        assert not slotcodec.is_reclaimable(word, m.epochs.global_epoch)
        assert block.find_allocatable(slot, m.epochs.global_epoch) != slot

        gate.release()
        t.join(timeout=10.0)
        assert not t.is_alive()
        # Reader gone: two advances later the slot becomes recyclable.
        while m.epochs.global_epoch < removal + 2:
            assert m.advance_epoch()
        assert slotcodec.is_reclaimable(word, m.epochs.global_epoch)
        assert block.find_allocatable(slot, m.epochs.global_epoch) == slot
        san.assert_clean()
        m.close()


def test_epoch_advance_race_under_seeded_jitter():
    """Concurrent advancers + churners under seeded jitter: the sanitizer
    verifies every advance is a single monotonic step that never overtakes
    an in-critical thread."""
    schedule = sanitizer.ScheduleController(seed=23, switch_probability=0.2)
    print(f"schedule seed={schedule.seed}")
    with sanitizer.enabled(schedule=schedule) as san:
        m = MemoryManager(block_shift=12, reclamation_threshold=0.05)
        persons = Collection(TPerson, manager=m)
        errors = []

        def churner(tid):
            try:
                local = [
                    persons.add(name=f"c{tid}", age=i % 50) for i in range(200)
                ]
                for h in local:
                    persons.remove(h)
                for i in range(200):
                    persons.add(name=f"c{tid}b", age=i % 50)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def advancer():
            try:
                for _ in range(200):
                    m.advance_epoch()
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=churner, args=(t,), name=f"race-churn-{t}")
            for t in range(2)
        ]
        threads += [
            threading.Thread(target=advancer, name=f"race-adv-{t}")
            for t in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        # One event per successful advance: the counter and the epoch agree.
        assert m.epochs.global_epoch == san.event_counts["epoch.advance"]
        assert m.epochs.global_epoch > 0
        san.assert_clean()
        m.close()
