"""Self-managed collection semantics (paper section 2)."""

import datetime
from decimal import Decimal

import pytest

from repro.core.collection import Collection
from repro.errors import NullReferenceError, TabularTypeError
from repro.schema import Tabular

from tests.schemas import TNode, TNote, TOrder, TPerson


@pytest.fixture
def persons(manager):
    return Collection(TPerson, manager=manager)


@pytest.fixture
def orders(manager, persons):
    return Collection(TOrder, manager=manager)


def test_requires_tabular_class(manager):
    with pytest.raises(TabularTypeError):
        Collection(int, manager=manager)
    with pytest.raises(TabularTypeError):
        Collection(Tabular, manager=manager)


def test_add_returns_live_handle(persons):
    h = persons.add(name="Adam", age=27)
    assert h.is_alive
    assert h.name == "Adam"
    assert h.age == 27
    assert h.balance == Decimal(0)
    assert len(persons) == 1


def test_add_rejects_unknown_field(persons):
    with pytest.raises(TypeError):
        persons.add(nam="typo")


def test_remove_ends_lifetime(persons):
    h = persons.add(name="Adam", age=27)
    persons.remove(h)
    assert len(persons) == 0
    assert not h.is_alive
    with pytest.raises(NullReferenceError):
        __ = h.name


def test_remove_twice_raises(persons):
    h = persons.add(name="Adam", age=27)
    persons.remove(h)
    with pytest.raises(NullReferenceError):
        persons.remove(h)


def test_all_references_null_after_remove(persons, orders):
    p = persons.add(name="Zoe", age=31)
    o1 = orders.add(orderkey=1, owner=p)
    o2 = orders.add(orderkey=2, owner=p)
    persons.remove(p)
    for o in (o1, o2):
        with pytest.raises(NullReferenceError):
            __ = o.owner.name


def test_enumeration_in_memory_order(persons):
    for i in range(100):
        persons.add(name=f"p{i}", age=i)
    ages = [h.age for h in persons]
    assert ages == list(range(100))


def test_enumeration_skips_removed(persons):
    handles = [persons.add(name=f"p{i}", age=i) for i in range(10)]
    for h in handles[::2]:
        persons.remove(h)
    assert sorted(h.age for h in persons) == [1, 3, 5, 7, 9]


def test_handles_equal_by_reference(persons):
    h = persons.add(name="A", age=1)
    clones = list(persons)
    assert clones[0] == h
    assert hash(clones[0]) == hash(h)


def test_field_update_through_handle(persons):
    h = persons.add(name="A", age=1)
    h.age = 42
    h.balance = Decimal("12.50")
    assert h.age == 42
    assert h.balance == Decimal("12.50")


def test_ref_update_through_handle(persons, orders):
    a = persons.add(name="A", age=1)
    b = persons.add(name="B", age=2)
    o = orders.add(orderkey=1, owner=a)
    o.owner = b
    assert o.owner.name == "B"
    o.owner = None
    assert o.owner is None


def test_ref_accepts_raw_ref(persons, orders):
    p = persons.add(name="A", age=1)
    o = orders.add(orderkey=1, owner=p.ref)
    assert o.owner == p


def test_ref_rejects_junk(persons, orders):
    with pytest.raises(TypeError):
        orders.add(orderkey=1, owner="not a handle")


def test_null_reference_default(orders):
    o = orders.add(orderkey=9)
    assert o.owner is None


def test_self_referencing_collection(manager):
    nodes = Collection(TNode, manager=manager)
    tail = nodes.add(value=2)
    head = nodes.add(value=1, next=tail)
    assert head.next.value == 2
    assert head.next.next is None


def test_clear(persons):
    for i in range(20):
        persons.add(name=f"p{i}", age=i)
    assert persons.clear() == 20
    assert len(persons) == 0
    assert list(persons) == []


def test_strings_owned_by_objects(manager):
    notes = Collection(TNote, manager=manager)
    n = notes.add(text="the quick brown fox", stars=5)
    assert manager.strings.bytes_in_use > 0
    assert n.text == "the quick brown fox"
    notes.remove(n)
    assert manager.strings.bytes_in_use == 0


def test_collections_share_manager_registry(manager, persons, orders):
    assert manager.collections["TPerson"] is persons
    assert manager.collections["TOrder"] is orders


def test_date_and_decimal_fields(orders, persons):
    p = persons.add(name="A", age=1)
    o = orders.add(
        orderkey=5,
        owner=p,
        total=Decimal("123.45"),
        placed=datetime.date(2020, 6, 1),
    )
    assert o.total == Decimal("123.45")
    assert o.placed == datetime.date(2020, 6, 1)


def test_memory_bytes_grows_with_blocks(persons, manager):
    assert persons.memory_bytes() == 0
    persons.add(name="x", age=1)
    assert persons.memory_bytes() == manager.space.block_size


def test_slot_reuse_after_epoch_advance():
    """Limbo slots are recycled once the block cycles through the queue.

    The allocation scan prefers untouched FREE slots ahead of the cursor
    (paper section 3.5), so reuse kicks in when the exhausted block comes
    back from the reclamation queue — the block count must stay flat
    under steady churn.
    """
    from repro.memory.manager import MemoryManager

    m = MemoryManager(block_shift=10, reclamation_threshold=0.05)
    persons = Collection(TPerson, manager=m)
    live = [persons.add(name=f"p{i}", age=i) for i in range(200)]
    blocks_after_load = persons.context.block_count()
    for round_ in range(10):
        for h in live:
            persons.remove(h)
        live = [persons.add(name=f"r{round_}-{i}", age=i) for i in range(200)]
    assert persons.context.block_count() <= blocks_after_load + 2
    assert m.stats.limbo_reuses > 0
    m.close()


def test_unknown_attribute_raises(persons):
    h = persons.add(name="A", age=1)
    with pytest.raises(AttributeError):
        __ = h.bogus
    with pytest.raises(AttributeError):
        h.bogus = 1


def test_remove_where_bulk(manager):
    persons = Collection(TPerson, manager=manager)
    for i in range(40):
        persons.add(name=f"p{i}", age=i)
    removed = persons.remove_where(TPerson.age >= 30)
    assert removed == 10
    assert len(persons) == 30
    assert max(h.age for h in persons) == 29


def test_remove_where_frees_strings(manager):
    notes = Collection(TNote, manager=manager)
    for i in range(10):
        notes.add(text=f"note number {i}", stars=i)
    assert manager.strings.bytes_in_use > 0
    notes.remove_where(TNote.stars >= 0)
    assert manager.strings.bytes_in_use == 0
    assert len(notes) == 0


def test_update_where_bulk(manager):
    persons = Collection(TPerson, manager=manager)
    for i in range(20):
        persons.add(name=f"p{i}", age=i)
    updated = persons.update_where(TPerson.age < 5, name="young")
    assert updated == 5
    assert sum(1 for h in persons if h.name == "young") == 5


def test_update_where_rejects_unknown_field(manager):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    with pytest.raises(TypeError):
        persons.update_where(TPerson.age >= 0, bogus=1)


def test_query_scalar_terminals(manager):
    from decimal import Decimal

    persons = Collection(TPerson, manager=manager)
    for i in range(10):
        persons.add(name="x", age=i, balance=Decimal(i))
    q = persons.query().where(TPerson.age >= 5)
    assert q.sum(TPerson.age) == 5 + 6 + 7 + 8 + 9
    assert q.min(TPerson.age) == 5
    assert q.max(TPerson.age) == 9
    assert float(q.avg(TPerson.age)) == 7.0


def test_query_scalar_terminals_empty(manager):
    persons = Collection(TPerson, manager=manager)
    q = persons.query().where(TPerson.age > 100)
    assert q.sum(TPerson.age) == 0
    assert q.min(TPerson.age) is None
    assert q.avg(TPerson.age) is None
