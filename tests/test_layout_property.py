"""Property-based layout tests: random schemas round-trip losslessly."""

import datetime
import itertools
from decimal import Decimal

from hypothesis import given, settings, strategies as st

from repro.memory.manager import MemoryManager
from repro.schema.fields import (
    BoolField,
    CharField,
    DateField,
    DecimalField,
    Float64Field,
    Int8Field,
    Int16Field,
    Int32Field,
    Int64Field,
    VarStringField,
)
from repro.schema.layout import SlotLayout

_counter = itertools.count()

_FIELD_KINDS = [
    ("i8", Int8Field, st.integers(-128, 127)),
    ("i16", Int16Field, st.integers(-(2**15), 2**15 - 1)),
    ("i32", Int32Field, st.integers(-(2**31), 2**31 - 1)),
    ("i64", Int64Field, st.integers(-(2**62), 2**62 - 1)),
    ("bool", BoolField, st.booleans()),
    ("float", Float64Field, st.floats(allow_nan=False, allow_infinity=False, width=32)),
    (
        "dec",
        lambda: DecimalField(2),
        st.decimals(min_value=-(10**9), max_value=10**9, places=2, allow_nan=False),
    ),
    (
        "date",
        DateField,
        st.dates(datetime.date(1900, 1, 1), datetime.date(2200, 1, 1)),
    ),
    ("char", lambda: CharField(12), st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12
    )),
    ("vstr", VarStringField, st.text(max_size=80)),
]


@st.composite
def schema_and_rows(draw):
    kinds = draw(
        st.lists(st.sampled_from(_FIELD_KINDS), min_size=1, max_size=8)
    )
    fields = []
    strategies = {}
    for i, (tag, factory, strat) in enumerate(kinds):
        name = f"f{i}_{tag}"
        fields.append((name, factory()))
        strategies[name] = strat
    rows = draw(
        st.lists(st.fixed_dictionaries(strategies), min_size=1, max_size=10)
    )
    return fields, rows


@settings(max_examples=60, deadline=None)
@given(data=schema_and_rows())
def test_random_layout_roundtrip(data):
    """Any ordered mix of field kinds packs and unpacks losslessly."""
    fields, rows = data
    for name, field in fields:
        field.name = name  # bind manually (no tabular class needed)
        field.index = 0
        field.owner = object
        if field.fmt:
            import struct as _struct

            field._struct = _struct.Struct("<" + field.fmt)
        elif isinstance(field, CharField):
            import struct as _struct

            field._struct = _struct.Struct(f"<{field.width}s")
    layout = SlotLayout([f for __, f in fields], f"Rand{next(_counter)}")
    manager = MemoryManager(block_shift=12)
    try:
        for row in rows:
            buf = bytearray(layout.slot_size)
            layout.write_new(buf, 0, row, manager)
            readback = layout.read_row(buf, 0, manager)
            for name, field in fields:
                assert readback[name] == field.from_raw(field.to_raw(row[name])) or (
                    readback[name] == row[name]
                )
    finally:
        manager.close()


@settings(max_examples=60, deadline=None)
@given(data=schema_and_rows())
def test_template_and_full_pack_agree_with_write_new(data):
    """The fast row writers produce byte-identical rows to write_new."""
    fields, rows = data
    for name, field in fields:
        field.name = name
        field.index = 0
        field.owner = object
        if field.fmt:
            import struct as _struct

            field._struct = _struct.Struct("<" + field.fmt)
        elif isinstance(field, CharField):
            import struct as _struct

            field._struct = _struct.Struct(f"<{field.width}s")
    layout = SlotLayout([f for __, f in fields], f"Rand{next(_counter)}")
    manager = MemoryManager(block_shift=12)
    try:
        for row in rows:
            a = bytearray(layout.slot_size)
            layout.write_new(a, 0, dict(row), manager)
            b = bytearray(layout.slot_size)
            layout.pack_full_row(b, 0, dict(row), manager, lambda f, v: None)
            # Variable strings allocate separate heap records, so compare
            # decoded rows rather than raw bytes.
            assert layout.read_row(a, 0, manager) == layout.read_row(
                b, 0, manager
            )
    finally:
        manager.close()
