"""Secondary hash indexes."""

import pytest

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.core.index import HashIndex, IndexError_
from repro.memory.manager import MemoryManager

from tests.schemas import TOrder, TPerson


@pytest.fixture
def persons(manager):
    return Collection(TPerson, manager=manager)


def test_index_backfills_existing_rows(persons):
    for i in range(20):
        persons.add(name=f"p{i % 4}", age=i)
    idx = persons.create_index("name")
    assert len(idx) == 20
    assert idx.distinct_keys == 4
    assert len(idx.get("p1")) == 5


def test_index_tracks_adds(persons):
    idx = persons.create_index("age")
    persons.add(name="a", age=7)
    persons.add(name="b", age=7)
    assert len(idx.get(7)) == 2
    assert idx.get_one(7).age == 7
    assert 7 in idx
    assert 8 not in idx


def test_index_tracks_removes(persons):
    idx = persons.create_index("age")
    h = persons.add(name="a", age=7)
    persons.remove(h)
    assert idx.get(7) == []
    assert len(idx) == 0


def test_index_tracks_remove_where(persons):
    idx = persons.create_index("age")
    for i in range(10):
        persons.add(name="x", age=i % 2)
    persons.remove_where(TPerson.age == 0)
    assert idx.get(0) == []
    assert len(idx.get(1)) == 5


def test_index_tracks_field_updates(persons):
    idx = persons.create_index("age")
    h = persons.add(name="a", age=1)
    h.age = 99
    assert idx.get(1) == []
    assert idx.get_one(99) == h


def test_index_on_columnar_collection(manager):
    persons = ColumnarCollection(TPerson, manager=manager)
    idx = persons.create_index("name")
    h = persons.add(name="ada", age=1)
    assert idx.get_one("ada") == h
    h.name = "eve"
    assert idx.get("ada") == []
    assert idx.get_one("eve") == h
    persons.remove(h)
    assert idx.get("eve") == []


def test_index_survives_compaction():
    m = MemoryManager(block_shift=10)
    persons = Collection(TPerson, manager=m)
    handles = []
    while persons.context.block_count() < 5:
        handles.append(persons.add(name=f"p{len(handles)}", age=len(handles)))
    idx = persons.create_index("age")
    keep = handles[::7]
    for h in handles:
        if h not in keep:
            persons.remove(h)
    persons.compact(occupancy_threshold=0.9)
    for h in keep:
        assert idx.get_one(h.age).name == h.name
    m.close()


def test_index_rejects_unknown_field(persons):
    with pytest.raises(IndexError_):
        persons.create_index("bogus")


def test_index_rejects_ref_and_varstring_fields(manager):
    orders = Collection(TOrder, manager=manager)
    with pytest.raises(IndexError_):
        orders.create_index("owner")
    from tests.schemas import TNote

    notes = Collection(TNote, manager=manager)
    with pytest.raises(IndexError_):
        notes.create_index("text")


def test_multiple_indexes_one_collection(persons):
    by_name = persons.create_index("name")
    by_age = persons.create_index("age")
    h = persons.add(name="ada", age=36)
    assert by_name.get_one("ada") == h
    assert by_age.get_one(36) == h
    persons.remove(h)
    assert not by_name.get("ada") and not by_age.get(36)


class TestSortedIndex:
    def test_range_lookup(self, persons):
        idx = persons.create_sorted_index("age")
        for i in range(50):
            persons.add(name=f"p{i}", age=i)
        got = [h.age for h in idx.range(10, 20)]
        assert got == list(range(10, 21))
        got = [h.age for h in idx.range(10, 20, lo_open=True, hi_open=True)]
        assert got == list(range(11, 20))

    def test_open_bounds(self, persons):
        idx = persons.create_sorted_index("age")
        for i in range(10):
            persons.add(name="x", age=i)
        assert [h.age for h in idx.range(hi=3)] == [0, 1, 2, 3]
        assert [h.age for h in idx.range(lo=7)] == [7, 8, 9]
        assert len(idx.range()) == 10

    def test_tracks_mutations(self, persons):
        idx = persons.create_sorted_index("age")
        h = persons.add(name="x", age=5)
        persons.add(name="y", age=6)
        assert [g.age for g in idx.get(5)] == [5]
        h.age = 50
        assert idx.get(5) == []
        assert [g.age for g in idx.get(50)] == [50]
        persons.remove(h)
        assert idx.get(50) == []
        assert len(idx) == 1

    def test_min_max_keys(self, persons):
        idx = persons.create_sorted_index("age")
        assert idx.min_key() is None
        persons.add(name="a", age=3)
        persons.add(name="b", age=9)
        assert idx.min_key() == 3
        assert idx.max_key() == 9

    def test_backfill_and_duplicates(self, persons):
        for i in range(20):
            persons.add(name="x", age=i % 4)
        idx = persons.create_sorted_index("age")
        assert len(idx) == 20
        assert len(idx.get(2)) == 5

    def test_date_range_on_dates(self, manager):
        import datetime

        from tests.schemas import TOrder

        Collection_ = Collection
        persons = Collection_(TPerson, manager=manager)
        orders = Collection_(TOrder, manager=manager)
        idx = orders.create_sorted_index("placed")
        base = datetime.date(2020, 1, 1)
        for i in range(30):
            orders.add(orderkey=i, placed=base + datetime.timedelta(days=i))
        got = idx.range(
            datetime.date(2020, 1, 10), datetime.date(2020, 1, 15)
        )
        assert [h.orderkey for h in got] == list(range(9, 15))

    def test_rejects_ref_field(self, manager):
        from tests.schemas import TOrder

        orders = Collection(TOrder, manager=manager)
        with pytest.raises(IndexError_):
            orders.create_sorted_index("owner")
