"""Dictionary-encoded string columns: differential and unit coverage.

Differential guarantees first: every TPC-H query must produce identical
results with dictionary encoding on and off (the ``--no-dict`` ablation),
on both layouts, across worker counts and pruning settings, and across a
compaction cycle.  Then the :class:`~repro.memory.stringheap.StringDict`
unit contract: interning dedups heap records, refcounts track stored
occurrences, retired codes wait out the two-epoch grace period before
rebinding, and predicate match sets follow the dictionary version.

All tests here are sanitizer-compatible (``pytest --sanitize``).
"""

from __future__ import annotations

import pytest

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.memory.manager import MemoryManager
from repro.query.builder import Count
from repro.tpch.loader import load_smc
from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES
from tests.schemas import TNote, TPerson

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES}

#: (workers, prune) configurations run with the dictionary on, each
#: differenced against the serial unpruned dict-off baseline.
CONFIGS = [(1, False), (1, True), (4, True)]


def _canonical(result):
    """Order-insensitive comparison form of a query result."""
    return (tuple(result.columns), sorted(map(tuple, result.rows)))


def _count(result):
    return result.rows[0][0] if result.rows else 0


# ----------------------------------------------------------------------
# Differential: TPC-H, dict on vs. off
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=["row", "columnar"])
def tpch_pair(request, tpch_tiny):
    """The same dataset loaded twice: dictionary on and off."""
    columnar = request.param == "columnar"
    dict_on = load_smc(tpch_tiny, columnar=columnar)
    dict_off = load_smc(tpch_tiny, columnar=columnar, string_dict=False)
    yield dict_on, dict_off
    dict_on["_manager"].close()
    dict_off["_manager"].close()


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_differential_dict_on_off(tpch_pair, name):
    """Code-space kernels return exactly the heap-string rows."""
    dict_on, dict_off = tpch_pair
    baseline = ALL_QUERIES[name](dict_off)
    expected = _canonical(
        baseline.run(params=DEFAULT_PARAMS, workers=1, prune=False)
    )
    query = ALL_QUERIES[name](dict_on)
    for workers, prune in CONFIGS:
        got = query.run(params=DEFAULT_PARAMS, workers=workers, prune=prune)
        assert _canonical(got) == expected, (name, workers, prune)


# ----------------------------------------------------------------------
# Differential: string predicates under churn and compaction
# ----------------------------------------------------------------------

_WORDS = ["alpha", "alphabet", "beta", "betamax", "gamma", "alpaca", ""]


def _worn_notes(string_dict):
    """A multi-block varstring population with most rows freed."""
    m = MemoryManager(block_shift=14, string_dict=string_dict)
    notes = Collection(TNote, manager=m)
    handles = [
        notes.add(text=_WORDS[i % len(_WORDS)] + str(i % 11), stars=i % 5)
        for i in range(3000)
    ]
    for i, h in enumerate(handles):
        if i % 3:
            notes.remove(h)
    return m, notes


def _note_queries(notes):
    return {
        "prefix": notes.query()
        .where(TNote.text.startswith("alpha"))
        .aggregate(n=Count()),
        "contains": notes.query()
        .where(TNote.text.contains("tam"))
        .aggregate(n=Count()),
        "inset": notes.query()
        .where(TNote.text.isin(["beta3", "gamma5", "nosuch"]))
        .aggregate(n=Count()),
        "eq": notes.query()
        .where(TNote.text == "alpaca5")
        .aggregate(n=Count()),
    }


def test_string_predicates_survive_compaction():
    """Dict and no-dict scans agree before and after relocation."""
    m_on, on = _worn_notes(True)
    m_off, off = _worn_notes(False)
    try:
        expected = {
            k: _count(q.run(workers=1, prune=False))
            for k, q in _note_queries(off).items()
        }
        assert expected["prefix"] > 0 and expected["contains"] > 0

        for compacted in (False, True):
            if compacted:
                assert on.compact(occupancy_threshold=0.9) > 0
                off.compact(occupancy_threshold=0.9)
            for workers, prune in CONFIGS:
                got = {
                    k: _count(q.run(workers=workers, prune=prune))
                    for k, q in _note_queries(on).items()
                }
                assert got == expected, (compacted, workers, prune)
    finally:
        m_on.close()
        m_off.close()


# ----------------------------------------------------------------------
# Satellite 2 regression: CHAR padding symmetry in InSet
# ----------------------------------------------------------------------


@pytest.mark.parametrize("columnar", [False, True])
def test_inset_char_trailing_space_symmetry(columnar):
    """SQL CHAR semantics: trailing spaces never decide set membership.

    A stored value carrying explicit trailing spaces must still match an
    unpadded probe (and vice versa) on every engine — the columnar kernel
    used to strip the probe side only.
    """
    m = MemoryManager()
    factory = ColumnarCollection if columnar else Collection
    people = factory(TPerson, manager=m)
    people.add(name="AIR  ", age=1, balance=0)
    people.add(name="MAIL", age=2, balance=0)
    people.add(name="RAIL", age=3, balance=0)
    query = (
        people.query()
        .where(TPerson.name.isin(["AIR", "MAIL  ", "TRUCK"]))
        .aggregate(n=Count())
    )
    assert _count(query.run(workers=1, prune=False)) == 2
    m.close()


# ----------------------------------------------------------------------
# StringDict unit contract
# ----------------------------------------------------------------------


def test_intern_dedups_heap_records_and_refcounts():
    m = MemoryManager()
    notes = Collection(TNote, manager=m)
    sd = notes.strdict
    assert sd is not None

    a = notes.add(text="hello", stars=1)
    bytes_after_first = m.strings.bytes_in_use
    b = notes.add(text="hello", stars=2)
    assert m.strings.bytes_in_use == bytes_after_first  # deduplicated
    code = sd.code_of("hello")
    assert code is not None and code > 0
    assert sd.refcount(code) == 2
    assert sd.live_count == 1
    assert sd.text_of(code) == "hello"

    notes.remove(a)
    assert sd.refcount(code) == 1
    notes.remove(b)
    assert sd.code_of("hello") is None
    assert sd.live_count == 0
    assert m.strings.bytes_in_use == 0
    m.close()


def test_update_rebinds_reference():
    m = MemoryManager()
    notes = Collection(TNote, manager=m)
    sd = notes.strdict
    h = notes.add(text="before", stars=0)
    old = sd.code_of("before")
    h.text = "after"
    assert sd.code_of("before") is None  # last reference released
    assert sd.code_of("after") is not None
    assert h.text == "after"
    assert old is not None
    m.close()


def test_empty_string_is_pinned_code_zero():
    m = MemoryManager()
    notes = Collection(TNote, manager=m)
    sd = notes.strdict
    h = notes.add(text="", stars=0)
    assert sd.code_of("") == 0
    assert sd.text_of(0) == ""
    assert h.text == ""
    notes.remove(h)
    assert sd.code_of("") == 0  # never retired
    m.close()


def test_retired_code_waits_two_epochs_before_reuse():
    m = MemoryManager()
    notes = Collection(TNote, manager=m)
    sd = notes.strdict
    h = notes.add(text="ephemeral", stars=0)
    code = sd.code_of("ephemeral")
    notes.remove(h)

    # Inside the grace period: still decodable, never rebound.
    assert sd.text_of(code) == "ephemeral"
    assert sd.intern("early") != code

    assert m.epochs.try_advance()
    assert m.epochs.try_advance()
    # Past the grace period the retired code is recycled.
    assert sd.intern("late") == code
    assert sd.text_of(code) == "late"
    m.close()


def test_match_sets_follow_dictionary_version():
    m = MemoryManager()
    notes = Collection(TNote, manager=m)
    sd = notes.strdict
    notes.add(text="prefixed-one", stars=0)
    assert len(sd.match_set("prefix", "prefixed")) == 1
    assert sd.match_set("contains", "fixed-o") == sd.match_set(
        "prefix", "prefixed"
    )

    notes.add(text="prefixed-two", stars=0)  # version bump invalidates cache
    assert len(sd.match_set("prefix", "prefixed")) == 2
    probe = frozenset({"prefixed-one", "absent"})
    codes = sd.match_codes("inset", probe)
    assert codes.tolist() == [sd.code_of("prefixed-one")]

    stale = notes.query().where(TNote.text.startswith("prefixed"))
    assert _count(stale.aggregate(n=Count()).run(workers=1)) == 2
    m.close()


def test_no_dict_manager_opts_out():
    m = MemoryManager(string_dict=False)
    notes = Collection(TNote, manager=m)
    assert notes.strdict is None
    h = notes.add(text="plain heap string", stars=1)
    assert h.text == "plain heap string"
    query = (
        notes.query()
        .where(TNote.text.contains("heap"))
        .aggregate(n=Count())
    )
    assert _count(query.run(workers=1)) == 1
    m.close()


def test_collections_of_same_schema_share_one_dictionary(tpch_tiny):
    """All varstring fields of a schema resolve through one intern table."""
    collections = load_smc(tpch_tiny)
    manager = collections["_manager"]
    try:
        part = collections["part"]
        assert part.strdict is not None
        # Every distinct stored string is interned exactly once.
        seen = {}
        for h in part:
            name = h.name
            code = part.strdict.code_of(name)
            assert code is not None
            prev = seen.setdefault(name, code)
            assert prev == code
        assert part.strdict.live_count >= len(seen)
    finally:
        manager.close()
