"""String heap: size classes, reuse, epoch-delayed reclamation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.addressing import NULL_ADDRESS, AddressSpace
from repro.memory.epoch import EpochManager
from repro.memory.stringheap import StringHeap


@pytest.fixture
def heap():
    space = AddressSpace(block_shift=12)
    return StringHeap(space, EpochManager())


def test_size_class_minimum():
    assert StringHeap.size_class(0) == 16
    assert StringHeap.size_class(12) == 16


def test_size_class_powers_of_two():
    assert StringHeap.size_class(13) == 32  # 13 + 4 > 16
    assert StringHeap.size_class(28) == 32
    assert StringHeap.size_class(29) == 64


def test_empty_string_is_null(heap):
    assert heap.alloc("") == NULL_ADDRESS
    assert heap.read(NULL_ADDRESS) == ""


def test_roundtrip(heap):
    addr = heap.alloc("hello world")
    assert heap.read(addr) == "hello world"


def test_unicode_roundtrip(heap):
    addr = heap.alloc("héllo – wörld ✓")
    assert heap.read(addr) == "héllo – wörld ✓"


def test_distinct_allocations(heap):
    a = heap.alloc("aaa")
    b = heap.alloc("bbb")
    assert a != b
    assert heap.read(a) == "aaa"
    assert heap.read(b) == "bbb"


def test_free_defers_reuse_by_two_epochs(heap):
    epochs = heap._epochs
    addr = heap.alloc("victim")
    heap.free(addr)
    # Not reusable yet: a fresh allocation must not land on the record.
    a2 = heap.alloc("newbie")
    assert a2 != addr
    epochs.try_advance()
    epochs.try_advance()
    a3 = heap.alloc("recycle")
    assert a3 == addr  # same size class, now safe


def test_reuse_respects_size_class(heap):
    epochs = heap._epochs
    small = heap.alloc("xy")
    heap.free(small)
    epochs.try_advance()
    epochs.try_advance()
    big = heap.alloc("z" * 100)
    assert big != small


def test_oversized_string_rejected(heap):
    with pytest.raises(ValueError):
        heap.alloc("x" * 5000)  # > 4 KiB block


def test_bytes_in_use_accounting(heap):
    assert heap.bytes_in_use == 0
    addr = heap.alloc("abcdef")
    assert heap.bytes_in_use == 16
    heap.free(addr)
    assert heap.bytes_in_use == 0


def test_spills_to_new_blocks(heap):
    for i in range(600):  # 600 * 16B > one 4 KiB block
        heap.alloc(f"s{i:04d}")
    assert heap.block_count >= 3


def test_close_releases_blocks(heap):
    heap.alloc("data")
    space = heap._space
    assert space.live_block_count == 1
    heap.close()
    assert space.live_block_count == 0


@settings(max_examples=50)
@given(st.lists(st.text(max_size=200), min_size=1, max_size=40))
def test_many_roundtrips_property(texts):
    space = AddressSpace(block_shift=12)
    heap = StringHeap(space, EpochManager())
    addrs = [heap.alloc(t) for t in texts]
    for t, a in zip(texts, addrs):
        assert heap.read(a) == t
