"""Model-based property test: Collection vs a plain dict model.

A hypothesis state machine drives random sequences of adds, removes,
epoch advances, enumerations and compactions against a row SMC, checking
after every step that the collection's live contents exactly match a
reference dict — the collection's containment semantics in miniature.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.collection import Collection
from repro.errors import NullReferenceError
from repro.memory.manager import MemoryManager

from tests.schemas import TPerson


class CollectionModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.manager = MemoryManager(block_shift=10, reclamation_threshold=0.1)
        self.collection = Collection(TPerson, manager=self.manager)
        self.model = {}  # handle -> (name, age)
        self.removed = []
        self.counter = 0

    @rule(age=st.integers(min_value=0, max_value=10**6))
    def add(self, age):
        self.counter += 1
        name = f"p{self.counter}"
        handle = self.collection.add(name=name, age=age)
        self.model[handle] = (name, age)

    @rule()
    def remove_one(self):
        if not self.model:
            return
        handle = next(iter(self.model))
        self.collection.remove(handle)
        del self.model[handle]
        self.removed.append(handle)

    @rule()
    def advance_epoch(self):
        self.manager.advance_epoch()

    @rule()
    def compact(self):
        self.collection.compact(occupancy_threshold=0.6)

    @rule(age=st.integers(min_value=0, max_value=100))
    def update_age(self, age):
        if not self.model:
            return
        handle = next(iter(self.model))
        handle.age = age
        name, __ = self.model[handle]
        self.model[handle] = (name, age)

    @invariant()
    def live_count_matches(self):
        if not hasattr(self, "collection"):
            return
        assert len(self.collection) == len(self.model)

    @invariant()
    def contents_match(self):
        if not hasattr(self, "collection"):
            return
        got = sorted((h.name, h.age) for h in self.collection)
        expected = sorted(self.model.values())
        assert got == expected

    @invariant()
    def handles_read_back(self):
        if not hasattr(self, "collection"):
            return
        for handle, (name, age) in self.model.items():
            assert handle.name == name
            assert handle.age == age

    @invariant()
    def removed_stay_null(self):
        if not hasattr(self, "collection"):
            return
        for handle in self.removed[-5:]:
            assert not handle.is_alive
            with pytest.raises(NullReferenceError):
                __ = handle.age

    def teardown(self):
        if hasattr(self, "manager"):
            self.manager.close()


CollectionModel.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestCollectionModel = CollectionModel.TestCase
