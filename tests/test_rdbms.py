"""Column-store comparator: tables, indexes, operators."""

import datetime
from decimal import Decimal

import numpy as np
import pytest

from repro.rdbms import engine as E
from repro.rdbms.table import ColumnTable


@pytest.fixture
def table():
    rows = [
        {"k": i, "price": Decimal(i) / 2, "day": datetime.date(2000, 1, 1 + i), "tag": f"t{i % 3}"}
        for i in range(10)
    ]
    return ColumnTable.from_rows("t", rows, ["k", "price", "day", "tag"])


def test_encoding_kinds(table):
    assert table.columns["k"].dtype == np.int64
    assert table.columns["price"].dtype == np.int64  # scaled decimal
    assert table.columns["day"].dtype == np.int32
    assert table.columns["tag"].dtype == np.int32  # dictionary codes
    assert set(table.dictionaries["tag"]) == {"t0", "t1", "t2"}


def test_encode_value(table):
    assert table.encode_value("price", Decimal("1.50")) == 150
    assert table.encode_value("day", datetime.date(2000, 1, 2)) == table.columns["day"][1]
    assert table.encode_value("tag", "t1") == table.columns["tag"][1]
    assert table.encode_value("tag", "missing") == -1


def test_decode_value(table):
    assert table.decode_value("tag", table.columns["tag"][0]) == "t0"
    assert table.decode_value("price", 150, "decimal") == Decimal("1.50")
    assert table.decode_value("day", 0, "date") == datetime.date(1970, 1, 1)


def test_range_scan_without_index(table):
    rows = table.range_scan("k", 3, 6)
    assert sorted(table.column("k", rows).tolist()) == [3, 4, 5, 6]
    rows = table.range_scan("k", 3, 6, lo_open=True, hi_open=True)
    assert sorted(table.column("k", rows).tolist()) == [4, 5]


def test_clustered_range_scan_matches_full_scan(table):
    unindexed = set(table.range_scan("k", 2, 7).tolist())
    table.create_clustered_index("k")
    indexed = set(table.range_scan("k", 2, 7).tolist())
    assert indexed == unindexed


def test_range_scan_open_bounds_with_index(table):
    table.create_clustered_index("k")
    rows = table.range_scan("k", None, 4, hi_open=True)
    assert sorted(table.column("k", rows).tolist()) == [0, 1, 2, 3]
    rows = table.range_scan("k", 8, None)
    assert sorted(table.column("k", rows).tolist()) == [8, 9]


def test_string_codes_where(table):
    codes = table.string_codes_where("tag", lambda t: t.endswith("2"))
    assert [table.dictionaries["tag"][c] for c in codes] == ["t2"]


def test_select_operator(table):
    rows = E.select(table, None, "price", ">=", Decimal("2.00"))
    assert all(int(v) >= 200 for v in table.column("price", rows))
    narrowed = E.select(table, rows, "k", "<", 9)
    assert set(narrowed.tolist()) < set(rows.tolist()) | {rows.tolist()[0]}


def test_select_in_operator(table):
    codes = table.string_codes_where("tag", lambda t: t == "t0")
    rows = E.select_in(table, None, "tag", codes)
    assert sorted(table.column("k", rows).tolist()) == [0, 3, 6, 9]


def test_hash_join_unique():
    built = E.build_hash_unique(np.array([1, 2, 3]), np.array([10, 20, 30]))
    probe, build = E.probe_hash_unique(
        np.array([2, 3, 4]), np.array([100, 101, 102]), built
    )
    assert probe.tolist() == [100, 101]
    assert build.tolist() == [20, 30]


def test_hash_join_duplicates():
    built = E.build_hash(np.array([1, 1, 2]), np.array([10, 11, 20]))
    assert built == {1: [10, 11], 2: [20]}


def test_semi_join():
    rows = E.semi_join(
        np.array([1, 2, 3, 4]), np.array([0, 1, 2, 3]), {2, 4}
    )
    assert rows.tolist() == [1, 3]


def test_group_aggregator_sum_count_avg():
    agg = E.GroupAggregator([("s", "sum"), ("n", "count"), ("a", "avg")])
    keys = [np.array([0, 0, 1])]
    vals = np.array([10, 20, 30], dtype=np.int64)
    agg.absorb(keys, [vals, None, vals])
    agg.absorb(keys, [vals, None, vals])  # second batch merges
    res = agg.results()
    assert res[(0,)][0] == 60
    assert res[(0,)][1] == 4
    assert res[(0,)][2] == (60, 4)
    assert res[(1,)][0] == 60


def test_group_aggregator_min_max():
    agg = E.GroupAggregator([("lo", "min"), ("hi", "max")])
    keys = [np.array([0, 0, 1])]
    vals = np.array([5, 2, 9], dtype=np.int64)
    agg.absorb(keys, [vals, vals])
    agg.absorb([np.array([0])], [np.array([1], dtype=np.int64)] * 2)
    res = agg.results()
    assert res[(0,)] == [1, 5]
    assert res[(1,)] == [9, 9]


def test_group_aggregator_no_keys():
    agg = E.GroupAggregator([("n", "count")])
    agg.absorb([], [None])
    # zero-length batch is a no-op
    res = agg.results()
    assert res == {} or res == {(): [0]}


def test_top_k_rows():
    rows = [(1, "b"), (3, "a"), (2, "c")]
    out = E.top_k_rows(list(rows), [(0, True)], 2)
    assert out == [(3, "a"), (2, "c")]
    out = E.top_k_rows(list(rows), [(1, False)], None)
    assert [r[1] for r in out] == ["a", "b", "c"]


def test_memory_bytes(table):
    base = table.memory_bytes()
    table.create_clustered_index("k")
    assert table.memory_bytes() > base
