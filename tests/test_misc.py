"""Small-surface coverage: errors, results, handles, default manager."""

import pytest

from repro import default_manager, reset_default_manager
from repro.core.collection import Collection
from repro.errors import (
    ConcurrencyProtocolError,
    IncarnationOverflowError,
    MemoryExhaustedError,
    NullReferenceError,
    SmcError,
    TabularTypeError,
)
from repro.query.builder import Result

from tests.schemas import TOrder, TPerson


def test_error_hierarchy():
    assert issubclass(NullReferenceError, SmcError)
    assert issubclass(TabularTypeError, SmcError)
    assert issubclass(TabularTypeError, TypeError)
    assert issubclass(MemoryExhaustedError, MemoryError)
    assert issubclass(IncarnationOverflowError, SmcError)
    assert issubclass(ConcurrencyProtocolError, SmcError)


def test_result_container():
    r = Result(["a", "b"], [(1, "x"), (2, "y")])
    assert len(r) == 2
    assert list(r) == [(1, "x"), (2, "y")]
    assert r[0] == (1, "x")
    assert r.column("b") == ["x", "y"]
    assert r.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]


def test_handle_as_dict(manager):
    persons = Collection(TPerson, manager=manager)
    orders = Collection(TOrder, manager=manager)
    p = persons.add(name="Ada", age=36)
    o = orders.add(orderkey=1, owner=p)
    d = o.as_dict()
    assert d["orderkey"] == 1
    assert d["owner"].name == "Ada"
    assert set(d) == {f.name for f in TOrder.__fields__}


def test_handle_repr_states(manager):
    persons = Collection(TPerson, manager=manager)
    h = persons.add(name="Ada", age=36)
    assert "Ada" in repr(h)
    persons.remove(h)
    assert "null" in repr(h)


def test_default_manager_shared_and_resettable():
    reset_default_manager()
    a = default_manager()
    assert default_manager() is a
    coll = Collection(TPerson)  # implicit default manager
    assert coll.manager is a
    coll.add(name="x", age=1)
    reset_default_manager()
    b = default_manager()
    assert b is not a
    reset_default_manager()


def test_collection_repr(manager):
    persons = Collection(TPerson, manager=manager)
    persons.add(name="x", age=1)
    text = repr(persons)
    assert "TPerson" in text and "1 objects" in text
