"""The paper's motivating scenario: an in-process BI application.

Section 1 of the paper imagines a business-intelligence application that
loads the company's recent data into collections of managed objects at
startup and analyses it with language-integrated queries — no external
DBMS, no object-relational translation layer.

This example loads a TPC-H-shaped dataset into self-managed collections,
runs three "dashboard" queries (pricing summary, top orders by revenue,
promotion-style revenue scan), and shows what the SMC design buys:
off-heap residency (the CPython garbage collector tracks a few block
buffers instead of hundreds of thousands of objects) and compiled query
speed versus the interpreted LINQ-to-objects baseline.
"""

import gc
import time

from repro.memory.manager import MemoryManager
from repro.tpch.datagen import generate
from repro.tpch.loader import load_smc
from repro.tpch.queries import DEFAULT_PARAMS, QUERIES

SCALE_FACTOR = 0.005  # ~30k lineitems; raise for a heavier demo


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:<42} {(time.perf_counter() - start) * 1000:8.1f} ms")
    return result


def main() -> None:
    print(f"Generating TPC-H data at SF={SCALE_FACTOR} ...")
    data = generate(SCALE_FACTOR, seed=42)
    manager = MemoryManager()
    print("Loading into self-managed collections ...")
    collections = load_smc(data, manager=manager)
    counts = ", ".join(f"{k}={v}" for k, v in data.row_counts().items())
    print(f"  loaded: {counts}")
    print(
        f"  off-heap: {manager.total_bytes() / 2**20:.1f} MiB in "
        f"{manager.space.live_block_count} blocks"
    )

    # The garbage collector's view of the world: the row data is invisible
    # to it (one bytearray per block), so collection cycles stay cheap no
    # matter how much business data is resident.
    start = time.perf_counter()
    gc.collect()
    print(f"  gc.collect() with all data resident: "
          f"{(time.perf_counter() - start) * 1000:.1f} ms")

    print("\nDashboard queries (compiled):")
    q1 = timed("Q1  pricing summary", lambda: QUERIES["q1"](collections).run(params=DEFAULT_PARAMS))
    q3 = timed("Q3  top orders by revenue", lambda: QUERIES["q3"](collections).run(params=DEFAULT_PARAMS))
    q6 = timed("Q6  revenue-change forecast", lambda: QUERIES["q6"](collections).run(params=DEFAULT_PARAMS))

    print("\nQ1 pricing summary:")
    header = " | ".join(f"{c:>14}" for c in q1.columns[:6])
    print("  " + header)
    for row in q1.rows:
        print("  " + " | ".join(f"{str(v):>14}" for v in row[:6]))

    print("\nQ3 shipping priority (top 3):")
    for row in q3.rows[:3]:
        print(f"  order {row[0]}: revenue {row[3]} (placed {row[1]})")

    print(f"\nQ6 forecast revenue change: {q6.rows[0][0]}")

    # Compiled vs interpreted (the LINQ-to-objects baseline of the paper).
    print("\nCompiled vs interpreted (Q6):")
    q = QUERIES["q6"](collections)
    timed("compiled", lambda: q.run(params=DEFAULT_PARAMS))
    timed("interpreted (LINQ-to-objects)", lambda: q.run(engine="interpreted", params=DEFAULT_PARAMS))

    manager.close()


if __name__ == "__main__":
    main()
