"""Data lifecycle: snapshots, bulk mutation, auto-compaction, repair.

A day in the life of a long-running SMC application:

1. generate business data and persist it to a binary snapshot,
2. restart (reload the snapshot into a fresh memory manager),
3. age out old records in bulk (``remove_where``) with the
   auto-compaction policy keeping the footprint tight,
4. bulk-correct records (``update_where``),
5. run the reference-repair scan and print the memory-system report.
"""

import datetime
import os
import tempfile

from repro.core.collection import Collection
from repro.core.repair import repair_references
from repro.io import load_collections, save_collections
from repro.memory.manager import MemoryManager
from repro.schema import (
    CharField,
    DateField,
    DecimalField,
    Int32Field,
    RefField,
    Tabular,
)


class Device(Tabular):
    device_id = Int32Field()
    model = CharField(16)


class Reading(Tabular):
    device = RefField(Device)
    device_id = Int32Field()
    taken = DateField()
    value = DecimalField(2)
    status = CharField(8)


def build_day_one(manager: MemoryManager):
    devices = Collection(Device, manager=manager)
    readings = Collection(
        Reading, manager=manager, auto_compact_occupancy=0.55
    )
    base = datetime.date(2026, 1, 1)
    dev_handles = [
        devices.add(device_id=i, model=f"sensor-{i % 4}") for i in range(20)
    ]
    for day in range(60):
        for d in dev_handles:
            readings.add(
                device=d,
                device_id=d.device_id,
                taken=base + datetime.timedelta(days=day),
                value=(day * 7 + d.device_id) % 100,
                status="ok" if day % 9 else "suspect",
            )
    return devices, readings


def main() -> None:
    snap = os.path.join(tempfile.gettempdir(), "lifecycle.smcsnap")

    # Day one: build and persist.
    manager = MemoryManager(block_shift=14)
    devices, readings = build_day_one(manager)
    rows = save_collections(snap, {"devices": devices, "readings": readings})
    print(f"day 1: persisted {rows} rows to {snap}")
    manager.close()

    # Day two: restart from the snapshot (small blocks so the shrinkage
    # policy has something visible to compact in this demo).
    loaded = load_collections(snap, manager=MemoryManager(block_shift=12))
    manager = loaded["_manager"]
    readings = loaded["readings"]
    # Re-enable the shrinkage policy on the reloaded collection.
    readings.auto_compact_occupancy = 0.55
    print(
        f"day 2: reloaded {len(readings)} readings in "
        f"{readings.context.block_count()} blocks"
    )

    # Age out the first month of data in one pass.
    cutoff = datetime.date(2026, 2, 1)
    blocks_before = readings.context.block_count()
    removed = readings.remove_where(Reading.taken < cutoff)
    print(
        f"retention: removed {removed} readings; blocks "
        f"{blocks_before} -> {readings.context.block_count()} "
        f"(auto-compaction ran {manager.stats.compactions}x)"
    )

    # Bulk-correct the suspect rows.
    fixed = readings.update_where(Reading.status == "suspect", status="ok")
    print(f"quality: corrected {fixed} suspect readings")

    # Reference hygiene + final report.
    stats = repair_references(manager)
    print(f"repair scan: {stats}")
    print()
    print(manager.describe())
    manager.close()
    os.unlink(snap)


if __name__ == "__main__":
    main()
