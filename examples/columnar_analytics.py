"""Columnar SMCs (paper section 4.1): same API, columnar physics.

Because an SMC owns the memory of its objects and every block holds a
single type, the collection can decouple the storage layout from the
class definition: :class:`ColumnarCollection` stores each field as a
per-block column while keeping the exact add/remove/reference/query API
of row-layout collections.  Scan-dominated analytics get faster; the
application code does not change.
"""

import random
import time
from decimal import Decimal

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.memory.manager import MemoryManager
from repro.query.builder import Avg, Count, Sum
from repro.query.expressions import param
from repro.schema import (
    CharField,
    DateField,
    DecimalField,
    Int32Field,
    Tabular,
)

N = 200_000


class Trade(Tabular):
    symbol = CharField(6)
    shares = Int32Field()
    price = DecimalField(2)
    fee = DecimalField(4)
    day = DateField()


def load(collection) -> None:
    rnd = random.Random(5)
    symbols = ["AAPL", "MSFT", "NVDA", "ASML", "TSM", "AMD"]
    import datetime

    base = datetime.date(2024, 1, 1)
    for i in range(N):
        collection.add(
            symbol=rnd.choice(symbols),
            shares=rnd.randrange(1, 500),
            price=Decimal(rnd.randrange(1000, 90000)).scaleb(-2),
            fee=Decimal(rnd.randrange(0, 5000)).scaleb(-4),
            day=base + datetime.timedelta(days=rnd.randrange(0, 250)),
        )


def build_query(collection):
    return (
        collection.query()
        .where(Trade.shares >= param("min_shares"))
        .group_by(symbol=Trade.symbol)
        .aggregate(
            trades=Count(),
            volume=Sum(Trade.shares * Trade.price),
            avg_fee=Avg(Trade.fee),
        )
        .order_by("-volume")
    )


def main() -> None:
    manager = MemoryManager()
    row = Collection(Trade, manager=manager)
    col_manager = MemoryManager()
    columnar = ColumnarCollection(Trade, manager=col_manager)

    print(f"Loading {N} trades into row and columnar SMCs ...")
    load(row)
    load(columnar)

    q_row, q_col = build_query(row), build_query(columnar)
    # Warm up (compile/cache), then time.
    q_row.run(min_shares=100)
    q_col.run(min_shares=100)

    start = time.perf_counter()
    result_row = q_row.run(min_shares=100)
    t_row = time.perf_counter() - start
    start = time.perf_counter()
    result_col = q_col.run(min_shares=100)
    t_col = time.perf_counter() - start

    assert sorted(result_row.rows) == sorted(result_col.rows)
    print(f"\n  row layout     : {t_row * 1000:7.1f} ms (strided block views)")
    print(f"  columnar layout: {t_col * 1000:7.1f} ms (contiguous columns)")
    print(f"  speedup        : {t_row / t_col:5.2f}x\n")

    print("volume leaders:")
    for symbol, trades, volume, avg_fee in result_col.rows:
        print(f"  {symbol:<6} {trades:>7} trades, volume {volume:>15}")

    manager.close()
    col_manager.close()


if __name__ == "__main__":
    main()
