"""Compaction and direct pointers (paper sections 5 and 6).

A collection is bulk-loaded, then heavily shrunk, leaving its blocks
sparsely occupied.  Compaction packs the survivors into fresh blocks and
returns the emptied ones to the pool — while old handles and references
from another collection keep working, because the indirection table (or,
in direct-pointer mode, forwarding tombstones plus the post-compaction
pointer-rewrite scan) re-routes every access to the new location.
"""

from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.schema import CharField, DecimalField, Int32Field, RefField, Tabular


class Product(Tabular):
    sku = Int32Field()
    name = CharField(24)
    price = DecimalField(2)


class Shelf(Tabular):
    position = Int32Field()
    product = RefField(Product)


def run(direct_pointers: bool) -> None:
    mode = "direct pointers" if direct_pointers else "indirection table"
    print(f"\n=== Compaction with {mode} ===")
    manager = MemoryManager(block_shift=14, direct_pointers=direct_pointers)
    products = Collection(Product, manager=manager)
    shelves = Collection(Shelf, manager=manager)

    handles = [
        products.add(sku=i, name=f"product-{i}", price=i)
        for i in range(3000)
    ]
    keep = handles[::10]
    shelf_handles = [
        shelves.add(position=i, product=h) for i, h in enumerate(keep)
    ]
    print(
        f"loaded {len(products)} products in "
        f"{products.context.block_count()} blocks "
        f"({products.memory_bytes() // 1024} KiB)"
    )

    for h in handles:
        if h not in set(keep):
            products.remove(h)
    print(
        f"after shrink: {len(products)} live products still spread over "
        f"{products.context.block_count()} blocks"
    )

    moved = products.compact(occupancy_threshold=0.5)
    print(
        f"compaction relocated {moved} objects -> "
        f"{products.context.block_count()} blocks "
        f"({products.memory_bytes() // 1024} KiB)"
    )

    # Old handles survived the relocation ...
    assert all(h.name == f"product-{h.sku}" for h in keep)
    # ... and so did references from the other collection.
    assert all(
        s.product.sku == keep[i].sku for i, s in enumerate(shelf_handles)
    )
    print("all pre-compaction handles and cross-collection references OK")
    stats = manager.stats
    print(
        f"stats: {stats.relocations} relocations, "
        f"{stats.compactions} compaction cycle(s), "
        f"{stats.bailed_relocations} reader bail-outs, "
        f"{stats.helped_relocations} reader-helped moves"
    )
    manager.close()


if __name__ == "__main__":
    run(direct_pointers=False)
    run(direct_pointers=True)
