"""Quickstart: self-managed collections in five minutes.

Demonstrates the core API of the reproduction:

* declaring tabular classes (fixed layout, references between types),
* collection-owned object lifetimes (add / remove, null-on-remove),
* language-integrated queries (interpreted and compiled),
* memory introspection (blocks, off-heap bytes, epochs).

Run with ``python examples/quickstart.py``.
"""

from decimal import Decimal

from repro import (
    CharField,
    Collection,
    DecimalField,
    Int32Field,
    MemoryManager,
    NullReferenceError,
    RefField,
    Tabular,
)
from repro.query import Avg, Count, Sum, param


# --- 1. Declare tabular classes -----------------------------------------
# Tabular classes are schema declarations: every object has a fixed size
# and layout, and references may only target other tabular classes.


class Person(Tabular):
    name = CharField(24)
    age = Int32Field()
    balance = DecimalField(2)


class Order(Tabular):
    orderkey = Int32Field()
    owner = RefField(Person)
    total = DecimalField(2)


def main() -> None:
    # --- 2. Create collections on a shared memory manager ---------------
    manager = MemoryManager()
    persons = Collection(Person, manager=manager)
    orders = Collection(Order, manager=manager)

    # --- 3. Containment semantics: Add constructs, Remove destroys ------
    adam = persons.add(name="Adam", age=27, balance=Decimal("120.50"))
    eve = persons.add(name="Eve", age=31, balance=Decimal("804.00"))
    for i in range(5):
        orders.add(orderkey=i, owner=adam if i % 2 else eve, total=Decimal(i) * 10)

    print(f"{len(persons)} persons, {len(orders)} orders")
    print("first order owner:", next(iter(orders)).owner.name)

    # Removing an object nulls every reference to it — the paper's
    # table-like semantics (section 2).
    persons.remove(adam)
    try:
        for o in orders:
            owner = o.owner  # decoding the reference checks liveness
            if owner is not None:
                owner.name
    except NullReferenceError:
        print("dereferencing a removed person raises NullReferenceError ✓")

    # --- 4. Language-integrated queries ---------------------------------
    # Query structure is static; parameters bind at run time and the
    # compiled query function is cached.
    rich = (
        persons.query()
        .where(Person.balance >= param("floor"))
        .select(name=Person.name, balance=Person.balance)
        .order_by("-balance")
    )
    print("rich persons:", rich.run(floor=Decimal("100")).rows)

    summary = (
        persons.query()
        .group_by(bracket=Person.age)
        .aggregate(n=Count(), avg_balance=Avg(Person.balance))
        .order_by("bracket")
    )
    print("by age:", summary.run().rows)

    # The interpreted engine (the LINQ-to-objects baseline) returns the
    # same results:
    assert summary.run(engine="interpreted").rows == summary.run().rows

    # --- 5. Peek at the memory system ------------------------------------
    print(
        f"off-heap: {manager.total_bytes() // 1024} KiB in "
        f"{manager.space.live_block_count} blocks; "
        f"global epoch {manager.epochs.global_epoch}; "
        f"{manager.stats.allocations} allocs / {manager.stats.frees} frees"
    )
    manager.close()


if __name__ == "__main__":
    main()
