"""Concurrent refresh streams with live analytics (paper Figure 8 setting).

Writer threads continuously refresh a lineitem collection — one stream
inserts 0.1% of the population, the next removes 0.1% by predicate in a
single enumeration — while a reader thread keeps running an aggregation
query.  Epoch-based reclamation (paper section 3.4) is what makes this
safe: removed slots linger in *limbo* until no concurrent reader can
still touch them, and the allocator recycles them two epochs later.

Watch the final stats: epoch advances and limbo-slot reuses show the
reclamation machinery at work; the reader observes only consistent
snapshots (counts never include half-written objects).
"""

import random
import threading
import time

from repro.bench.workloads import RefreshStreams, lineitem_values
from repro.core.collection import Collection
from repro.memory.manager import MemoryManager
from repro.query.builder import Count, Sum
from repro.tpch.schema import Lineitem

POPULATION = 10_000
DURATION = 2.0  # seconds


def main() -> None:
    manager = MemoryManager()
    lineitems = Collection(Lineitem, manager=manager)
    rnd = random.Random(23)
    print(f"Loading {POPULATION} lineitems ...")
    for i in range(POPULATION):
        lineitems.add(**lineitem_values(rnd, i))

    def remove_by_orderkeys(victims) -> int:
        removed = 0
        for h in list(lineitems):
            if h.orderkey in victims:
                lineitems.remove(h)
                removed += 1
        return removed

    streams = RefreshStreams(
        insert=lambda values: lineitems.add(**values),
        keys=lambda: [h.orderkey for h in lineitems],
        remove_by_orderkeys=remove_by_orderkeys,
        initial_population=POPULATION,
    )

    query = lineitems.query().aggregate(
        n=Count(), qty=Sum(Lineitem.quantity)
    )

    stop = threading.Event()
    observations = []

    def reader() -> None:
        while not stop.is_set():
            result = query.run()
            observations.append(result.rows[0])

    def writer(idx: int) -> None:
        # Each thread alternates the two stream kinds with equal
        # frequency, as in the paper's refresh-stream workload.
        insert_turn = idx % 2 == 0
        while not stop.is_set():
            if insert_turn:
                streams.run_insert_stream()
            else:
                streams.run_delete_stream()
            insert_turn = not insert_turn

    threads = [threading.Thread(target=reader)]
    threads += [threading.Thread(target=writer, args=(i,)) for i in range(2)]
    print(f"Running refresh streams + live analytics for {DURATION}s ...")
    for t in threads:
        t.start()
    time.sleep(DURATION)
    stop.set()
    for t in threads:
        t.join()

    counts = [row[0] for row in observations]
    print(f"\nreader executed {len(observations)} aggregation queries")
    print(f"  population drifted between {min(counts)} and {max(counts)}")
    print(f"  final population: {len(lineitems)}")
    stats = manager.stats
    print(
        f"  memory system: {stats.allocations} allocs, {stats.frees} frees, "
        f"{stats.limbo_reuses} limbo-slot reuses, "
        f"{stats.blocks_recycled} blocks recycled, "
        f"{stats.epoch_advances} epoch advances "
        f"(global epoch {manager.epochs.global_epoch})"
    )
    print(
        f"  footprint: {manager.total_bytes() / 2**20:.1f} MiB in "
        f"{manager.space.live_block_count} blocks"
    )
    manager.close()


if __name__ == "__main__":
    main()
