"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``gen``
    Generate a TPC-H dataset, load it into self-managed collections and
    write a snapshot file.
``info``
    Describe a snapshot: tables, row counts, memory footprint.
``query``
    Run one of the built-in TPC-H queries (q1–q6, q7/q10/q12/q14)
    against a snapshot and print the result table.
``bench``
    Run one figure-reproduction bench module through pytest.
``serve``
    Serve a snapshot over the concurrent query service (threaded TCP,
    length-prefixed JSON protocol; see ``docs/service.md``).  With
    ``--data-dir`` the server runs persistently: mutations are
    write-ahead logged, and a restart recovers the directory.
``recover``
    Recover a data directory (checkpoint + log replay) and report what
    was rebuilt, without serving.
``log-dump``
    Pretty-print a write-ahead log segment record by record.
``snapshot`` / ``restore``
    Export a data directory to a portable snapshot file, or initialize
    a fresh data directory from one (see ``docs/durability.md``).

Examples::

    python -m repro gen --sf 0.01 --out tpch.smcsnap
    python -m repro info tpch.smcsnap
    python -m repro query tpch.smcsnap q1 --engine compiled
    python -m repro bench fig11
    python -m repro serve tpch.smcsnap --data-dir state/
    python -m repro recover state/
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import List, Optional


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.io.snapshot import save_collections
    from repro.tpch.datagen import generate
    from repro.tpch.loader import load_smc

    print(f"generating TPC-H data at SF={args.sf} (seed {args.seed}) ...")
    start = time.perf_counter()
    data = generate(args.sf, seed=args.seed)
    collections = load_smc(
        data, columnar=args.columnar, string_dict=not args.no_dict
    )
    rows = save_collections(args.out, collections)
    elapsed = time.perf_counter() - start
    counts = ", ".join(f"{k}={v}" for k, v in data.row_counts().items())
    print(f"wrote {rows} rows ({counts}) to {args.out} in {elapsed:.1f}s")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.io.snapshot import load_collections

    collections = load_collections(
        args.snapshot,
        columnar=args.columnar,
        string_dict=not args.no_dict,
        memory_budget=args.memory_budget,
        block_shift=args.block_shift,
    )
    manager = collections.pop("_manager")
    if manager.pager is not None:
        # Enforce the budget once so the residency report reflects it
        # (loading leaves every block hot; demotion is operation-boundary
        # work).
        manager.pager.maintain()
    residency = (
        manager.pager.residency_by_context()
        if manager.pager is not None
        else None
    )
    print(f"snapshot {args.snapshot}:")
    for name, coll in collections.items():
        line = (
            f"  {name:<12} {len(coll):>9} rows   "
            f"{coll.context.block_count():>4} blocks   "
            f"{coll.memory_bytes() / 2**20:8.1f} MiB"
        )
        if residency is not None:
            tiers = residency.get(
                coll.context.context_id, {"hot": 0, "cold": 0}
            )
            tier_mib = tiers["cold"] * manager.space.block_size / 2**20
            line += (
                f"   hot {tiers['hot']:>4}  cold {tiers['cold']:>4}"
                f"  tier {tier_mib:6.1f} MiB"
            )
        print(line)
    print()
    print(manager.describe())
    # Live telemetry through the service metrics registry: the same
    # instrumentation the metrics endpoint scrapes (epoch, per-context
    # limbo fraction, block counts, string-dict distinct counts).
    from repro.service.metrics import MetricsRegistry, instrument_manager

    registry = MetricsRegistry()
    instrument_manager(registry, manager)
    tel = manager.telemetry()
    print()
    print(
        f"telemetry: global epoch {tel['global_epoch']}, "
        f"min active {tel['min_active_epoch']}, "
        f"{tel['leases']} leases, {tel['live_blocks']} live blocks"
    )
    for ctx in tel["contexts"]:
        print(
            f"  {ctx['name']:<12} limbo {ctx['limbo_fraction']:6.1%}  "
            f"{ctx['blocks']:>4} blocks  {ctx['live']:>9} live  "
            f"queue {ctx['reclaim_queue']}"
        )
    if tel["string_dicts"]:
        counts = ", ".join(
            f"{name}={n}" for name, n in sorted(tel["string_dicts"].items())
        )
        print(f"  string dictionaries: {counts}")
    if tel.get("tier"):
        t = tel["tier"]
        print(
            f"  tier: budget {t['budget_bytes'] / 2**20:.1f} MiB, "
            f"{t['hot_blocks']} hot / {t['cooling_blocks']} cooling / "
            f"{t['cold_blocks']} cold blocks, "
            f"tier file {t['tier_file_bytes'] / 2**20:.1f} MiB, "
            f"{t['faults']} faults, {t['evictions']} evictions, "
            f"{t['spills']} spills"
        )
    if args.metrics:
        print()
        print(registry.expose(), end="")
    manager.close()
    return 0


def _recover_data_dir(data_dir: str):
    """Shared recovery entry for recover/snapshot/serve: returns
    ``(collections, report)`` or ``None`` after printing the error."""
    from repro.durability import RecoveryError, recover
    from repro.durability.checkpoint import DataDir

    if not DataDir(data_dir).is_initialized():
        print(
            f"{data_dir} is not an initialized data directory (no MANIFEST); "
            f"create one with 'repro restore' or 'repro serve --data-dir'",
            file=sys.stderr,
        )
        return None
    try:
        return recover(data_dir)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return None


def _parse_workers(value: str) -> int:
    """``--workers`` accepts a count or ``auto`` (= ``os.cpu_count()``)."""
    import os

    if value == "auto":
        return os.cpu_count() or 1
    return int(value)


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.server import QueryService, ServiceServer

    store = None
    replication = None
    exec_workers = _parse_workers(args.exec_workers or "0")
    use_shm = args.shm or exec_workers > 0
    if use_shm and (args.data_dir or args.replica_of):
        # The durable store recovers onto its own heap-backed manager;
        # shared-memory serving is snapshot-only for now.
        print(
            "--shm/--exec-workers serve a snapshot in memory and cannot "
            "be combined with --data-dir or --replica-of",
            file=sys.stderr,
        )
        return 2
    if args.memory_budget and (args.data_dir or args.replica_of):
        # Same constraint: the pager shapes the manager at load time.
        print(
            "--memory-budget serves a snapshot under a pager and cannot "
            "be combined with --data-dir or --replica-of",
            file=sys.stderr,
        )
        return 2
    if args.replica_of:
        from repro.durability.replication import ReplicationClient

        if not args.data_dir:
            print("--replica-of requires --data-dir", file=sys.stderr)
            return 2
        if args.snapshot:
            print(
                "--replica-of clones the primary; drop the snapshot argument",
                file=sys.stderr,
            )
            return 2
        try:
            phost, __, pport = args.replica_of.rpartition(":")
            replication = ReplicationClient(
                phost or "127.0.0.1",
                int(pport),
                args.data_dir,
                fsync_policy=args.fsync,
            )
        except ValueError:
            print(
                f"--replica-of wants HOST:PORT, got {args.replica_of!r}",
                file=sys.stderr,
            )
            return 2
        store = replication.sync()
        print(
            f"replica of {args.replica_of} caught up at "
            f"LSN {replication.applied_lsn}"
        )
        collections = dict(store.collections)
        collections["_manager"] = store.manager
        manager = store.manager
        source = args.data_dir
    elif args.data_dir:
        from repro.durability import DurableStore, RecoveryError
        from repro.durability.checkpoint import DataDir

        if DataDir(args.data_dir).is_initialized():
            if args.snapshot:
                print(
                    f"{args.data_dir} is already initialized; it recovers "
                    f"from its own checkpoint + log (drop the snapshot "
                    f"argument)",
                    file=sys.stderr,
                )
                return 2
            try:
                store = DurableStore.open(
                    args.data_dir, fsync_policy=args.fsync
                )
            except RecoveryError as exc:
                print(f"recovery failed: {exc}", file=sys.stderr)
                return 1
            print(store.report.summary())
        else:
            store = DurableStore.create(
                args.data_dir,
                snapshot=args.snapshot,
                columnar=args.columnar,
                string_dict=not args.no_dict,
                fsync_policy=args.fsync,
            )
            print(f"initialized data directory {args.data_dir}")
        collections = dict(store.collections)
        collections["_manager"] = store.manager
        manager = store.manager
        source = args.data_dir
    else:
        if not args.snapshot:
            print(
                "serve needs a snapshot file, a --data-dir, or both",
                file=sys.stderr,
            )
            return 2
        from repro.io.snapshot import load_collections

        collections = load_collections(
            args.snapshot,
            columnar=args.columnar,
            string_dict=not args.no_dict,
            shm=use_shm,
            memory_budget=args.memory_budget,
        )
        manager = collections["_manager"]
        source = args.snapshot
    service = QueryService(
        collections,
        manager,
        lease_ttl=args.lease_ttl,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        store=store,
        replication=replication,
        exec_workers=exec_workers,
        governor_budget=args.governor_budget,
        planner=not args.no_planner,
    )
    if args.churn:
        service.start_churn()
    server = ServiceServer(service, host=args.host, port=args.port).start()
    if replication is not None:
        replication.start()
    print(
        f"serving {source} on {server.host}:{server.port} "
        f"(max_concurrency={args.max_concurrency}, "
        f"queue_depth={args.queue_depth}, lease_ttl={args.lease_ttl}s"
        + (", churn on" if args.churn else "")
        + (f", exec_workers={exec_workers}" if exec_workers else "")
        + (", shm" if use_shm else "")
        + (
            f", memory_budget={args.memory_budget}"
            if args.memory_budget
            else ""
        )
        + (f", replica of {args.replica_of}" if replication else "")
        + (", durable" if store is not None and not replication else "")
        + ")"
    )
    stop = threading.Event()

    def _signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    signal.signal(signal.SIGINT, _signal)
    signal.signal(signal.SIGTERM, _signal)
    try:
        while not stop.is_set() and not server._stop.is_set():
            stop.wait(0.2)
    finally:
        server.stop()
        if store is None:
            # The durable store owns (and closed) the manager otherwise.
            manager.close()
    print("server stopped")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import signal

    from repro.service.fleet import Fleet

    fleet = Fleet(
        args.data_root,
        snapshot=args.snapshot,
        replicas=args.replicas,
        columnar=args.columnar,
        string_dict=not args.no_dict,
        fsync_policy=args.fsync,
        host=args.host,
    )
    fleet.start()
    for entry in fleet.status():
        print(
            f"{entry['name']:<12} {entry['role']:<8} {entry['endpoint']}"
        )
    print(
        "route writes to the primary and reads anywhere "
        "(RoutedClient does both)"
    )
    stop = threading.Event()

    def _signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    signal.signal(signal.SIGINT, _signal)
    signal.signal(signal.SIGTERM, _signal)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        fleet.close()
    print("fleet stopped")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    recovered = _recover_data_dir(args.data_dir)
    if recovered is None:
        return 1
    collections, report = recovered
    print(report.summary())
    manager = collections.pop("_manager")
    for name, coll in sorted(collections.items()):
        print(f"  {name:<12} {len(coll):>9} rows")
    manager.close()
    return 0


def _cmd_log_dump(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.durability import RecoveryError, scan_wal
    from repro.durability.checkpoint import DataDir

    path = args.path
    if os.path.isdir(path):
        datadir = DataDir(path)
        try:
            manifest = datadir.read_manifest()
        except RecoveryError as exc:
            print(f"cannot read manifest: {exc}", file=sys.stderr)
            return 1
        if manifest is None:
            print(
                f"{path} is not an initialized data directory (no MANIFEST)",
                file=sys.stderr,
            )
            return 1
        path = os.path.join(path, manifest["wal"])
    try:
        scan = scan_wal(path)
    except (RecoveryError, OSError) as exc:
        print(f"cannot scan {path}: {exc}", file=sys.stderr)
        return 1
    print(f"{path}: segment starts at LSN {scan.start_lsn}")
    for rec in scan.records:
        tail = "" if rec.end_offset <= scan.committed_offset else "  [uncommitted]"
        payload = json.dumps(rec.payload, sort_keys=True) if rec.payload else ""
        print(f"  {rec.lsn:>8}  {rec.kind_name:<7} {payload}{tail}")
    print(
        f"{len(scan.records)} records ({scan.committed_count} committed), "
        f"{scan.torn_bytes} torn tail bytes"
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.io.snapshot import save_collections

    recovered = _recover_data_dir(args.data_dir)
    if recovered is None:
        return 1
    collections, report = recovered
    print(report.summary())
    rows = save_collections(args.out, collections, fsync=True)
    print(f"wrote {rows} rows to {args.out}")
    collections["_manager"].close()
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    from repro.durability import DurableStore
    from repro.errors import SmcError

    try:
        store = DurableStore.create(
            args.data_dir,
            snapshot=args.snapshot,
            columnar=args.columnar,
            string_dict=not args.no_dict,
        )
    except (SmcError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = sum(len(c) for c in store.collections.values())
    print(
        f"restored {args.snapshot} into {args.data_dir} "
        f"({len(store.collections)} collections, {rows} rows)"
    )
    store.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.io.snapshot import load_collections
    from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

    builder = QUERIES.get(args.query) or EXTRA_QUERIES.get(args.query)
    if builder is None:
        known = sorted(QUERIES) + sorted(EXTRA_QUERIES)
        print(f"unknown query {args.query!r}; choose from {known}", file=sys.stderr)
        return 2
    collections = load_collections(
        args.snapshot, columnar=args.columnar, string_dict=not args.no_dict
    )
    query = builder(collections)
    if args.explain:
        print(
            query.explain(
                params=DEFAULT_PARAMS, planner=not args.no_planner
            )
        )
    start = time.perf_counter()
    result = query.run(
        engine=args.engine,
        params=DEFAULT_PARAMS,
        workers=args.workers,
        prune=not args.no_prune,
        planner=not args.no_planner,
    )
    elapsed = (time.perf_counter() - start) * 1000
    widths = [
        max(len(c), *(len(str(r[i])) for r in result.rows)) if result.rows else len(c)
        for i, c in enumerate(result.columns)
    ]
    print(" | ".join(c.ljust(w) for c, w in zip(result.columns, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in result.rows[: args.limit]:
        print(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    if len(result.rows) > args.limit:
        print(f"... ({len(result.rows) - args.limit} more rows)")
    print(f"\n{len(result.rows)} row(s) in {elapsed:.1f} ms ({args.engine})")
    collections["_manager"].close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import subprocess
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    matches = sorted(bench_dir.glob(f"bench_{args.figure}*.py"))
    if not matches:
        print(
            f"no bench matches {args.figure!r}; available: "
            + ", ".join(p.stem.replace("bench_", "") for p in sorted(bench_dir.glob("bench_*.py"))),
            file=sys.stderr,
        )
        return 2
    cmd = [sys.executable, "-m", "pytest", *map(str, matches), "--benchmark-only", "-s"]
    return subprocess.call(cmd)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-managed collections (EDBT 2017 reproduction)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the command under the protocol sanitizer "
        "(checks memory-reclamation invariants; see docs/sanitizer.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate TPC-H data into a snapshot")
    gen.add_argument("--sf", type=float, default=0.01, help="scale factor")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default="tpch.smcsnap")
    gen.add_argument("--columnar", action="store_true")
    gen.add_argument(
        "--no-dict",
        action="store_true",
        help="disable dictionary encoding for varstring columns (ablation)",
    )
    gen.set_defaults(fn=_cmd_gen)

    info = sub.add_parser("info", help="describe a snapshot")
    info.add_argument("snapshot")
    info.add_argument("--columnar", action="store_true")
    info.add_argument("--no-dict", action="store_true")
    info.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus-format metrics exposition",
    )
    info.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="load under a pager with this hot-tier byte budget and "
        "report per-collection residency (hot/cold blocks, tier bytes)",
    )
    info.add_argument(
        "--block-shift",
        type=int,
        default=None,
        metavar="N",
        help="log2 block size for the fresh manager (smaller blocks make "
        "residency visible on small snapshots)",
    )
    info.set_defaults(fn=_cmd_info)

    serve = sub.add_parser(
        "serve", help="serve a snapshot over the query service protocol"
    )
    serve.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot file to serve (optional with an initialized "
        "--data-dir, which recovers itself)",
    )
    serve.add_argument(
        "--data-dir",
        help="persist mutations here: write-ahead log + checkpoints; an "
        "uninitialized directory is seeded from the snapshot argument "
        "(or starts empty), an initialized one is recovered",
    )
    serve.add_argument(
        "--fsync",
        choices=["always", "commit", "none"],
        default="commit",
        help="WAL fsync policy in persistent mode (default: commit — "
        "one fsync per group commit)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7070)
    serve.add_argument("--columnar", action="store_true")
    serve.add_argument("--no-dict", action="store_true")
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="queries executing at once (admission-control slots)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="bounded waiting room; full means immediate OVERLOADED",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="session lease TTL in seconds (watchdog expiry)",
    )
    serve.add_argument(
        "--churn",
        action="store_true",
        help="run a background mutator against a scratch collection",
    )
    serve.add_argument(
        "--shm",
        action="store_true",
        help="back block buffers with named shared-memory segments "
        "(/dev/shm), the prerequisite for --exec-workers",
    )
    serve.add_argument(
        "--exec-workers",
        metavar="N",
        default=None,
        help="route eligible parallel reads through N scan worker "
        "processes attached to the shared block pool ('auto' = CPU "
        "count; implies --shm)",
    )
    serve.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="hot-tier byte budget for the block pool: a pager demotes "
        "cold blocks to a file-backed tier and faults them back on "
        "access (snapshot serving only)",
    )
    serve.add_argument(
        "--governor-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="unified byte budget for the service's caches (plan cache, "
        "string-dict match caches, WAL group-commit buffer), "
        "rebalanced by the memory governor",
    )
    serve.add_argument(
        "--no-planner",
        action="store_true",
        help="disable the cost-based planner for served queries "
        "(ablation; per-request 'planner' flags still override)",
    )
    serve.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        help="serve as a read replica of the given primary: clone its "
        "checkpoint into --data-dir (or resume one), stream its "
        "committed WAL tail, and refuse mutations with NOT_PRIMARY",
    )
    serve.set_defaults(fn=_cmd_serve)

    fleet_p = sub.add_parser(
        "fleet",
        help="serve one writer plus N read replicas in one process",
    )
    fleet_p.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot to seed the primary (optional when data-root "
        "already holds an initialized primary/)",
    )
    fleet_p.add_argument(
        "--data-root",
        required=True,
        help="directory tree for the fleet: primary/, replica-1/, ...",
    )
    fleet_p.add_argument("--replicas", type=int, default=2)
    fleet_p.add_argument("--host", default="127.0.0.1")
    fleet_p.add_argument(
        "--fsync", choices=["always", "commit", "none"], default="commit"
    )
    fleet_p.add_argument("--columnar", action="store_true")
    fleet_p.add_argument("--no-dict", action="store_true")
    fleet_p.set_defaults(fn=_cmd_fleet)

    query = sub.add_parser("query", help="run a TPC-H query on a snapshot")
    query.add_argument("snapshot")
    query.add_argument("query", help="q1..q6, q7, q10, q12, q14")
    query.add_argument(
        "--engine", choices=["compiled", "interpreted"], default="compiled"
    )
    query.add_argument("--columnar", action="store_true")
    query.add_argument("--limit", type=int, default=25)
    query.add_argument("--explain", action="store_true")
    query.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help="morsel-parallel scan workers (vectorised engines only); "
        "'auto' uses os.cpu_count()",
    )
    query.add_argument(
        "--no-prune",
        action="store_true",
        help="disable block-level zone-map pruning",
    )
    query.add_argument(
        "--no-dict",
        action="store_true",
        help="disable dictionary encoding for varstring columns (ablation)",
    )
    query.add_argument(
        "--no-planner",
        action="store_true",
        help="disable cost-based predicate ordering, access-path choice "
        "and adaptive morsel sizing (ablation)",
    )
    query.set_defaults(fn=_cmd_query)

    bench = sub.add_parser("bench", help="run a figure bench (e.g. fig11)")
    bench.add_argument("figure", help="fig06..fig13 or ablation")
    bench.set_defaults(fn=_cmd_bench)

    recover_p = sub.add_parser(
        "recover",
        help="recover a data directory (checkpoint + WAL replay) and "
        "report the rebuilt state",
    )
    recover_p.add_argument("data_dir")
    recover_p.set_defaults(fn=_cmd_recover)

    log_dump = sub.add_parser(
        "log-dump",
        help="print a write-ahead log segment record by record",
    )
    log_dump.add_argument(
        "path", help="a WAL segment file, or a data directory (dumps its "
        "active segment)"
    )
    log_dump.set_defaults(fn=_cmd_log_dump)

    snapshot_p = sub.add_parser(
        "snapshot", help="export a data directory to a snapshot file"
    )
    snapshot_p.add_argument("data_dir")
    snapshot_p.add_argument("out", help="snapshot file to write")
    snapshot_p.set_defaults(fn=_cmd_snapshot)

    restore_p = sub.add_parser(
        "restore",
        help="initialize a fresh data directory from a snapshot file",
    )
    restore_p.add_argument("data_dir")
    restore_p.add_argument("snapshot")
    restore_p.add_argument("--columnar", action="store_true")
    restore_p.add_argument("--no-dict", action="store_true")
    restore_p.set_defaults(fn=_cmd_restore)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sanitize:
        from repro import sanitizer

        with sanitizer.enabled() as san:
            rc = args.fn(args)
            san.assert_clean()
            print(f"sanitizer: clean ({sum(san.event_counts.values())} events)")
            return rc
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
