"""Generational stop-the-world GC cost model + a real-CPython GC probe.

Why this exists (see DESIGN.md, substitution table): Figure 9 of the paper
measures the longest application pause caused by the .NET generational
collector as a function of how many objects live in a collection, in two
modes — *batch* (non-concurrent: the whole collection pauses all threads)
and *interactive* (concurrent: most marking happens on a background
thread, only a short stop-the-world phase remains).  CPython uses
reference counting plus a non-moving cycle collector, so the .NET pause
behaviour cannot be observed natively.  This module provides:

:class:`SimulatedHeap`
    a faithful cost model of a two-generation stop-the-world collector:
    a nursery with a fixed allocation budget triggers minor collections
    whose pause is proportional to the survivors; survivors promote, and
    promotion growth triggers major collections whose pause is
    proportional to the *total live old-generation objects* — exactly the
    mechanism behind Figure 9's linear pause growth.  In interactive mode
    only a fixed fraction of the major pause stops the world; the rest
    runs concurrently and is accounted as stolen CPU time.

:func:`real_gc_probe`
    a genuine CPython measurement: time ``gc.collect()`` while N objects
    are tracked by the interpreter (managed collection) versus while the
    same data lives inside SMC blocks (bytearrays are a single untracked
    buffer each).  This shows the real Python analogue of the paper's
    claim — collector work scales with tracked objects, and SMCs remove
    their objects from the collector's view entirely.

Default cost constants are calibrated so a 40-million-object managed
collection produces a multi-second batch pause, matching the magnitude of
Figure 9.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class GcParams:
    """Cost constants of the simulated collector."""

    #: Nursery size: a minor collection triggers per this many bytes.
    nursery_bytes: int = 4 * 1024 * 1024
    #: Fixed minor-collection pause (seconds).
    minor_base: float = 50e-6
    #: Pause per surviving (promoted) object in a minor collection.
    minor_per_survivor: float = 40e-9
    #: Fixed major-collection pause.
    major_base: float = 1e-3
    #: Pause per live old-generation object scanned in a major collection.
    major_per_live: float = 85e-9
    #: A major collection triggers when promoted bytes since the last one
    #: exceed this fraction of old-generation live bytes.
    major_trigger_fraction: float = 0.25
    #: Interactive (concurrent) mode: fraction of major work that still
    #: stops the world; the remainder runs on a background thread.
    interactive_stw_fraction: float = 0.06
    #: Fraction of one core the background collection steals while active.
    background_cpu_fraction: float = 0.35


@dataclass
class GcStats:
    minor_collections: int = 0
    major_collections: int = 0
    pauses: List[float] = field(default_factory=list)
    total_pause: float = 0.0
    background_cpu: float = 0.0

    @property
    def max_pause(self) -> float:
        return max(self.pauses, default=0.0)


class SimulatedHeap:
    """Two-generation stop-the-world collector cost model.

    The heap tracks *counts and bytes*, not real objects: callers declare
    allocations (optionally long-lived) and a pinned old-generation
    population (the benchmark collection), and the model reports the
    pauses a generational collector would have inflicted.
    """

    def __init__(self, mode: str = "batch", params: Optional[GcParams] = None) -> None:
        if mode not in ("batch", "interactive"):
            raise ValueError("mode must be 'batch' or 'interactive'")
        self.mode = mode
        self.params = params or GcParams()
        self.clock = 0.0
        self.stats = GcStats()
        self._nursery_bytes = 0
        self._nursery_objects: List[Tuple[int, bool]] = []
        self.old_live_objects = 0
        self.old_live_bytes = 0
        self._promoted_since_major = 0

    # ------------------------------------------------------------------

    def pin_old_generation(self, objects: int, avg_size: int) -> None:
        """Declare a long-lived population (e.g. a loaded collection)."""
        self.old_live_objects += objects
        self.old_live_bytes += objects * avg_size

    def allocate(self, size: int, long_lived: bool = False) -> None:
        """Simulate allocating one object of *size* bytes."""
        self._nursery_bytes += size
        self._nursery_objects.append((size, long_lived))
        if self._nursery_bytes >= self.params.nursery_bytes:
            self._minor_collection()

    def advance(self, seconds: float) -> None:
        """Account compute time between allocations."""
        self.clock += seconds

    # ------------------------------------------------------------------

    def _minor_collection(self) -> None:
        p = self.params
        survivors = [(s, ll) for s, ll in self._nursery_objects if ll]
        pause = p.minor_base + len(survivors) * p.minor_per_survivor
        self._record_pause(pause)
        self.stats.minor_collections += 1
        promoted_bytes = sum(s for s, __ in survivors)
        self.old_live_objects += len(survivors)
        self.old_live_bytes += promoted_bytes
        self._promoted_since_major += promoted_bytes
        self._nursery_bytes = 0
        self._nursery_objects.clear()
        trigger = max(
            p.nursery_bytes, self.old_live_bytes * p.major_trigger_fraction
        )
        if self._promoted_since_major >= trigger:
            self._major_collection()

    def _major_collection(self) -> None:
        p = self.params
        work = p.major_base + self.old_live_objects * p.major_per_live
        if self.mode == "batch":
            self._record_pause(work)
        else:
            stw = p.major_base + work * p.interactive_stw_fraction
            self._record_pause(stw)
            # Background marking steals CPU without stopping the world.
            background = work - stw
            self.stats.background_cpu += background
            self.clock += background * p.background_cpu_fraction
        self.stats.major_collections += 1
        self._promoted_since_major = 0

    def _record_pause(self, pause: float) -> None:
        self.stats.pauses.append(pause)
        self.stats.total_pause += pause
        self.clock += pause

    # ------------------------------------------------------------------

    def force_major(self) -> float:
        """Run a major collection now; returns its pause."""
        before = self.stats.total_pause
        self._major_collection()
        return self.stats.total_pause - before

    @property
    def max_pause(self) -> float:
        return self.stats.max_pause


def longest_timeout(
    collection_objects: int,
    mode: str,
    churn_objects: int = 200_000,
    object_size: int = 160,
    params: Optional[GcParams] = None,
) -> float:
    """Reproduce one point of Figure 9 with the simulated collector.

    Pins *collection_objects* long-lived objects (the collection under
    test), then churns short-lived allocations like the paper's allocator
    thread; the result is the longest pause the paper's one-millisecond
    sleeper thread would have observed.
    """
    heap = SimulatedHeap(mode, params)
    heap.pin_old_generation(collection_objects, object_size)
    for i in range(churn_objects):
        # One in 16 churn objects survives long enough to promote,
        # matching the paper's "varying lifetimes" allocator.
        heap.allocate(object_size, long_lived=(i % 16 == 0))
    heap.force_major()
    return heap.max_pause


# ----------------------------------------------------------------------
# Real CPython probe
# ----------------------------------------------------------------------


def real_gc_probe(make_population, cycles: int = 5) -> float:
    """Minimum wall-clock seconds of ``gc.collect()`` after *make_population*.

    ``make_population()`` must build and return the population (kept alive
    for the duration of the probe).  With records in a managed collection
    the cycle collector must visit every object; with rows in an SMC it
    only sees a handful of block buffers.

    The cost of visiting the population is systematic — paid on every
    cycle — while scheduler/CPU-contention noise is strictly additive, so
    the minimum over several cycles estimates the true collection cost far
    more robustly than a mean or median would.  A warm-up collect first
    settles construction garbage into the old generation so every timed
    cycle measures the same steady state.
    """
    population = make_population()
    gc.collect()  # warm-up: flush construction garbage, settle generations
    timings = []
    for __ in range(cycles):
        start = time.perf_counter()
        gc.collect()
        timings.append(time.perf_counter() - start)
    del population
    return min(timings)
