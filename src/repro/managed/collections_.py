"""Managed baseline collections (the paper's comparison targets).

The paper's evaluation (section 7) compares SMCs against the standard C#
collections holding ordinary managed objects:

* ``List<T>`` — the fastest baseline, **not** thread-safe;
* ``ConcurrentBag<T>`` — thread-safe, but does not support removing a
  *specific* object;
* ``ConcurrentDictionary<TKey, TValue>`` — the only thread-safe collection
  with functionality comparable to SMCs (targeted removal).

The Python analogues hold plain generated record objects
(:meth:`repro.schema.tabular.Tabular.managed_class`) on the ordinary
Python heap, where the garbage collector must track every one of them.
They share the query surface of SMCs: ``.query()`` runs the same logical
plans through the interpreter or the ``managed`` compiled backend.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Type

from repro.schema.tabular import Tabular


class _ManagedBase:
    """Shared query-source protocol of the managed collections."""

    compiled_flavor = "managed"

    schema: Type[Tabular]

    def query(self):
        from repro.query.builder import Query

        return Query(self)

    def records_list(self) -> List[Any]:
        raise NotImplementedError

    def iter_rows(self) -> Iterator[Any]:
        return iter(self.records_list())

    def new_record(self, **values: Any) -> Any:
        """Allocate a managed record object (not yet inserted)."""
        return self.schema.managed_class()(**values)


class ManagedList(_ManagedBase):
    """Python analogue of ``List<T>``: a dynamic array, not thread-safe."""

    def __init__(self, schema: Type[Tabular]) -> None:
        self.schema = schema
        self._records: List[Any] = []

    def add(self, record: Any = None, **values: Any) -> Any:
        if record is None:
            record = self.new_record(**values)
        self._records.append(record)
        return record

    def remove(self, record: Any) -> None:
        """Remove one occurrence of *record* (O(n), as in ``List<T>``)."""
        self._records.remove(record)

    def remove_where(self, pred) -> int:
        """Bulk-remove records matching *pred*; returns the count removed.

        Rebuilds the backing array in one pass — the idiomatic way to
        filter a list both in C# (``RemoveAll``) and Python.
        """
        before = len(self._records)
        self._records = [r for r in self._records if not pred(r)]
        return before - len(self._records)

    def records_list(self) -> List[Any]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()


class ManagedBag(_ManagedBase):
    """Python analogue of ``ConcurrentBag<T>``.

    Thread-safe unordered insertion; like the original, it does **not**
    support removing a specific element (the paper excludes it from the
    refresh-stream benchmark for exactly this reason).
    """

    def __init__(self, schema: Type[Tabular]) -> None:
        self.schema = schema
        self._records: List[Any] = []
        self._lock = threading.Lock()

    def add(self, record: Any = None, **values: Any) -> Any:
        if record is None:
            record = self.new_record(**values)
        with self._lock:
            self._records.append(record)
        return record

    def try_take(self) -> Optional[Any]:
        """Remove and return an arbitrary element (LIFO), or ``None``."""
        with self._lock:
            return self._records.pop() if self._records else None

    def records_list(self) -> List[Any]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records_list())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class ManagedDictionary(_ManagedBase):
    """Python analogue of ``ConcurrentDictionary<TKey, TValue>``.

    Thread-safe keyed insertion and targeted removal — the paper's
    best-performing thread-safe managed competitor.
    """

    def __init__(self, schema: Type[Tabular], key: Optional[str] = None) -> None:
        self.schema = schema
        #: Name of the record attribute used as the key when none is given.
        self.key_attr = key
        self._records: Dict[Any, Any] = {}
        self._lock = threading.Lock()
        self._seq = 0

    def _key_for(self, record: Any, key: Any) -> Any:
        if key is not None:
            return key
        if self.key_attr is not None:
            return getattr(record, self.key_attr)
        self._seq += 1
        return self._seq

    def add(self, record: Any = None, key: Any = None, **values: Any) -> Any:
        if record is None:
            record = self.new_record(**values)
        with self._lock:
            self._records[self._key_for(record, key)] = record
        return record

    def remove(self, key: Any) -> bool:
        """Remove the record stored under *key*; True if it existed."""
        with self._lock:
            return self._records.pop(key, None) is not None

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            return self._records.get(key)

    def records_list(self) -> List[Any]:
        with self._lock:
            return list(self._records.values())

    def keys(self) -> List[Any]:
        with self._lock:
            return list(self._records.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records_list())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
