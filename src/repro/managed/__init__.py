"""Managed baseline collections and the garbage-collection cost models."""

from repro.managed.collections_ import ManagedBag, ManagedDictionary, ManagedList

__all__ = ["ManagedBag", "ManagedDictionary", "ManagedList"]
