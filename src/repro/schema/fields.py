"""Field types for tabular classes.

Tabular objects have a fixed size and memory layout (paper section 2), so
every field maps to a fixed number of bytes inside the object's slot:

==================  =====  ==========================================
Field               bytes  stored representation
==================  =====  ==========================================
Int8/16/32/64Field  1-8    two's-complement integer
BoolField           1      0 / 1
Float64Field        8      IEEE-754 double
DecimalField        8      int64 fixed-point (value * 10**scale)
DateField           4      days since 1970-01-01
CharField(n)        n      NUL-padded bytes (fixed-width string)
VarStringField      8      address of a string-heap record
RefField(T)         16     (entry index | address) + incarnation word
==================  =====  ==========================================

``DecimalField`` reproduces the paper's 16-byte C# ``decimal`` role: exact
money arithmetic.  The *handle* access path converts to
:class:`decimal.Decimal` (the analogue of call-by-value decimal math); the
"unsafe" compiled query path operates on the raw int64 fixed-point value
in place, which is where the paper's Query 1 speedup comes from.

Fields double as expression-tree roots for the query builder: comparison
and arithmetic operators on a bound field produce
:class:`repro.query.expressions.Expr` nodes, the Python analogue of LINQ's
statically-known query structure.
"""

from __future__ import annotations

import datetime as _dt
import struct
from decimal import Decimal
from typing import TYPE_CHECKING, Any, Optional, Type, Union

from repro.memory.addressing import NULL_ADDRESS

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.manager import MemoryManager
    from repro.memory.reference import Ref

_EPOCH_DATE = _dt.date(1970, 1, 1)


def date_to_days(value: Union[_dt.date, str]) -> int:
    """Convert a date (or ISO string) to days since 1970-01-01."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - _EPOCH_DATE).days


def days_to_date(days: int) -> _dt.date:
    return _EPOCH_DATE + _dt.timedelta(days=days)


class Field:
    """Base class for all tabular field types.

    A field is *bound* when its owning tabular class assigns it a name and
    an in-slot offset; unbound fields cannot be used in expressions.
    """

    size: int = 0
    align: int = 1
    fmt: str = ""  # struct format character for scalar fields

    __slots__ = ("name", "offset", "index", "owner", "_struct")

    def __init__(self) -> None:
        self.name: str = ""
        self.offset: int = -1
        self.index: int = -1
        self.owner: Optional[type] = None
        self._struct: Optional[struct.Struct] = None

    def _bind(self, owner: type, name: str, index: int) -> None:
        self.owner = owner
        self.name = name
        self.index = index
        if self.fmt:
            self._struct = struct.Struct("<" + self.fmt)

    # ------------------------------------------------------------------
    # Storage codec — overridden by non-scalar fields
    # ------------------------------------------------------------------

    def encode_into(self, buf, off: int, value: Any, manager=None) -> None:
        self._struct.pack_into(buf, off, self.to_raw(value))

    def decode_from(self, buf, off: int, manager=None) -> Any:
        return self.from_raw(self._struct.unpack_from(buf, off)[0])

    def raw_from(self, buf, off: int) -> Any:
        """Read the stored raw value without conversion (unsafe path)."""
        return self._struct.unpack_from(buf, off)[0]

    def release_into(self, buf, off: int, manager) -> None:
        """Free any out-of-slot storage owned by this field (strings)."""

    def to_raw(self, value: Any) -> Any:
        """Convert a user value to the stored representation."""
        return value

    def from_raw(self, raw: Any) -> Any:
        """Convert the stored representation back to the user value."""
        return raw

    @property
    def default(self) -> Any:
        """Value used when a field is not supplied at ``add`` time."""
        return 0

    # ------------------------------------------------------------------
    # Expression building (LINQ surface)
    # ------------------------------------------------------------------

    def _expr(self):
        from repro.query.expressions import FieldRef

        if self.owner is None:
            raise TypeError(f"field {self.name or '?'} is not bound to a class")
        return FieldRef(self)

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __ne__(self, other):  # type: ignore[override]
        return self._expr() != other

    def __lt__(self, other):
        return self._expr() < other

    def __le__(self, other):
        return self._expr() <= other

    def __gt__(self, other):
        return self._expr() > other

    def __ge__(self, other):
        return self._expr() >= other

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return other + self._expr()

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return other - self._expr()

    def __mul__(self, other):
        return self._expr() * other

    def __rmul__(self, other):
        return other * self._expr()

    def __truediv__(self, other):
        return self._expr() / other

    def __rtruediv__(self, other):
        return other / self._expr()

    def isin(self, values):
        return self._expr().isin(values)

    def between(self, lo, hi):
        return self._expr().between(lo, hi)

    def startswith(self, prefix: str):
        return self._expr().startswith(prefix)

    def contains(self, needle: str):
        return self._expr().contains(needle)

    def ref(self, nested_name: str):
        """Navigate through this reference field to a field of the target."""
        return self._expr().ref(nested_name)

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover
        owner = self.owner.__name__ if self.owner else "?"
        return f"<{type(self).__name__} {owner}.{self.name or '?'} @{self.offset}>"


# ----------------------------------------------------------------------
# Scalar fields
# ----------------------------------------------------------------------


class Int8Field(Field):
    size, align, fmt = 1, 1, "b"
    python_type = int


class Int16Field(Field):
    size, align, fmt = 2, 2, "h"
    python_type = int


class Int32Field(Field):
    size, align, fmt = 4, 4, "i"
    python_type = int


class Int64Field(Field):
    size, align, fmt = 8, 8, "q"
    python_type = int


class BoolField(Field):
    size, align, fmt = 1, 1, "b"
    python_type = bool

    def to_raw(self, value: Any) -> int:
        return 1 if value else 0

    def from_raw(self, raw: int) -> bool:
        return bool(raw)

    @property
    def default(self) -> bool:
        return False


class Float64Field(Field):
    size, align, fmt = 8, 8, "d"
    python_type = float

    @property
    def default(self) -> float:
        return 0.0


class DecimalField(Field):
    """Exact fixed-point numeric, stored as a scaled int64.

    The default scale of 2 models money (TPC-H prices, discounts are
    defined with two fractional digits in our generator).
    """

    size, align, fmt = 8, 8, "q"
    python_type = Decimal

    __slots__ = ("scale", "_factor", "_quantum")

    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        if scale < 0 or scale > 9:
            raise ValueError("scale must be in [0, 9]")
        self.scale = scale
        self._factor = 10**scale
        self._quantum = Decimal(1).scaleb(-scale)

    def to_raw(self, value: Any) -> int:
        if isinstance(value, Decimal):
            return int(value.scaleb(self.scale).to_integral_value())
        if isinstance(value, int):
            return value * self._factor
        if isinstance(value, float):
            return round(value * self._factor)
        if isinstance(value, str):
            return int(Decimal(value).scaleb(self.scale).to_integral_value())
        raise TypeError(f"cannot store {value!r} in a DecimalField")

    def from_raw(self, raw: int) -> Decimal:
        return Decimal(raw) * self._quantum

    @property
    def default(self) -> Decimal:
        return Decimal(0)


class DateField(Field):
    """Calendar date stored as days since 1970-01-01."""

    size, align, fmt = 4, 4, "i"
    python_type = _dt.date

    def to_raw(self, value: Any) -> int:
        if isinstance(value, int):
            return value
        return date_to_days(value)

    def from_raw(self, raw: int) -> _dt.date:
        return days_to_date(raw)

    @property
    def default(self) -> _dt.date:
        return _EPOCH_DATE


class CharField(Field):
    """Fixed-width string, space padded (SQL ``CHAR(n)``)."""

    align = 1
    python_type = str

    # ``size`` is a per-instance slot here (it depends on the width),
    # shadowing the class-level constant of fixed-size fields.
    __slots__ = ("width", "size")

    def __init__(self, width: int) -> None:
        super().__init__()
        if width <= 0:
            raise ValueError("CharField width must be positive")
        self.width = width
        self.size = width

    def _bind(self, owner: type, name: str, index: int) -> None:
        super()._bind(owner, name, index)
        self._struct = struct.Struct(f"<{self.width}s")

    def encode_into(self, buf, off: int, value: Any, manager=None) -> None:
        data = str(value).encode("utf-8")
        if len(data) > self.width:
            raise ValueError(
                f"string of {len(data)} bytes exceeds CharField({self.width})"
            )
        # struct NUL-pads short strings; NUL padding matches NumPy's
        # S-dtype convention so vectorised block scans compare directly.
        self._struct.pack_into(buf, off, data)

    def decode_from(self, buf, off: int, manager=None) -> str:
        raw = self._struct.unpack_from(buf, off)[0]
        return raw.rstrip(b" \x00").decode("utf-8")

    def raw_from(self, buf, off: int) -> bytes:
        return self._struct.unpack_from(buf, off)[0]

    @property
    def default(self) -> str:
        return ""


class VarStringField(Field):
    """Variable-length string owned by the object (string heap record).

    The slot stores the 8-byte address of the heap record; the record's
    lifetime matches the object's (section 2: "strings referenced by
    tabular classes are considered part of the object").
    """

    size, align, fmt = 8, 8, "q"
    python_type = str

    def _dict_of(self, manager):
        """The owning collection's string dictionary on *manager*, if any.

        Fields are shared across managers, so the dictionary is resolved
        per call through the manager's collection registry.  ``None`` means
        the slot stores plain string-heap addresses.
        """
        registry = getattr(manager, "collections", None)
        if not registry:
            return None
        owner = getattr(self, "owner", None)
        if owner is None:
            return None
        return getattr(registry.get(owner.__name__), "strdict", None)

    def store_raw(self, value: Any, manager) -> int:
        """Store *value*, returning the slot word (dict code or address)."""
        text = "" if value is None else str(value)
        sd = self._dict_of(manager)
        if sd is not None:
            return sd.intern(text)
        return manager.strings.alloc(text)

    def encode_into(self, buf, off: int, value: Any, manager=None) -> None:
        if manager is None:
            raise TypeError("VarStringField requires a memory manager")
        text = "" if value is None else str(value)
        old = self._struct.unpack_from(buf, off)[0]
        sd = self._dict_of(manager)
        if sd is not None:
            sd.release(old)
            self._struct.pack_into(buf, off, sd.intern(text))
            return
        if old != NULL_ADDRESS:
            manager.strings.free(old)
        self._struct.pack_into(buf, off, manager.strings.alloc(text))

    def decode_from(self, buf, off: int, manager=None) -> str:
        if manager is None:
            raise TypeError("VarStringField requires a memory manager")
        raw = self._struct.unpack_from(buf, off)[0]
        sd = self._dict_of(manager)
        if sd is not None:
            return sd.text_of(raw)
        return manager.strings.read(raw)

    def release_into(self, buf, off: int, manager) -> None:
        raw = self._struct.unpack_from(buf, off)[0]
        sd = self._dict_of(manager)
        if sd is not None:
            if raw > 0:
                sd.release(raw)
                self._struct.pack_into(buf, off, NULL_ADDRESS)
            return
        if raw != NULL_ADDRESS:
            manager.strings.free(raw)
            self._struct.pack_into(buf, off, NULL_ADDRESS)

    @property
    def default(self) -> str:
        return ""


class RefField(Field):
    """Reference to an object of another (or the same) tabular class.

    Stored as 16 bytes: an 8-byte word plus a 4-byte incarnation and 4
    bytes of padding.  In indirect mode (default) the word is the target's
    indirection-table entry index and the incarnation is the entry's
    counter; in direct-pointer mode (paper section 6) the word is the raw
    slot address and the incarnation is the slot header's counter.
    """

    size, align = 16, 8
    python_type = object

    __slots__ = ("target",)

    _WORDS = struct.Struct("<qi")

    def __init__(self, target: Union[str, Type]) -> None:
        super().__init__()
        self.target = target

    def _bind(self, owner: type, name: str, index: int) -> None:
        super()._bind(owner, name, index)
        self._struct = self._WORDS

    def resolve_target(self) -> type:
        """Resolve the target tabular class (string targets resolved lazily)."""
        from repro.schema.tabular import resolve_tabular

        return resolve_tabular(self.target)

    # Encoding takes the words directly; the collection layer derives them
    # from a Ref / handle according to the manager's pointer mode.
    def encode_words(self, buf, off: int, word: int, inc: int) -> None:
        self._WORDS.pack_into(buf, off, word, inc)

    def decode_words(self, buf, off: int):
        return self._WORDS.unpack_from(buf, off)

    def encode_into(self, buf, off: int, value: Any, manager=None) -> None:
        # ``None`` clears the reference; Ref / handle values are resolved by
        # the collection layer (which knows the pointer mode), not here.
        if value is None:
            self._WORDS.pack_into(buf, off, NULL_ADDRESS, 0)
            return
        raise TypeError(
            "RefField values are written by the collection layer; "
            "use Collection.add/update with a Ref or handle"
        )

    def decode_from(self, buf, off: int, manager=None):
        raise TypeError(
            "RefField values are read by the collection layer; "
            "use handle attribute access"
        )

    @property
    def default(self) -> None:
        return None
