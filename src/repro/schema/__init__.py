"""Schema layer: field types, slot layouts and tabular classes."""

from repro.schema.fields import (
    BoolField,
    CharField,
    DateField,
    DecimalField,
    Field,
    Float64Field,
    Int8Field,
    Int16Field,
    Int32Field,
    Int64Field,
    RefField,
    VarStringField,
    date_to_days,
    days_to_date,
)
from repro.schema.layout import SlotLayout
from repro.schema.tabular import Tabular, TabularMeta, resolve_tabular

__all__ = [
    "BoolField",
    "CharField",
    "DateField",
    "DecimalField",
    "Field",
    "Float64Field",
    "Int8Field",
    "Int16Field",
    "Int32Field",
    "Int64Field",
    "RefField",
    "VarStringField",
    "date_to_days",
    "days_to_date",
    "SlotLayout",
    "Tabular",
    "TabularMeta",
    "resolve_tabular",
]
