"""Slot layout computation for tabular classes.

Given the ordered fields of a tabular class, :class:`SlotLayout` assigns
each field an offset inside the object slot (after the 8-byte slot header)
honouring natural alignment, and rounds the total slot size up to 8 bytes.
All objects of the class share this layout — the fixed size and layout the
paper requires of tabular types (section 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.memory.addressing import NULL_ADDRESS
from repro.memory.block import SLOT_HEADER_SIZE
from repro.schema.fields import CharField, Field, RefField, VarStringField

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.manager import MemoryManager


def _align(offset: int, alignment: int) -> int:
    remainder = offset % alignment
    return offset if remainder == 0 else offset + alignment - remainder


class SlotLayout:
    """Field offsets and codecs for one tabular class."""

    def __init__(self, fields: Sequence[Field], type_name: str) -> None:
        if not fields:
            raise ValueError(f"tabular class {type_name} declares no fields")
        self.type_name = type_name
        self.fields: List[Field] = list(fields)
        self.by_name: Dict[str, Field] = {}

        offset = SLOT_HEADER_SIZE
        for f in self.fields:
            offset = _align(offset, f.align)
            f.offset = offset
            offset += f.size
            self.by_name[f.name] = f

        self.slot_size = _align(offset, 8)
        self.var_fields: List[VarStringField] = [
            f for f in self.fields if isinstance(f, VarStringField)
        ]
        self.ref_fields: List[RefField] = [
            f for f in self.fields if isinstance(f, RefField)
        ]
        self.scalar_fields: List[Field] = [
            f
            for f in self.fields
            if not isinstance(f, (RefField, VarStringField))
        ]

        self._template_body: Optional[bytes] = None
        self._full_struct = None
        self._default_raws: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # Fast row construction
    # ------------------------------------------------------------------

    @property
    def template_body(self) -> bytes:
        """Default-initialised slot bytes (excluding the 8-byte header).

        ``Collection.add`` blits this template with one slice assignment —
        the Python analogue of the default constructor running over
        freshly allocated memory — and then overwrites only the supplied
        fields.
        """
        if self._template_body is None:
            buf = bytearray(self.slot_size)
            for f in self.fields:
                if isinstance(f, RefField):
                    f.encode_words(buf, f.offset, NULL_ADDRESS, 0)
                elif isinstance(f, VarStringField):
                    f._struct.pack_into(buf, f.offset, NULL_ADDRESS)
                else:
                    f.encode_into(buf, f.offset, f.default)
            self._template_body = bytes(buf[SLOT_HEADER_SIZE:])
        return self._template_body

    def _ensure_full_struct(self) -> None:
        """One combined Struct covering every field (with pad bytes)."""
        if self._full_struct is not None:
            return
        import struct as _struct

        fmt = ["<"]
        pos = SLOT_HEADER_SIZE
        for f in self.fields:
            if f.offset > pos:
                fmt.append(f"{f.offset - pos}x")
                pos = f.offset
            if isinstance(f, RefField):
                fmt.append("qi4x")
                pos += 16
            elif isinstance(f, CharField):
                fmt.append(f"{f.width}s")
                pos += f.width
            else:
                fmt.append(f.fmt)
                pos += f.size
        if self.slot_size > pos:
            fmt.append(f"{self.slot_size - pos}x")
        self._full_struct = _struct.Struct("".join(fmt))

    def pack_full_row(
        self,
        buf,
        slot_off: int,
        values: Dict[str, Any],
        manager: "MemoryManager",
        ref_encoder,
    ) -> None:
        """Write a whole row with a single combined struct pack.

        ``ref_encoder(field, value)`` converts user reference values to
        stored ``(word, inc)`` pairs (collection-supplied, mode-aware).
        """
        self._ensure_full_struct()
        raws: List[Any] = []
        for f in self.fields:
            if isinstance(f, RefField):
                pair = None
                if f.name in values:
                    pair = ref_encoder(f, values[f.name])
                raws.extend(pair if pair is not None else (NULL_ADDRESS, 0))
            elif isinstance(f, VarStringField):
                raws.append(f.store_raw(values.get(f.name, ""), manager))
            elif isinstance(f, CharField):
                data = str(values.get(f.name, "")).encode("utf-8")
                if len(data) > f.width:
                    raise ValueError(
                        f"string of {len(data)} bytes exceeds "
                        f"CharField({f.width})"
                    )
                raws.append(data)
            else:
                raws.append(f.to_raw(values.get(f.name, f.default)))
        self._full_struct.pack_into(buf, slot_off + SLOT_HEADER_SIZE, *raws)

    # ------------------------------------------------------------------
    # Row writing
    # ------------------------------------------------------------------

    def write_new(
        self,
        buf,
        slot_off: int,
        values: Dict[str, Any],
        manager: "MemoryManager",
    ) -> None:
        """Initialise a freshly-allocated slot from *values*.

        Missing fields take their type default.  ``RefField`` values must
        already be ``(word, inc)`` pairs (or ``None``) — the collection
        layer converts user references according to the pointer mode.
        """
        unknown = set(values) - set(self.by_name)
        if unknown:
            raise TypeError(
                f"{self.type_name} has no field(s) {sorted(unknown)!r}"
            )
        for f in self.fields:
            off = slot_off + f.offset
            if isinstance(f, RefField):
                pair: Optional[Tuple[int, int]] = values.get(f.name)
                if pair is None:
                    f.encode_words(buf, off, NULL_ADDRESS, 0)
                else:
                    f.encode_words(buf, off, pair[0], pair[1])
            elif isinstance(f, VarStringField):
                # A fresh slot may contain a stale address from the slot's
                # previous occupant; clear it before encode frees "old".
                f._struct.pack_into(buf, off, NULL_ADDRESS)
                f.encode_into(buf, off, values.get(f.name, f.default), manager)
            else:
                f.encode_into(buf, off, values.get(f.name, f.default), manager)

    def write_field(
        self, buf, slot_off: int, name: str, value: Any, manager: "MemoryManager"
    ) -> None:
        f = self.by_name[name]
        if isinstance(f, RefField):
            if value is None:
                f.encode_words(buf, slot_off + f.offset, NULL_ADDRESS, 0)
            else:
                word, inc = value
                f.encode_words(buf, slot_off + f.offset, word, inc)
        else:
            f.encode_into(buf, slot_off + f.offset, value, manager)

    # ------------------------------------------------------------------
    # Row reading
    # ------------------------------------------------------------------

    def read_field(
        self, buf, slot_off: int, name: str, manager: "MemoryManager"
    ) -> Any:
        f = self.by_name[name]
        off = slot_off + f.offset
        if isinstance(f, RefField):
            word, inc = f.decode_words(buf, off)
            return (word, inc)
        return f.decode_from(buf, off, manager)

    def read_row(
        self, buf, slot_off: int, manager: "MemoryManager"
    ) -> Dict[str, Any]:
        """Decode every field (RefFields as raw ``(word, inc)`` pairs)."""
        return {
            f.name: self.read_field(buf, slot_off, f.name, manager)
            for f in self.fields
        }

    # ------------------------------------------------------------------
    # Lifetime hooks
    # ------------------------------------------------------------------

    def release_owned(self, buf, slot_off: int, manager: "MemoryManager") -> None:
        """Free out-of-slot storage owned by the object (strings)."""
        for f in self.var_fields:
            f.release_into(buf, slot_off + f.offset, manager)

    # ------------------------------------------------------------------
    # Codegen support
    # ------------------------------------------------------------------

    def offset_of(self, name: str) -> int:
        return self.by_name[name].offset

    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def __repr__(self) -> str:  # pragma: no cover
        cols = ", ".join(f"{f.name}@{f.offset}" for f in self.fields)
        return f"<SlotLayout {self.type_name} size={self.slot_size} [{cols}]>"
