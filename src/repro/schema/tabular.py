"""Tabular classes: the ``tabular`` class modifier (paper section 2).

A tabular class declares the schema of objects stored in a self-managed
collection.  The paper enforces, statically:

* tabular classes may only reference other tabular classes (so whole
  collections can be excluded from garbage collection);
* SMCs cannot be defined on base classes or interfaces — no inheritance
  between tabular classes — so all objects in a collection share one size
  and layout;
* strings are owned by the object.

In this reproduction a tabular class is declared by subclassing
:class:`Tabular` with :class:`~repro.schema.fields.Field` attributes::

    class Person(Tabular):
        name = CharField(24)
        age = Int32Field()

The class itself is a schema object — it is never instantiated.  Rows are
created by ``Collection.add`` and surfaced as handles.  For the managed
baselines, :meth:`Tabular.managed_class` generates a plain ``__slots__``
record class with the same fields.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from repro.errors import TabularTypeError
from repro.schema.fields import Field, RefField
from repro.schema.layout import SlotLayout

#: Global registry resolving tabular class names (for string RefField targets).
_REGISTRY: Dict[str, type] = {}


def resolve_tabular(target: Union[str, type]) -> type:
    """Resolve a RefField target to its tabular class, validating it."""
    if isinstance(target, str):
        cls = _REGISTRY.get(target)
        if cls is None:
            raise TabularTypeError(
                f"reference target {target!r} is not a known tabular class"
            )
        return cls
    if not (isinstance(target, type) and isinstance(target, TabularMeta)):
        raise TabularTypeError(
            f"references from tabular classes must target tabular classes, "
            f"got {target!r}"
        )
    return target


class TabularMeta(type):
    """Metaclass performing the static tabular-type checks."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        if namespace.get("_tabular_root_", False):
            return cls

        # No inheritance between tabular classes: the only allowed base is
        # the Tabular root itself.
        for base in bases:
            if isinstance(base, TabularMeta) and not base.__dict__.get(
                "_tabular_root_", False
            ):
                raise TabularTypeError(
                    f"tabular class {name} may not inherit from tabular "
                    f"class {base.__name__}; collections require a single "
                    f"fixed layout (paper section 2)"
                )
            if not isinstance(base, TabularMeta):
                raise TabularTypeError(
                    f"tabular class {name} may not inherit from "
                    f"non-tabular {base.__name__}"
                )

        fields: List[Field] = []
        for attr, value in namespace.items():
            if isinstance(value, Field):
                if value.owner is not None:
                    raise TabularTypeError(
                        f"field instance {attr} is already bound to "
                        f"{value.owner.__name__}; declare a fresh Field"
                    )
                value._bind(cls, attr, len(fields))
                fields.append(value)
        if not fields:
            raise TabularTypeError(f"tabular class {name} declares no fields")

        # References may only target tabular classes; class targets are
        # validated eagerly, string targets lazily at resolution time.
        for f in fields:
            if isinstance(f, RefField) and not isinstance(f.target, str):
                resolve_tabular(f.target)

        cls.__fields__ = fields
        cls.__layout__ = SlotLayout(fields, name)
        cls._managed_class = None
        _REGISTRY[name] = cls
        return cls

    def __call__(cls, *args, **kwargs):
        raise TabularTypeError(
            f"{cls.__name__} is a tabular schema class; create rows with "
            f"Collection.add(...) or plain records with "
            f"{cls.__name__}.managed_class()"
        )


class Tabular(metaclass=TabularMeta):
    """Root marker class for tabular schema declarations."""

    _tabular_root_ = True

    __fields__: List[Field] = []
    __layout__: SlotLayout = None  # type: ignore[assignment]

    @classmethod
    def layout(cls) -> SlotLayout:
        return cls.__layout__

    @classmethod
    def field_names(cls) -> List[str]:
        return [f.name for f in cls.__fields__]

    @classmethod
    def managed_class(cls) -> Type:
        """Plain ``__slots__`` record class for the managed baselines.

        The generated class mirrors the tabular fields as ordinary Python
        attributes — the analogue of storing regular managed objects in
        ``List<T>`` / ``ConcurrentDictionary`` in the paper's evaluation.
        """
        record = cls.__dict__.get("_managed_class")
        if record is not None:
            return record
        names = [f.name for f in cls.__fields__]
        params = ", ".join(f"{n}=None" for n in names)
        body = "\n".join(f"        self.{n} = {n}" for n in names)
        src = (
            f"class {cls.__name__}Record:\n"
            f"    __slots__ = {tuple(names)!r}\n"
            f"    def __init__(self, {params}):\n{body}\n"
        )
        scope: Dict[str, object] = {}
        exec(src, scope)  # noqa: S102 - deliberate, static codegen
        record = scope[f"{cls.__name__}Record"]
        record.__tabular__ = cls
        cls._managed_class = record
        return record
