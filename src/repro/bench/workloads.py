"""Benchmark workloads shared by the figure benches.

* :func:`allocation_throughput` — Figure 7's batch-allocation workload;
* :class:`RefreshStreams` — Figure 8's TPC-H refresh streams: one stream
  type inserts 0.1% of the initial lineitem population, the other
  enumerates the collection removing the 0.1% whose ``orderkey`` is in a
  pre-built hash set;
* :func:`wear` — the fresh→worn transition of Figure 10: repeated random
  removals and re-insertions that scatter managed objects over the heap
  and punch limbo holes into SMC blocks.
"""

from __future__ import annotations

import datetime as _dt
import random
import threading
import time
from decimal import Decimal
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.tpch.datagen import TpchData


def lineitem_values(rnd: random.Random, orderkey: int) -> Dict[str, Any]:
    """Synthesise one lineitem row (no references), for churn workloads."""
    ship = _dt.date(1994, 1, 1) + _dt.timedelta(days=rnd.randrange(0, 1500))
    return {
        "orderkey": orderkey,
        "partkey": rnd.randrange(1, 1000),
        "suppkey": rnd.randrange(1, 100),
        "linenumber": rnd.randrange(1, 8),
        "quantity": Decimal(rnd.randrange(1, 51)),
        "extendedprice": Decimal(rnd.randrange(100, 100000)).scaleb(-2),
        "discount": Decimal(rnd.randrange(0, 11)).scaleb(-2),
        "tax": Decimal(rnd.randrange(0, 9)).scaleb(-2),
        "returnflag": rnd.choice("RAN"),
        "linestatus": rnd.choice("OF"),
        "shipdate": ship,
        "commitdate": ship + _dt.timedelta(days=10),
        "receiptdate": ship + _dt.timedelta(days=20),
        "shipinstruct": "NONE",
        "shipmode": "RAIL",
        "comment": "quick refresh line",
    }


def allocation_throughput(
    add_one: Callable[[int], Any],
    count: int,
    threads: int = 1,
) -> float:
    """Objects allocated per second by *threads* workers adding *count* total."""
    per_thread = count // threads
    barrier = threading.Barrier(threads + 1)

    def worker(base: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            add_one(base + i)

    workers = [
        threading.Thread(target=worker, args=(t * per_thread,))
        for t in range(threads)
    ]
    for w in workers:
        w.start()
    barrier.wait()
    start = time.perf_counter()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - start
    return (per_thread * threads) / elapsed if elapsed > 0 else float("inf")


class RefreshStreams:
    """Figure 8's refresh streams against any collection adapter.

    The adapter supplies three callables so the same driver measures SMCs,
    managed dictionaries and managed lists:

    ``insert(values)``
        add one lineitem-shaped object;
    ``keys()``
        orderkeys currently present (sampled to pick removal victims);
    ``remove_by_orderkeys(keyset)``
        enumerate the collection once, removing objects whose orderkey is
        in the hash set (the paper's single-enumeration predicate removal).
    """

    def __init__(
        self,
        insert: Callable[[Dict[str, Any]], Any],
        keys: Callable[[], List[int]],
        remove_by_orderkeys: Callable[[set], int],
        initial_population: int,
        seed: int = 99,
    ) -> None:
        self.insert = insert
        self.keys = keys
        self.remove_by_orderkeys = remove_by_orderkeys
        self.batch = max(1, initial_population // 1000)  # 0.1%
        self.rnd = random.Random(seed)
        self._next_orderkey = 10_000_000

    def run_insert_stream(self) -> int:
        for __ in range(self.batch):
            self._next_orderkey += 1
            self.insert(lineitem_values(self.rnd, self._next_orderkey))
        return self.batch

    def run_delete_stream(self) -> int:
        keys = self.keys()
        if not keys:
            return 0
        victims = set(self.rnd.sample(keys, min(self.batch, len(keys))))
        return self.remove_by_orderkeys(victims)

    def throughput(self, seconds: float, threads: int = 1) -> float:
        """Streams per minute sustained for *seconds* with *threads* workers.

        Even workers run insert streams, odd workers delete streams (the
        paper alternates the two stream kinds with equal frequency).
        """
        stop = time.monotonic() + seconds
        counts = [0] * threads
        lock = threading.Lock()

        def worker(idx: int) -> None:
            while time.monotonic() < stop:
                if idx % 2 == 0:
                    self.run_insert_stream()
                else:
                    with lock:
                        # Delete streams enumerate-and-remove; serialise
                        # victim selection so two streams do not race on
                        # the same keys.
                        self.run_delete_stream()
                counts[idx] += 1

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        start = time.monotonic()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.monotonic() - start
        return sum(counts) / elapsed * 60.0


def wear(
    handles_or_records: List[Any],
    remove: Callable[[Any], None],
    insert: Callable[[Dict[str, Any]], Any],
    fraction: float = 0.5,
    rounds: int = 2,
    seed: int = 7,
) -> List[Any]:
    """Age a collection: remove a fraction and re-insert, *rounds* times.

    Returns the surviving+new population.  On managed collections this
    scatters objects across the Python heap (new objects interleave with
    unrelated allocations); on SMCs it punches limbo holes that later
    allocations partially refill — the paper's *worn* state (Figure 10).
    """
    rnd = random.Random(seed)
    population = list(handles_or_records)
    for __ in range(rounds):
        rnd.shuffle(population)
        cut = int(len(population) * fraction)
        victims, population = population[:cut], population[cut:]
        for v in victims:
            remove(v)
        for i in range(cut):
            population.append(insert(lineitem_values(rnd, 20_000_000 + i)))
    return population
