"""Benchmark harness: timing, series collection, paper-style reporting.

Each figure-reproduction bench (``benchmarks/bench_fig*.py``) both runs
under ``pytest-benchmark`` (per-configuration timings) and prints a
consolidated table shaped like the paper's figure through
:class:`FigureReport`, so EXPERIMENTS.md can record paper-vs-measured
side by side.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


#: Reports registered for end-of-session display (pytest captures plain
#: prints; the benchmarks' conftest flushes this in pytest_terminal_summary).
RENDERED_REPORTS: List[str] = []


def bench_scale_factor(default: float = 0.01) -> float:
    """TPC-H scale factor used by the benches (env ``REPRO_BENCH_SF``)."""
    return float(os.environ.get("REPRO_BENCH_SF", default))


def write_json_atomic(path, payload: Any) -> None:
    """Write *payload* as JSON to *path* atomically.

    The file is written to a temp name in the same directory, fsynced,
    and renamed into place (``os.replace``), then the directory entry is
    fsynced too — so a crash or power loss can never leave a truncated
    or half-written ``BENCH_*.json`` behind, and the rename itself is
    durable (same discipline as the durability module's manifests).
    """
    import json
    import tempfile
    from pathlib import Path

    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def time_callable(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-*repeat* wall-clock seconds of ``fn()``."""
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class Series:
    """One line/bar series of a figure: label plus (x, value) points."""

    label: str
    points: List[tuple] = field(default_factory=list)

    def add(self, x: Any, value: float) -> None:
        self.points.append((x, value))

    def value_at(self, x: Any) -> Optional[float]:
        for px, v in self.points:
            if px == x:
                return v
        return None


class FigureReport:
    """Collects series for one paper figure and prints a text table."""

    def __init__(self, figure: str, title: str, unit: str) -> None:
        self.figure = figure
        self.title = title
        self.unit = unit
        self.series: Dict[str, Series] = {}

    def record(self, label: str, x: Any, value: float) -> None:
        series = self.series.get(label)
        if series is None:
            series = self.series[label] = Series(label)
        series.add(x, value)

    def xs(self) -> List[Any]:
        seen: List[Any] = []
        for series in self.series.values():
            for x, __ in series.points:
                if x not in seen:
                    seen.append(x)
        return seen

    def render(self) -> str:
        xs = self.xs()
        labels = list(self.series)
        widths = [max(12, *(len(str(x)) for x in xs))] if xs else [12]
        header = f"{self.figure}: {self.title} [{self.unit}]"
        lines = ["", "=" * len(header), header, "=" * len(header)]
        col0 = max([len(label) for label in labels] + [8])
        xcols = [max(len(f"{x}"), 10) for x in xs]
        head = " " * col0 + " | " + " | ".join(
            f"{x!s:>{w}}" for x, w in zip(xs, xcols)
        )
        lines.append(head)
        lines.append("-" * len(head))
        for label in labels:
            series = self.series[label]
            cells = []
            for x, w in zip(xs, xcols):
                v = series.value_at(x)
                cells.append(f"{'-' if v is None else format(v, '.4g'):>{w}}")
            lines.append(f"{label:<{col0}} | " + " | ".join(cells))
        return "\n".join(lines)

    def print(self) -> None:
        text = self.render()
        print(text)
        RENDERED_REPORTS.append(text)

    def normalised(self, baseline_label: str) -> "FigureReport":
        """A copy with every series divided by *baseline_label* per x."""
        out = FigureReport(self.figure, self.title + " (normalised)", "x")
        base = self.series[baseline_label]
        for label, series in self.series.items():
            for x, v in series.points:
                bv = base.value_at(x)
                if bv:
                    out.record(label, x, v / bv)
        return out
