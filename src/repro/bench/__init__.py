"""Benchmark harness and shared workloads."""

from repro.bench.harness import FigureReport, Series, bench_scale_factor, time_callable
from repro.bench.workloads import RefreshStreams, allocation_throughput, lineitem_values, wear

__all__ = [
    "FigureReport",
    "Series",
    "bench_scale_factor",
    "time_callable",
    "RefreshStreams",
    "allocation_throughput",
    "lineitem_values",
    "wear",
]
