"""Core SMC layer: collections, handles, compaction, columnar storage."""

from repro.core.collection import Collection, default_manager, reset_default_manager
from repro.core.columnar import ColumnarCollection, ColumnarHandle
from repro.core.compaction import Compactor
from repro.core.handle import Handle
from repro.core.repair import repair_in_thread, repair_references

__all__ = [
    "Collection",
    "ColumnarCollection",
    "ColumnarHandle",
    "Compactor",
    "Handle",
    "default_manager",
    "repair_in_thread",
    "repair_references",
    "reset_default_manager",
]
