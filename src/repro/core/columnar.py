"""Columnar storage for SMCs (paper section 4.1).

Because an SMC's blocks contain only objects of one collection (hence one
type), the collection can decouple the storage layout from the class
definition and store each field as a per-block column.  The indirection
table then stores the object's *(block, slot)* identifiers instead of a
byte pointer — encoded here as the usual block-aligned address whose
offset part is the slot index — and both reference dereferencing and the
query compiler access values column-wise.

Columnar blocks keep the full slot-directory / back-pointer / slot-header
machinery of row blocks, so allocation, removal, epochs and limbo
reclamation work unchanged; compaction is not offered for columnar
collections (the paper describes relocation for row blocks only).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple, Type, Union

import numpy as np

from repro.errors import NullReferenceError, TabularTypeError
from repro.memory import slots as slotcodec
from repro.memory import zonemap as _zonemap
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.block import BLOCK_HEADER_SIZE, KIND_COLUMNAR, _HEADER_STRUCT
from repro.memory.context import MemoryContext
from repro.memory.indirection import INC_MASK
from repro.memory.manager import MemoryManager
from repro.memory.reference import Ref
from repro.memory.slots import FREE, LIMBO, VALID
from repro.sanitizer import hooks as _san
from repro.core.collection import Collection, default_manager
from repro.schema.fields import (
    BoolField,
    CharField,
    DateField,
    DecimalField,
    Field,
    Float64Field,
    Int8Field,
    Int16Field,
    Int32Field,
    Int64Field,
    RefField,
    VarStringField,
)
from repro.schema.tabular import Tabular, TabularMeta

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.addressing import AddressSpace


def column_dtype(field: Field, dict_codes: bool = False) -> Union[np.dtype, str]:
    """NumPy dtype storing *field*'s raw representation in a column.

    With *dict_codes*, varstring columns hold fixed-width dictionary codes
    (int32) instead of 8-byte string-heap addresses.
    """
    if isinstance(field, VarStringField):
        return np.int32 if dict_codes else np.int64
    if isinstance(field, (DecimalField, Int64Field)):
        return np.int64
    if isinstance(field, (DateField, Int32Field)):
        return np.int32
    if isinstance(field, Int16Field):
        return np.int16
    if isinstance(field, (Int8Field, BoolField)):
        return np.int8
    if isinstance(field, Float64Field):
        return np.float64
    if isinstance(field, CharField):
        return f"S{field.width}"
    raise TypeError(f"no column dtype for {type(field).__name__}")


def columnar_offsets(
    layout, dict_fields: frozenset, n: int
) -> Tuple[List[Tuple[str, np.dtype, int]], int, int, int, int]:
    """Byte layout of an *n*-slot columnar block buffer.

    Returns ``(columns, dir_off, bp_off, inc_off, total)`` where *columns*
    is ``[(name, dtype, offset)]`` in field order (ref fields contribute a
    ``__w`` int64 and ``__i`` uint32 pair).  The function is purely
    deterministic in ``(layout, dict_fields, n)`` so a worker process that
    read ``n`` out of the block header recomputes the exact same offsets
    and rebuilds its views over the attached segment.
    """

    def _align(off: int, a: int = 8) -> int:
        return off + (-off % a)

    cols: List[Tuple[str, np.dtype, int]] = []
    off = BLOCK_HEADER_SIZE
    for f in layout.fields:
        if isinstance(f, RefField):
            for suffix, dt in ((f.name + "__w", np.int64), (f.name + "__i", np.uint32)):
                dt = np.dtype(dt)
                off = _align(off)
                cols.append((suffix, dt, off))
                off += n * dt.itemsize
        else:
            dt = np.dtype(column_dtype(f, f.name in dict_fields))
            off = _align(off)
            cols.append((f.name, dt, off))
            off += n * dt.itemsize
    dir_off = _align(off)
    bp_off = _align(dir_off + 4 * n)
    inc_off = _align(bp_off + 8 * n)
    total = inc_off + 4 * n
    return cols, dir_off, bp_off, inc_off, total


class ColumnarBlock:
    """A block whose object data lives in per-field column arrays."""

    __slots__ = (
        "space",
        "block_id",
        "base_address",
        "segment",
        "buf",
        "type_id",
        "context_id",
        "slot_size",
        "slot_count",
        "columns",
        "directory",
        "backptrs",
        "slot_incs",
        "valid_count",
        "limbo_count",
        "alloc_cursor",
        "is_active",
        "compacting",
        "queued_for_reclaim",
        "reclaim_ready_epoch",
        "relocation_list",
        "compaction_group",
        "zones",
        "zone_version",
        "residency",
        "pin_count",
        "tier_dirty",
        "tier_offset",
        "read_clock",
        "cool_epoch",
        "_view_spec",
    )

    def __init__(
        self,
        space: "AddressSpace",
        layout,
        type_id: int,
        context_id: int,
        dict_fields: frozenset = frozenset(),
    ) -> None:
        self.space = space
        self.block_id = space.register(self)
        self.base_address = space.address_of(self.block_id)
        self.type_id = type_id
        self.context_id = context_id
        self.slot_size = layout.slot_size  # nominal, for memory accounting
        # Same per-object budget as a row block of this type would have,
        # shrunk until all columns + metadata segments (with their 8-byte
        # alignment padding) fit the fixed block size.
        n = max(1, (space.block_size - BLOCK_HEADER_SIZE) // (layout.slot_size + 4 + 8))
        spec = columnar_offsets(layout, dict_fields, n)
        while spec[4] > space.block_size and n > 1:
            n -= 1
            spec = columnar_offsets(layout, dict_fields, n)
        cols, dir_off, bp_off, inc_off, total = spec
        if total > space.block_size:
            raise ValueError(
                f"columnar layout of {layout.slot_size}B objects does not "
                f"fit a {space.block_size}-byte block"
            )
        self.slot_count = n
        # All columns and metadata live in ONE flat buffer with a
        # self-describing header, exactly like row blocks, so a worker
        # process can attach the segment and recompute every view from
        # (header, layout) alone.
        self.segment = space.buffers.create(space.block_size)
        self.buf = self.segment.buf
        _HEADER_STRUCT.pack_into(
            self.buf, 0, type_id, context_id, n, layout.slot_size, KIND_COLUMNAR
        )
        self._view_spec = (cols, dir_off, bp_off, inc_off)
        self._bind_views()
        for f in layout.fields:
            if isinstance(f, RefField):
                self.columns[f.name + "__w"].fill(NULL_ADDRESS)
        self.backptrs.fill(-1)
        self.valid_count = 0
        self.limbo_count = 0
        self.alloc_cursor = 0
        self.is_active = False
        self.compacting = False
        self.queued_for_reclaim = False
        self.reclaim_ready_epoch = -1
        self.relocation_list = None
        self.compaction_group = None
        self.zones = None
        self.zone_version = 0
        # --- memory tiering (repro.memory.pager); see Block -------------
        self.residency = "hot"
        self.pin_count = 0
        self.tier_dirty = False
        self.tier_offset = -1
        self.read_clock = 0
        self.cool_epoch = -1

    def _bind_views(self) -> None:
        """(Re)build column and metadata views over the current ``buf``.

        Write-free, so the pager can call it over a read-only cold
        mapping; see :meth:`repro.memory.block.Block._bind_views`.
        """
        cols, dir_off, bp_off, inc_off = self._view_spec
        n = self.slot_count
        mv = memoryview(self.buf)
        self.columns: Dict[str, np.ndarray] = {
            name: np.frombuffer(mv, dtype=dt, count=n, offset=off)
            for name, dt, off in cols
        }
        self.directory = np.frombuffer(mv, dtype=np.uint32, count=n, offset=dir_off)
        self.backptrs = np.frombuffer(mv, dtype=np.int64, count=n, offset=bp_off)
        self.slot_incs = np.frombuffer(mv, dtype=np.uint32, count=n, offset=inc_off)

    # -- address arithmetic: offset part IS the slot id ------------------

    def slot_address(self, slot: int) -> int:
        return self.base_address | slot

    def slot_of_address(self, address: int) -> int:
        return self.space.offset_of(address)

    # -- slot directory (same protocol as row blocks) --------------------

    def state_of(self, slot: int) -> int:
        return int(self.directory[slot]) & slotcodec.STATE_MASK

    def mark_valid(self, slot: int) -> None:
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "slot.valid", block=self, slot=slot, word=int(self.directory[slot])
            )
        prev = int(self.directory[slot]) & slotcodec.STATE_MASK
        self.directory[slot] = slotcodec.pack(VALID)
        if prev == LIMBO:
            self.limbo_count -= 1
        self.valid_count += 1
        self.zone_version += 1  # invalidate the zone map (see Block.mark_valid)

    def mark_limbo(self, slot: int, epoch: int) -> None:
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "slot.limbo",
                block=self,
                slot=slot,
                word=int(self.directory[slot]),
                epoch=epoch,
            )
        if self.state_of(slot) != VALID:
            raise ValueError(f"slot {slot} is not valid")
        self.directory[slot] = slotcodec.pack(LIMBO, epoch)
        self.valid_count -= 1
        self.limbo_count += 1

    def valid_slots(self) -> np.ndarray:
        return np.nonzero((self.directory & slotcodec.STATE_MASK) == VALID)[0]

    def valid_mask(self) -> np.ndarray:
        return (self.directory & slotcodec.STATE_MASK) == VALID

    def iter_valid_slots(self) -> Iterator[int]:
        for slot in self.valid_slots():
            yield int(slot)

    def find_allocatable(self, start: int, global_epoch: int) -> Optional[int]:
        directory = self.directory
        for slot in range(start, self.slot_count):
            word = int(directory[slot])
            state = word & slotcodec.STATE_MASK
            if state == FREE:
                return slot
            if state == LIMBO and global_epoch >= slotcodec.epoch_of(word) + 2:
                return slot
        return None

    @property
    def limbo_fraction(self) -> float:
        return self.limbo_count / self.slot_count

    @property
    def occupancy(self) -> float:
        return self.valid_count / self.slot_count

    def release(self) -> None:
        self.space.unregister(self.block_id)
        # Views must die before the backing segment can be unmapped.
        self.columns = None
        self.directory = None
        self.backptrs = None
        self.slot_incs = None
        self.buf = None
        self.segment.release()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ColumnarBlock id={self.block_id} type={self.type_id} "
            f"valid={self.valid_count}/{self.slot_count}>"
        )


class ColumnarHandle:
    """Checked per-object view over a columnar collection."""

    __slots__ = ("_collection", "_ref")

    def __init__(self, collection: "ColumnarCollection", ref: Ref) -> None:
        object.__setattr__(self, "_collection", collection)
        object.__setattr__(self, "_ref", ref)

    @property
    def ref(self) -> Ref:
        return self._ref

    @property
    def is_alive(self) -> bool:
        return self._ref.is_alive

    def __eq__(self, other):
        if isinstance(other, ColumnarHandle):
            return self._ref == other._ref
        return NotImplemented

    def __hash__(self):
        return hash(self._ref)

    def _locate(self) -> Tuple[ColumnarBlock, int]:
        address = self._ref.address()
        block = self._collection.manager.space.block_at(address)
        return block, block.slot_of_address(address)

    def __getattr__(self, name: str) -> Any:
        collection = self._collection
        field = collection.layout.by_name.get(name)
        if field is None:
            raise AttributeError(name)
        epochs = collection.manager.epochs
        epochs.enter_critical_section()
        try:
            return self._get_field(collection, field, name)
        finally:
            epochs.exit_critical_section()

    def _get_field(self, collection, field, name: str) -> Any:
        block, slot = self._locate()
        manager = collection.manager
        if isinstance(field, RefField):
            word = int(block.columns[name + "__w"][slot])
            if word == NULL_ADDRESS:
                return None
            target = collection.target_collection(field)
            if manager.direct_pointers:
                t_addr = word
                t_block = manager.space.block_at(t_addr)
                t_slot = t_block.slot_of_address(t_addr)
                entry = int(t_block.backptrs[t_slot])
            else:
                entry = word
            return target._handle(Ref(manager, entry, manager.table.incarnation(entry)))
        raw = block.columns[name][slot]
        if isinstance(field, CharField):
            return bytes(raw).rstrip(b" \x00").decode("utf-8")
        if isinstance(field, VarStringField):
            sd = collection.strdict
            if sd is not None:
                return sd.text_of(int(raw))
            return manager.strings.read(int(raw))
        return field.from_raw(
            raw.item() if isinstance(raw, np.generic) else raw
        )

    def __setattr__(self, name: str, value: Any) -> None:
        collection = self._collection
        field = collection.layout.by_name.get(name)
        if field is None:
            raise AttributeError(name)
        mlog = collection.mutation_log
        if mlog is None:
            self._set_field(collection, field, name, value)
            return
        with mlog.hold():
            self._set_field(collection, field, name, value)
            mlog.log_update(collection, self._ref.entry, name, value)

    def _set_field(self, collection, field, name: str, value: Any) -> None:
        epochs = collection.manager.epochs
        epochs.enter_critical_section()
        try:
            block, slot = self._locate()
            pager = collection.manager.pager
            if pager is not None:
                pager.ensure_hot(block)  # writable columns; cancels cooling
            collection._write_field(block, slot, field, value)
            if _zonemap.is_zoned(field):
                block.zone_version += 1  # invalidate the zone map
            if not isinstance(field, RefField):
                collection._notify_field_update(
                    self._ref.entry, name, field.from_raw(field.to_raw(value))
                )
        finally:
            epochs.exit_critical_section()

    def __repr__(self) -> str:  # pragma: no cover
        name = self._collection.schema.__name__
        return f"<{name} columnar handle {'alive' if self.is_alive else 'null'}>"


class ColumnarCollection(Collection):
    """A self-managed collection with columnar object storage."""

    compiled_flavor = "columnar"

    def __init__(
        self,
        schema: Type[Tabular],
        manager: Optional[MemoryManager] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(schema, manager, name)
        layout = self.layout
        mgr = self.manager
        type_id = self.context.type_id
        context = self.context
        dict_fields = (
            frozenset(f.name for f in layout.var_fields)
            if self.strdict is not None
            else frozenset()
        )
        #: Columnar contexts build columnar blocks instead of row blocks.
        context.block_factory = lambda: ColumnarBlock(
            mgr.space, layout, type_id, context.context_id, dict_fields
        )
        #: Recorded so a worker attaching this context's blocks by segment
        #: name can recompute the exact column offsets (columnar_offsets).
        context.dict_fields = dict_fields

    # -- row construction --------------------------------------------------

    def add(self, **values: Any):
        mlog = self.mutation_log
        if mlog is None:
            return self._add_impl(values)
        with mlog.hold():
            handle = self._add_impl(values)
            mlog.log_add(self, handle.ref.entry, values)
            return handle

    def _add_impl(self, values: Dict[str, Any]):
        converted: Dict[str, Any] = {}
        for key, value in values.items():
            field = self.layout.by_name.get(key)
            if field is None:
                raise TypeError(f"{self.schema.__name__} has no field {key!r}")
            converted[key] = value
        block, slot, ref = self.manager.allocate_object(
            self.context, defer_publish=True
        )
        for field in self.layout.fields:
            self._write_field(
                block, slot, field, converted.get(field.name, field.default)
            )
        self.context.commit_slot(block, slot)
        handle = ColumnarHandle(self, ref)
        for index in self._indexes:
            index._insert(ref.entry, getattr(handle, index.field_name))
        return handle

    def _write_field(
        self, block: ColumnarBlock, slot: int, field: Field, value: Any
    ) -> None:
        manager = self.manager
        if isinstance(field, RefField):
            pair = self._ref_words(field, value)
            if pair is None:
                block.columns[field.name + "__w"][slot] = NULL_ADDRESS
                block.columns[field.name + "__i"][slot] = 0
            else:
                block.columns[field.name + "__w"][slot] = pair[0]
                block.columns[field.name + "__i"][slot] = pair[1]
            return
        if isinstance(field, CharField):
            data = str(value).encode("utf-8")
            if len(data) > field.width:
                raise ValueError(
                    f"string of {len(data)} bytes exceeds CharField({field.width})"
                )
            block.columns[field.name][slot] = data
            return
        if isinstance(field, VarStringField):
            text = "" if value is None else str(value)
            sd = self.strdict
            old = int(block.columns[field.name][slot])
            if sd is not None:
                if old > 0:
                    sd.release(old)
                block.columns[field.name][slot] = sd.intern(text)
                return
            if old != NULL_ADDRESS and old != 0:
                manager.strings.free(old)
            block.columns[field.name][slot] = manager.strings.alloc(text)
            return
        block.columns[field.name][slot] = field.to_raw(value)

    def remove(self, obj: Union[ColumnarHandle, Ref]) -> None:
        ref = obj.ref if isinstance(obj, ColumnarHandle) else obj
        mlog = self.mutation_log
        if mlog is None:
            self._remove_impl(ref)
            return
        with mlog.hold():
            self._remove_impl(ref)
            mlog.log_remove(self, ref.entry)

    def _remove_impl(self, ref: Ref) -> None:
        epochs = self.manager.epochs
        epochs.enter_critical_section()
        try:
            address = ref.address()
            block = self.manager.space.block_at(address)
            slot = block.slot_of_address(address)
            pager = self.manager.pager
            if pager is not None:
                pager.ensure_hot(block)  # the column zeroing below writes
            sd = self.strdict
            for field in self.layout.var_fields:
                raw = int(block.columns[field.name][slot])
                if sd is not None:
                    if raw > 0:
                        sd.release(raw)
                    block.columns[field.name][slot] = 0
                elif raw != NULL_ADDRESS and raw != 0:
                    self.manager.strings.free(raw)
                    block.columns[field.name][slot] = NULL_ADDRESS
            self.manager.free_object(ref)
        finally:
            epochs.exit_critical_section()
        for index in self._indexes:
            index._delete(ref.entry)

    # -- enumeration --------------------------------------------------------

    def _handle(self, ref: Ref) -> ColumnarHandle:
        return ColumnarHandle(self, ref)

    def __iter__(self) -> Iterator[ColumnarHandle]:
        manager = self.manager
        from repro.query.runtime import scan_blocks

        for block in scan_blocks(manager, self.context):
            with manager.critical_section():
                handles = [
                    ColumnarHandle(
                        self,
                        Ref(
                            manager,
                            int(block.backptrs[slot]),
                            manager.table.incarnation(int(block.backptrs[slot])),
                        ),
                    )
                    for slot in block.valid_slots()
                ]
            yield from handles

    def compact(self, occupancy_threshold: float = 0.3) -> int:
        raise NotImplementedError(
            "compaction is defined for row-layout SMCs (paper section 5)"
        )
