"""Live-object handles.

A handle is the application-facing façade of one self-managed object: it
pairs a :class:`~repro.memory.reference.Ref` with the object's slot layout
and performs the paper's dereference protocol on every attribute access.
Handles are what ``Collection.add`` returns and what reference fields
navigate to — the moral equivalent of an object reference in the paper's
modified runtime, with the JIT-injected incarnation checks performed in
library code instead (exactly how the paper's own evaluation prototype
works, section 7).

Attribute reads and writes re-validate the reference each time; once the
object is removed from its collection every access raises
:class:`~repro.errors.NullReferenceError` (section 2 semantics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import NullReferenceError
from repro.memory import zonemap
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import FLAG_MASK, FORWARD, INC_MASK
from repro.schema.fields import RefField

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.collection import Collection
    from repro.memory.manager import MemoryManager
    from repro.memory.reference import Ref


class Handle:
    """A checked view of one live self-managed object."""

    __slots__ = ("_collection", "_ref")

    def __init__(self, collection: "Collection", ref: "Ref") -> None:
        object.__setattr__(self, "_collection", collection)
        object.__setattr__(self, "_ref", ref)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def ref(self) -> "Ref":
        return self._ref

    @property
    def collection(self) -> "Collection":
        return self._collection

    @property
    def is_alive(self) -> bool:
        return self._ref.is_alive

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Handle):
            return self._ref == other._ref
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._ref)

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------

    # Every attribute access runs inside a critical section: the paper's
    # runtime injects enter/exit around each dereference (section 3.4), so
    # the resolved address stays valid while the field bytes are read.

    def __getattr__(self, name: str) -> Any:
        collection = self._collection
        field = collection.layout.by_name.get(name)
        if field is None:
            raise AttributeError(
                f"{collection.schema.__name__} has no field {name!r}"
            )
        manager = collection.manager
        epochs = manager.epochs
        epochs.enter_critical_section()
        try:
            address = self._ref.address()
            block = manager.space.block_at(address)
            off = manager.space.offset_of(address) + field.offset
            if isinstance(field, RefField):
                return _read_ref_field(collection, field, block.buf, off)
            return field.decode_from(block.buf, off, manager)
        finally:
            epochs.exit_critical_section()

    def __setattr__(self, name: str, value: Any) -> None:
        collection = self._collection
        field = collection.layout.by_name.get(name)
        if field is None:
            raise AttributeError(
                f"{collection.schema.__name__} has no field {name!r}"
            )
        mlog = collection.mutation_log
        if mlog is None:
            self._write_field(collection, field, name, value)
            return
        with mlog.hold():
            self._write_field(collection, field, name, value)
            mlog.log_update(collection, self._ref.entry, name, value)

    def _write_field(self, collection, field, name: str, value: Any) -> None:
        manager = collection.manager
        epochs = manager.epochs
        epochs.enter_critical_section()
        try:
            address = self._ref.address()
            block = manager.space.block_at(address)
            if manager.pager is not None:
                # Promote (and mark dirty) before touching the buffer;
                # inside the critical section, so demotion cannot race
                # the write (repro.memory.pager).
                manager.pager.ensure_hot(block)
            off = manager.space.offset_of(address)
            if isinstance(field, RefField):
                pair = collection._ref_words(field, value)
                collection.layout.write_field(
                    block.buf, off, name, pair, manager
                )
            else:
                collection.layout.write_field(
                    block.buf, off, name, value, manager
                )
                if zonemap.is_zoned(field):
                    block.zone_version += 1  # invalidate the zone map
                notify = getattr(collection, "_notify_field_update", None)
                if notify is not None:
                    notify(self._ref.entry, name, field.from_raw(field.to_raw(value)))
        finally:
            epochs.exit_critical_section()

    # ------------------------------------------------------------------
    # Bulk access
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Decode all fields; RefFields become handles (or ``None``)."""
        return {f.name: getattr(self, f.name) for f in self._collection.layout.fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self._collection.schema.__name__
        if not self.is_alive:
            return f"<{name} handle (null)>"
        fields = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in self._collection.layout.fields[:4]
        )
        more = "..." if len(self._collection.layout.fields) > 4 else ""
        return f"<{name} {fields}{more}>"


def _read_ref_field(
    collection: "Collection", field: RefField, buf, off: int
) -> Optional[Handle]:
    """Decode a stored reference field into a handle of the target class."""
    word, inc = field.decode_words(buf, off)
    if word == NULL_ADDRESS:
        return None
    manager = collection.manager
    target = collection.target_collection(field)
    from repro.memory.reference import Ref

    if manager.direct_pointers:
        address = resolve_direct_pointer(manager, word, inc, buf, off, field)
        block = manager.space.block_at(address)
        slot = block.slot_of_address(address)
        entry = int(block.backptrs[slot])
        return target._handle(
            Ref(manager, entry, manager.table.incarnation(entry))
        )
    return target._handle(Ref(manager, word, inc))


def resolve_direct_pointer(
    manager: "MemoryManager",
    address: int,
    inc: int,
    src_buf=None,
    src_off: Optional[int] = None,
    field: Optional[RefField] = None,
) -> int:
    """Resolve a direct in-row pointer, following forwarding tombstones.

    Direct pointers (paper section 6) are validated against the *slot
    header* incarnation.  A relocated object leaves a FORWARD-flagged
    tombstone; readers follow the slot's back-pointer to the indirection
    entry, pick up the new address, and heal the source field so future
    accesses are direct again.
    """
    space = manager.space
    hops = 0
    while True:
        block = space.try_block_at(address)
        if block is None:
            raise NullReferenceError(f"direct pointer {address:#x} is dangling")
        slot = block.slot_of_address(address)
        word = int(block.slot_incs[slot])
        if (word & INC_MASK) != (inc & INC_MASK):
            raise NullReferenceError(
                f"direct pointer to freed slot (incarnation mismatch)"
            )
        if not word & FLAG_MASK:
            return address
        if word & FORWARD:
            # Tombstone: the indirection entry knows the new location.
            entry = int(block.backptrs[slot])
            new_address = manager.table.address_of(entry)
            new_block = space.block_at(new_address)
            new_slot = new_block.slot_of_address(new_address)
            new_inc = int(new_block.slot_incs[new_slot]) & INC_MASK
            if src_buf is not None and field is not None and src_off is not None:
                try:
                    field.encode_words(src_buf, src_off, new_address, new_inc)
                except (TypeError, ValueError):
                    # Healing is an optimisation; a cold (read-only
                    # mapped) source block simply keeps its tombstone
                    # pointer until a real write promotes it.
                    pass
            address, inc = new_address, new_inc
            hops += 1
            if hops > 64:
                raise NullReferenceError("forwarding chain too long")
            continue
        # FROZEN / LOCKED during an active compaction: fall back to the
        # indirection entry, which handles the three relocation cases.
        entry = int(block.backptrs[slot])
        return manager._deref_frozen(entry, manager.table.incarnation(entry))
