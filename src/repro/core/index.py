"""Secondary hash indexes over self-managed collections.

An extension beyond the paper's prototype (its comparator wins exactly
where *it* has indexes, Figure 13): a hash index maps a field's value to
the indirection entries of the objects carrying it, maintained
automatically on ``add``, ``remove`` and field updates.  Point lookups
then cost O(1) instead of a block scan::

    idx = orders.create_index("orderkey")
    handle = idx.get_one(42)
    handles = idx.get(42)          # all duplicates (bag semantics)

Index entries store indirection-entry ids, so they stay valid across
compaction (relocation re-points the entry, not the id).  Stale entries
from concurrent removals are filtered at lookup through the usual
incarnation check.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from repro.errors import NullReferenceError, SmcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.collection import Collection
    from repro.core.handle import Handle


class IndexError_(SmcError):
    """Raised for index misuse (shadow-free name: builtins has IndexError)."""


class HashIndex:
    """Value → indirection-entry index on one field of a collection."""

    #: Snapshot tag (the index section persists ``(field, kind)`` pairs).
    kind = "hash"

    def __init__(self, collection: "Collection", field_name: str) -> None:
        field = collection.layout.by_name.get(field_name)
        if field is None:
            raise IndexError_(
                f"{collection.schema.__name__} has no field {field_name!r}"
            )
        from repro.schema.fields import RefField, VarStringField

        if isinstance(field, (RefField, VarStringField)):
            raise IndexError_(
                f"hash indexes support scalar and CHAR fields, not "
                f"{type(field).__name__}"
            )
        self.collection = collection
        self.field_name = field_name
        self._buckets: Dict[Any, Set[int]] = {}
        self._entry_keys: Dict[int, Any] = {}
        self._lock = threading.Lock()
        # Backfill existing rows.
        for handle in collection:
            self._insert(handle.ref.entry, getattr(handle, field_name))

    # -- maintenance (called by the owning collection) -------------------

    def _insert(self, entry: int, key: Any) -> None:
        with self._lock:
            self._buckets.setdefault(key, set()).add(entry)
            self._entry_keys[entry] = key

    def _delete(self, entry: int) -> None:
        with self._lock:
            key = self._entry_keys.pop(entry, None)
            if key is None:
                return
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(entry)
                if not bucket:
                    del self._buckets[key]

    def _update(self, entry: int, new_key: Any) -> None:
        self._delete(entry)
        self._insert(entry, new_key)

    # -- lookups ----------------------------------------------------------

    def get(self, key: Any) -> List["Handle"]:
        """All live objects whose indexed field equals *key*."""
        with self._lock:
            entries = list(self._buckets.get(key, ()))
        manager = self.collection.manager
        from repro.memory.reference import Ref

        handles = []
        for entry in entries:
            handle = self.collection._handle(
                Ref(manager, entry, manager.table.incarnation(entry))
            )
            try:
                # Validate liveness and that the key still matches (a
                # racing update may not have reached the index yet).
                if getattr(handle, self.field_name) == key:
                    handles.append(handle)
            except NullReferenceError:
                continue
        return handles

    def get_one(self, key: Any) -> Optional["Handle"]:
        """One live object for *key*, or ``None``."""
        matches = self.get(key)
        return matches[0] if matches else None

    def __contains__(self, key: Any) -> bool:
        return bool(self.get(key))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        with self._lock:
            return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<HashIndex {self.collection.name}.{self.field_name}: "
            f"{len(self)} entries, {self.distinct_keys} keys>"
        )


class SortedIndex:
    """Order-preserving index for range lookups (``bisect``-based).

    The SMC counterpart of the comparator's clustered indexes (paper
    Figure 13: "the database benefits from the indexes on shipdate and
    orderdate").  Keys live in one sorted array of ``(key, entry)``
    pairs; range queries bisect to the boundary positions::

        by_ship = lineitems.create_sorted_index("shipdate")
        rows = by_ship.range(date(1994, 1, 1), date(1995, 1, 1), hi_open=True)

    Inserts use ``insort`` (O(n) shifts — cheap in CPython for the
    bulk-load-then-query workloads SMCs target; a B-tree would replace
    this for write-heavy uses).
    """

    #: Snapshot tag (the index section persists ``(field, kind)`` pairs).
    kind = "sorted"

    def __init__(self, collection: "Collection", field_name: str) -> None:
        field = collection.layout.by_name.get(field_name)
        if field is None:
            raise IndexError_(
                f"{collection.schema.__name__} has no field {field_name!r}"
            )
        from repro.schema.fields import RefField, VarStringField

        if isinstance(field, (RefField, VarStringField)):
            raise IndexError_(
                f"sorted indexes support scalar and CHAR fields, not "
                f"{type(field).__name__}"
            )
        self.collection = collection
        self.field_name = field_name
        self._pairs: List[tuple] = []
        self._entry_keys: Dict[int, Any] = {}
        self._lock = threading.Lock()
        for handle in collection:
            self._insert(handle.ref.entry, getattr(handle, field_name))

    # -- maintenance (same protocol as HashIndex) ------------------------

    def _insert(self, entry: int, key: Any) -> None:
        import bisect

        with self._lock:
            bisect.insort(self._pairs, (key, entry))
            self._entry_keys[entry] = key

    def _delete(self, entry: int) -> None:
        import bisect

        with self._lock:
            key = self._entry_keys.pop(entry, None)
            if key is None:
                return
            lo = bisect.bisect_left(self._pairs, (key, entry))
            if lo < len(self._pairs) and self._pairs[lo] == (key, entry):
                del self._pairs[lo]

    def _update(self, entry: int, new_key: Any) -> None:
        self._delete(entry)
        self._insert(entry, new_key)

    # -- lookups ----------------------------------------------------------

    def _entries_in_range(self, lo, hi, lo_open: bool, hi_open: bool):
        import bisect

        with self._lock:
            left = 0
            right = len(self._pairs)
            if lo is not None:
                left = (
                    bisect.bisect_right(self._pairs, (lo, float("inf")))
                    if lo_open
                    else bisect.bisect_left(self._pairs, (lo,))
                )
            if hi is not None:
                right = (
                    bisect.bisect_left(self._pairs, (hi,))
                    if hi_open
                    else bisect.bisect_right(self._pairs, (hi, float("inf")))
                )
            return [entry for __, entry in self._pairs[left:right]]

    def range(
        self,
        lo=None,
        hi=None,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> List["Handle"]:
        """Live objects with ``lo <= field <= hi`` (bounds optional).

        ``lo_open`` / ``hi_open`` make the corresponding bound strict.
        Results come back in key order.
        """
        from repro.memory.reference import Ref

        manager = self.collection.manager
        handles = []
        for entry in self._entries_in_range(lo, hi, lo_open, hi_open):
            handle = self.collection._handle(
                Ref(manager, entry, manager.table.incarnation(entry))
            )
            try:
                value = getattr(handle, self.field_name)
            except NullReferenceError:
                continue
            handles.append(handle)
        return handles

    def get(self, key: Any) -> List["Handle"]:
        return self.range(key, key)

    def min_key(self):
        with self._lock:
            return self._pairs[0][0] if self._pairs else None

    def max_key(self):
        with self._lock:
            return self._pairs[-1][0] if self._pairs else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SortedIndex {self.collection.name}.{self.field_name}: "
            f"{len(self)} entries [{self.min_key()!r} .. {self.max_key()!r}]>"
        )
