"""Compaction (paper section 5) and direct-pointer rewriting (section 6).

When a collection shrinks heavily, under-occupied blocks are emptied into
fresh blocks and returned to the block pool.  Relocating live objects
without stopping the application extends the epoch scheme:

* **Freezing epoch** (``e + 1``): the compactor selects blocks below the
  occupancy threshold, packs them into *compaction groups* (each group's
  survivors fit one destination block), builds per-block relocation lists
  and sets the FROZEN bit on every scheduled object's incarnation word.
* **Relocation epoch** (``e + 2``), *waiting phase*: threads that hit a
  frozen object may still be racing with relocation, so they *bail out*
  the relocation (mark it failed, unfreeze) and proceed.
* **Relocation epoch**, *moving phase* (all threads observed in
  ``e + 2``): the compactor — or any reader that reaches a frozen object
  first ("helping") — locks the incarnation word, copies the object to its
  destination slot, re-points the indirection entry, and unfreezes.
* The compactor finally advances the epoch to ``e + 3`` and releases the
  emptied source blocks (deferred by the usual two-epoch safety rule).

Block-level consistency (section 5.2): queries scan all blocks of a
compaction group consecutively in one thread-local epoch.  A query that
reaches a group during the *moving* phase helps relocate it and scans the
compacted destination block; during the *waiting* phase it defers the
group, and if the moving phase still has not started, pins the group's
pre-relocation state with a read counter that the compactor waits on
(bailing out after a timeout).

Direct-pointer mode (section 6): a moved object leaves a FORWARD-flagged
tombstone in its old slot.  After the move, the compactor scans every
collection whose schema holds direct references to the compacted type —
probing a hash set of compacted block ids before following any pointer —
and rewrites stale addresses; only then are the tombstoned source blocks
released.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ConcurrencyProtocolError
from repro.memory import zonemap
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import FORWARD, FROZEN, INC_MASK, LOCKED
from repro.memory.slots import VALID
from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block
    from repro.memory.context import MemoryContext
    from repro.memory.manager import MemoryManager

PENDING = 0
FAILED = 1
DONE = 2
#: The scheduled object was freed after planning: there is nothing left
#: to move.  Terminal — unlike FAILED, never retried, and no FORWARD
#: tombstone is written (rewriting stale direct pointers to the empty
#: destination slot would resurrect references to the dead object).
CANCELLED = 3

#: How long the compactor waits for a group's readers before bailing out.
_READER_WAIT_TIMEOUT = 0.5
_SPIN_SLEEP = 0.0001


class RelocationItem:
    """One scheduled object move (an entry of a block's relocation list)."""

    __slots__ = (
        "from_block",
        "from_slot",
        "to_block",
        "to_slot",
        "entry",
        "inc",
        "status",
    )

    def __init__(
        self,
        from_block: "Block",
        from_slot: int,
        to_block: "Block",
        to_slot: int,
        entry: int,
        inc: int,
    ) -> None:
        self.from_block = from_block
        self.from_slot = from_slot
        self.to_block = to_block
        self.to_slot = to_slot
        self.entry = entry
        #: Incarnation counter at scheduling time; a later mismatch means
        #: the object was freed and the relocation must be cancelled.
        self.inc = inc
        self.status = PENDING


class CompactionGroup:
    """A set of source blocks whose survivors move into one destination."""

    def __init__(
        self,
        context: "MemoryContext",
        sources: List["Block"],
        dest: Optional["Block"],
    ) -> None:
        self.context = context
        self.sources = sources
        self.dest = dest
        self.items: List[RelocationItem] = []
        self.finished = False
        self.failed = False
        self.dest_attached = False
        #: Set (under ``_lock``) once a mover has observed a drained query
        #: counter and may start flipping slots; bars new pre-state pins.
        self.moving = False
        self._counter = 0
        self._lock = threading.Lock()
        for block in sources:
            block.compaction_group = self
            block.relocation_list = []
        if dest is not None:
            # The destination carries the group marker from birth, so a
            # scan that snapshots the block list while relocation is in
            # flight routes the (partially filled) destination through
            # group resolution instead of reading it as a plain block.
            dest.compaction_group = self

    # -- query read counter (section 5.2) ------------------------------

    def members_prestate(self) -> List["Block"]:
        """Every block holding live pre-state rows: the sources plus the
        attached destination.  Moved rows sit VALID in the destination and
        limbo in their source slot; unmoved rows are VALID in the sources
        — together exactly one live copy of each object."""
        blocks = list(self.sources)
        if self.dest is not None and self.dest_attached:
            blocks.append(self.dest)
        return blocks

    def begin_moving_if_unread(self) -> bool:
        """Atomically check the query counter is drained and bar new pins.

        The drain check and the transition to the moving state happen
        under one lock, so a reader can never pin the pre-state after a
        mover decided it is safe to start flipping slots.
        """
        with self._lock:
            if self._counter > 0:
                return False
            self.moving = True
            return True

    # -- query read counter (section 5.2) ------------------------------

    def try_pin_prestate(self) -> bool:
        """Increment the query counter unless relocation already happened
        (or a mover has already observed a drained counter)."""
        with self._lock:
            if self.finished or self.failed or self.moving:
                return False
            self._counter += 1
            return True

    def unpin_prestate(self) -> None:
        with self._lock:
            self._counter -= 1

    @property
    def reader_count(self) -> int:
        with self._lock:
            return self._counter


class Compactor:
    """Runs the compaction protocol against one memory manager."""

    def __init__(self, manager: "MemoryManager") -> None:
        if manager.compactor is not None:
            raise ConcurrencyProtocolError("manager already has a compactor")
        self.manager = manager
        manager.compactor = self
        self._items_by_entry: Dict[int, RelocationItem] = {}
        self._cycle_lock = threading.Lock()
        #: (ready_epoch, block, context) of emptied blocks awaiting release.
        self._retired: List[Tuple[int, "Block"]] = []
        #: (ready_epoch, group) of failed groups whose block markers must
        #: stay up until every scan that snapshotted the block list before
        #: the destination was attached has drained (two-epoch rule): such
        #: a scan can only reach the moved rows by resolving the group.
        self._unmark_after: List[Tuple[int, CompactionGroup]] = []

    def detach(self) -> None:
        """Detach from the manager, draining deferred releases epoch-safely.

        Retired source blocks (and failed groups' markers) may still be
        visible to in-flight scans whose block-list snapshot predates the
        relocation: scrubbing them now would turn them into empty plain
        blocks under those scans and lose the relocated rows.  Instead,
        wait out the two-epoch safety rule, advancing the global epoch
        whenever the readers permit it.
        """
        while self._retired or self._unmark_after:
            self.release_retired()
            if not (self._retired or self._unmark_after):
                break
            if not self.manager.epochs.try_advance():
                time.sleep(_SPIN_SLEEP)
        self.manager.compactor = None

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def compact_context(
        self, context: "MemoryContext", occupancy_threshold: float = 0.3
    ) -> int:
        """Run one full compaction cycle on *context*.

        Returns the number of objects relocated.  Safe to call while other
        threads run queries; the caller becomes the compaction thread.
        """
        with self._cycle_lock:
            self.release_retired()
            groups = self._plan_groups(context, occupancy_threshold)
            if not groups:
                return 0
            return self._run_cycle(context, groups)

    def run_in_thread(
        self, context: "MemoryContext", occupancy_threshold: float = 0.3
    ) -> threading.Thread:
        """Run a compaction cycle on a dedicated compaction thread."""
        thread = threading.Thread(
            target=self.compact_context,
            args=(context, occupancy_threshold),
            name="smc-compactor",
            daemon=True,
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Planning (freezing-epoch work, part 1)
    # ------------------------------------------------------------------

    def _plan_groups(
        self, context: "MemoryContext", occupancy_threshold: float
    ) -> List[CompactionGroup]:
        candidates = [
            block
            for block in context.compactable_blocks(occupancy_threshold)
            if block.compaction_group is None
            # Sources must leave allocation circulation: a block sitting in
            # the reclamation queue could otherwise be handed to an
            # allocator that fills it while we empty it (and its new
            # objects would be scrubbed with the retired source).
            and context.claim_for_compaction(block)
        ]
        if not candidates:
            return []
        pager = self.manager.pager
        if pager is not None:
            # Relocation moves slots to LIMBO and the retirement path
            # scrubs the directory — both writes.  Promoting at claim
            # time also cancels any in-flight cooling, so the pager and
            # the compactor never both own a block: ``compacting`` (set
            # by the claim above) bars demotion until the group settles.
            for block in candidates:
                pager.ensure_hot(block)
        groups: List[CompactionGroup] = []
        bucket: List["Block"] = []
        survivors = 0
        capacity = candidates[0].slot_count
        for block in candidates:
            if bucket and survivors + block.valid_count > capacity:
                groups.append(self._make_group(context, bucket, survivors))
                bucket, survivors = [], 0
            bucket.append(block)
            survivors += block.valid_count
        if bucket:
            groups.append(self._make_group(context, bucket, survivors))
        return groups

    def _make_group(
        self, context: "MemoryContext", sources: List["Block"], survivors: int
    ) -> CompactionGroup:
        dest = self.manager._acquire_block(context) if survivors else None
        if dest is not None:
            # The compactor fills the destination's slots; keep it out of
            # the reclamation queue until the group settles.
            dest.is_active = True
        return CompactionGroup(context, list(sources), dest)

    # ------------------------------------------------------------------
    # The compaction cycle (sections 5.1 / 5.2)
    # ------------------------------------------------------------------

    #: Maximum freeze/relocate rounds per cycle.  Readers bailing out
    #: relocations in the waiting phase leave FAILED items behind; the
    #: paper retries them by "adding another freezing phase at the end of
    #: the relocation epoch" (section 5.1).  Groups still incomplete after
    #: the last round are abandoned for this cycle.
    MAX_ROUNDS = 4

    def _run_cycle(
        self, context: "MemoryContext", groups: List[CompactionGroup]
    ) -> int:
        manager = self.manager
        epochs = manager.epochs
        moved = 0
        with epochs.critical_section() as e:
            epochs.restrict_advancement(threading.get_ident())
            base = e
            try:
                self._build_relocation_lists(groups)
                if _san.SANITIZER is not None:
                    _san.SANITIZER.event(
                        "compact.plan",
                        manager=manager,
                        groups=len(groups),
                        items=sum(len(g.items) for g in groups),
                    )
                for round_no in range(self.MAX_ROUNDS):
                    # --- freezing epoch: global becomes base + 1 ---------
                    self._advance_until(base + 1)
                    manager.next_relocation_epoch = base + 2
                    self._freeze_pending(groups)
                    if _san.SANITIZER is not None:
                        _san.SANITIZER.event(
                            "compact.freeze", manager=manager, epoch=base + 1
                        )
                    # --- relocation epoch: global becomes base + 2 -------
                    self._wait_others(base + 1)
                    self._advance_until(base + 2)
                    manager.in_moving_phase = False
                    if _san.SANITIZER is not None:
                        _san.SANITIZER.event(
                            "compact.waiting", manager=manager, epoch=base + 2
                        )
                    # Waiting phase: readers that hit frozen objects bail
                    # them out; once every other in-critical thread reached
                    # base + 2 we may start moving.
                    self._wait_others(base + 2)
                    manager.in_moving_phase = True
                    if _san.SANITIZER is not None:
                        _san.SANITIZER.event(
                            "compact.moving", manager=manager, epoch=base + 2
                        )
                    for group in groups:
                        moved += self._relocate_group(group)
                    manager.in_moving_phase = False
                    manager.next_relocation_epoch = None
                    # --- leave the relocation epoch: base + 3 ------------
                    self._advance_until(base + 3)
                    base += 3
                    if _san.SANITIZER is not None:
                        _san.SANITIZER.event(
                            "compact.round",
                            manager=manager,
                            round=round_no,
                            moved=moved,
                        )
                    if not any(self._retryable_items(g) for g in groups):
                        break
                    for group in groups:
                        for item in self._retryable_items(group):
                            item.status = PENDING
                # Groups whose items never all completed stay in place.
                for group in groups:
                    if not group.finished and not group.failed:
                        if any(
                            i.status not in (DONE, CANCELLED)
                            for i in group.items
                        ):
                            self._fail_group(group)
                        else:
                            self._finish_group(group)
            finally:
                manager.in_moving_phase = False
                manager.next_relocation_epoch = None
                epochs.restrict_advancement(None)
        # Outside the critical section: rewrite direct pointers into the
        # compacted blocks, then retire the emptied sources.
        moved_ids = {
            blk.block_id for g in groups if not g.failed for blk in g.sources
        }
        if moved_ids and manager.direct_pointers:
            self._rewrite_direct_pointers(context, moved_ids)
        for group in groups:
            self._retire_group(group)
        self._items_by_entry.clear()
        manager.stats.compactions += 1
        manager.stats.relocations += moved
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("compact.done", manager=manager, moved=moved)
        return moved

    def _advance_until(self, target: int) -> None:
        epochs = self.manager.epochs
        while epochs.global_epoch < target:
            if not epochs.try_advance():
                time.sleep(_SPIN_SLEEP)

    def _wait_others(self, epoch: int) -> None:
        epochs = self.manager.epochs
        while not epochs.others_at_least(epoch):
            time.sleep(_SPIN_SLEEP)

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------

    def _build_relocation_lists(self, groups: List[CompactionGroup]) -> None:
        """Populate each block's relocation list (freezing-epoch step 1)."""
        table = self.manager.table
        for group in groups:
            if group.dest is None:
                continue
            next_slot = 0
            for block in group.sources:
                for slot in block.valid_slots():
                    slot = int(slot)
                    entry = int(block.backptrs[slot])
                    # An object freed between planning and freezing must be
                    # skipped: its entry may already serve another object.
                    if table.address_of(entry) != block.slot_address(slot):
                        continue
                    inc = table.incarnation(entry)
                    item = RelocationItem(
                        block, slot, group.dest, next_slot, entry, inc
                    )
                    next_slot += 1
                    group.items.append(item)
                    block.relocation_list.append(item)
                    self._items_by_entry[entry] = item

    def _freeze_pending(self, groups: List[CompactionGroup]) -> None:
        """Set FROZEN on every still-pending scheduled entry.

        The freeze is a CAS conditioned on the incarnation counter still
        being the one captured at planning time: an object freed since —
        whose entry may already be drained to null or even recycled for a
        new object — must not be branded FROZEN; its item is cancelled
        instead.  The CAS and ``free``'s counter bump serialise on the
        entry's stripe lock, so a successful freeze proves the object is
        still alive at that instant.
        """
        table = self.manager.table
        for group in groups:
            if group.failed or group.finished:
                continue
            for item in group.items:
                if item.status != PENDING:
                    continue
                while True:
                    word = table.incarnation_word(item.entry)
                    if (word & INC_MASK) != item.inc:
                        item.status = CANCELLED
                        break
                    if word & FROZEN or table.cas_inc(
                        item.entry, word, word | FROZEN
                    ):
                        break

    def _retryable_items(self, group: CompactionGroup) -> List[RelocationItem]:
        if group.failed or group.finished:
            return []
        return [i for i in group.items if i.status == FAILED]

    # ------------------------------------------------------------------
    # Moving
    # ------------------------------------------------------------------

    def _relocate_group(self, group: CompactionGroup) -> int:
        """Move all pending items of *group*; returns the number moved.

        Waits for pre-state readers to drain, bailing out after a timeout
        (section 5.2: queries may return control to the application while
        holding the read lock).
        """
        if group.finished or group.failed:
            return 0
        deadline = time.monotonic() + _READER_WAIT_TIMEOUT
        while not group.begin_moving_if_unread():
            if time.monotonic() > deadline:
                self._fail_group(group)
                return 0
            time.sleep(_SPIN_SLEEP)
        moved = 0
        for item in group.items:
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "compact.move_item",
                    entry=item.entry,
                    from_slot=item.from_slot,
                    to_slot=item.to_slot,
                )
            if self._move_item_locked(item):
                moved += 1
        if all(item.status in (DONE, CANCELLED) for item in group.items):
            self._finish_group(group)
        return moved

    def _move_item_locked(self, item: RelocationItem) -> bool:
        """Lock, move if still pending, unlock.  Returns True if we moved it."""
        table = self.manager.table
        entry = item.entry
        while not table.try_lock(entry):
            time.sleep(_SPIN_SLEEP)
        try:
            if item.status != PENDING:
                return False
            word = table.incarnation_word(entry)
            if not word & FROZEN:
                # A reader bailed it out between status check and lock.
                item.status = FAILED
                return False
            if self._item_went_stale(item, word):
                item.status = CANCELLED
                return False
            self._copy_object(item)
            item.status = DONE
            return True
        finally:
            self._unfreeze_after_move(item)

    def _item_went_stale(self, item: RelocationItem, word: int) -> bool:
        """True if the scheduled object died after the item was built.

        ``free`` races the relocation machinery (section 5.1 footnote):
        FROZEN alone does not stop it, so by the time the mover holds the
        LOCKED bit the source slot may already be limbo — moving it would
        resurrect a freed object and double-free its slot.  The check runs
        under the entry lock, which ``free``'s incarnation CAS respects,
        so a stale item can never flip back to live.
        """
        if (word & INC_MASK) != item.inc:
            return True
        src = item.from_block
        return (
            src.state_of(item.from_slot) != VALID
            or self.manager.table.address_of(item.entry)
            != src.slot_address(item.from_slot)
        )

    def _copy_object(self, item: RelocationItem) -> None:
        """Copy the slot bytes and re-point the indirection entry.

        The source slot directory entry moves to LIMBO and the destination
        block is attached to the context on the group's first successful
        move, so scans started at any point see each live object exactly
        once: moved objects in the destination, unmoved ones in the
        (still-attached) sources.
        """
        src, dst = item.from_block, item.to_block
        size = src.slot_size
        src_off = src.object_offset + item.from_slot * size
        dst_off = dst.object_offset + item.to_slot * size
        dst.buf[dst_off : dst_off + size] = src.buf[src_off : src_off + size]
        dst.backptrs[item.to_slot] = item.entry
        dst.mark_valid(item.to_slot)
        self.manager.table.set_address(item.entry, dst.slot_address(item.to_slot))
        group: CompactionGroup = src.compaction_group
        if group is not None and not group.dest_attached:
            group.dest_attached = True
            group.context._attach_block(dst)
        src.mark_limbo(item.from_slot, self.manager.epochs.global_epoch)

    def _unfreeze_after_move(self, item: RelocationItem) -> None:
        """Clear FROZEN+LOCKED; leave a FORWARD tombstone in direct mode.

        The paper sets the forwarding flag in the same atomic operation
        that unsets the frozen and lock bits (section 6).
        """
        table = self.manager.table
        if item.status == DONE and self.manager.direct_pointers:
            src = item.from_block
            word = int(src.slot_incs[item.from_slot])
            src.slot_incs[item.from_slot] = (word & INC_MASK) | FORWARD
        table.clear_flags(item.entry, FROZEN | LOCKED)

    def _fail_group(self, group: CompactionGroup) -> None:
        """Abandon a group this cycle (readers held it too long).

        Already-moved objects stay in the (attached) destination block;
        source slots they vacated are limbo.  Unmoved objects remain in
        their source blocks, which revert to ordinary blocks.
        """
        table = self.manager.table
        not_done = 0
        for item in group.items:
            while not table.try_lock(item.entry):
                time.sleep(_SPIN_SLEEP)
            if item.status == PENDING:
                item.status = FAILED
                table.clear_flags(item.entry, FROZEN | LOCKED)
            else:
                table.clear_flags(item.entry, LOCKED)
            if item.status not in (DONE, CANCELLED):
                not_done += 1
        group.failed = True
        self.manager.stats.failed_relocations += not_done
        if group.dest is not None:
            group.dest.is_active = False
        if group.dest_attached:
            # Some objects already moved: their only live copy is in the
            # attached destination.  A scan that snapshotted the block
            # list *before* the destination was attached reaches them
            # only by resolving this group off a source block's marker
            # (pre-state = sources + destination), so the markers must
            # outlive every such scan — clear them two epochs from now,
            # exactly like retired source blocks.
            self._unmark_after.append(
                (self.manager.epochs.global_epoch + 2, group)
            )
        else:
            # Nothing moved: the sources hold every live object and the
            # untouched destination can be recycled immediately.
            if group.dest is not None and group.dest.valid_count == 0:
                group.dest.compaction_group = None
                self.manager._release_block(group.dest)
            self._clear_group_markers(group)

    def _clear_group_markers(self, group: CompactionGroup) -> None:
        """Revert a settled failed group's blocks to ordinary blocks."""
        if group.dest is not None:
            group.dest.compaction_group = None
        for block in group.sources:
            block.compaction_group = None
            block.relocation_list = None
            # The sources revert to ordinary blocks; reclamation may have
            # them again.
            block.compacting = False

    def _finish_group(self, group: CompactionGroup) -> None:
        """Detach the emptied sources; the destination was attached at the
        group's first successful move."""
        if group.finished:
            return
        context = group.context
        with group._lock:
            if group.finished:
                return
            group.finished = True
        if group.dest is not None:
            group.dest.is_active = False
        if group.dest is not None and not group.dest_attached:
            # Nothing was moved (empty group): recycle the destination.
            group.dest.compaction_group = None
            self.manager._release_block(group.dest)
        elif group.dest is not None:
            # Relocation copied slot bytes without publishing through
            # commit_slot, so the destination carried no statistics while
            # the group was in flight (conservative: no pruning).  Now
            # that its contents are final, compute exact bounds.
            zonemap.rebuild(self.manager, group.dest)
            # Contents are final: the destination becomes an ordinary
            # block.  Scans that resolve the group through a source still
            # reach it via ``group.dest``; the per-scan emitted set keeps
            # it to one visit either way.
            group.dest.compaction_group = None
        for block in group.sources:
            context.detach_block(block)

    def _retire_group(self, group: CompactionGroup) -> None:
        if group.failed or not group.finished:
            return
        ready = self.manager.epochs.global_epoch + 2
        for block in group.sources:
            self._retired.append((ready, block))

    def release_retired(self, force: bool = False) -> int:
        """Release retired source blocks whose safety epoch has passed.

        Also clears the markers of failed groups whose two-epoch window
        elapsed (see ``_fail_group``): their blocks become ordinary blocks
        again and may be re-planned by the next cycle.
        """
        epoch = self.manager.epochs.global_epoch
        keep_groups: List[Tuple[int, CompactionGroup]] = []
        for ready, group in self._unmark_after:
            if force or ready <= epoch:
                self._clear_group_markers(group)
            else:
                keep_groups.append((ready, group))
        self._unmark_after = keep_groups
        keep: List[Tuple[int, "Block"]] = []
        released = 0
        for ready, block in self._retired:
            if force or ready <= epoch:
                block.compaction_group = None
                block.relocation_list = None
                block.compacting = False
                # Moved-out objects left their source slots formally VALID
                # for pre-state readers; scrub before returning to the pool.
                block.directory.fill(0)
                block.valid_count = 0
                block.limbo_count = 0
                self.manager._release_block(block)
                released += 1
            else:
                keep.append((ready, block))
        self._retired = keep
        return released

    # ------------------------------------------------------------------
    # Reader cooperation (dereference slow path, section 5.1 cases b/c)
    # ------------------------------------------------------------------

    def bail_out_relocation(self, entry: int) -> None:
        """Waiting phase: mark the entry's relocation failed and unfreeze."""
        table = self.manager.table
        item = self._items_by_entry.get(entry)
        if item is None:
            table.clear_flags(entry, FROZEN)
            return
        while not table.try_lock(entry):
            time.sleep(_SPIN_SLEEP)
        if item.status == PENDING and table.incarnation_word(entry) & FROZEN:
            item.status = FAILED
            self.manager.stats.bailed_relocations += 1
            table.clear_flags(entry, FROZEN | LOCKED)
        else:
            table.clear_flags(entry, LOCKED)

    def help_relocation(self, entry: int) -> None:
        """Moving phase: perform the entry's relocation on the reader thread."""
        table = self.manager.table
        item = self._items_by_entry.get(entry)
        if item is None:
            table.clear_flags(entry, FROZEN)
            return
        while not table.try_lock(entry):
            time.sleep(_SPIN_SLEEP)
        try:
            word = table.incarnation_word(entry)
            if item.status == PENDING and word & FROZEN:
                if self._item_went_stale(item, word):
                    item.status = CANCELLED
                else:
                    self._copy_object(item)
                    item.status = DONE
                    self.manager.stats.helped_relocations += 1
        finally:
            self._unfreeze_after_move(item)

    def help_group(self, group: CompactionGroup) -> Optional["Block"]:
        """Moving phase, block scans: relocate the whole group, return dest.

        Used by queries that reach a compaction group's blocks during the
        moving phase (section 5.2): first help perform the relocation, then
        process the compacted block.  Pre-state readers that pinned the
        group with its query counter block the relocation; after the same
        timeout the compactor uses, the group is failed and ``None`` is
        returned (scan the pre-state sources instead).
        """
        deadline = time.monotonic() + _READER_WAIT_TIMEOUT
        while not group.begin_moving_if_unread():
            if time.monotonic() > deadline:
                self._fail_group(group)
                return None
            time.sleep(_SPIN_SLEEP)
        for item in group.items:
            self._move_item_locked(item)
        if all(item.status in (DONE, CANCELLED) for item in group.items):
            self._finish_group(group)
            return group.dest
        # A reader bailed items out from under us: the group cannot be
        # completed this round.  Fail it so the caller scans the pre-state
        # (sources + attached destination) instead of a partial result.
        self._fail_group(group)
        return None

    # ------------------------------------------------------------------
    # Direct-pointer rewriting (section 6)
    # ------------------------------------------------------------------

    def _rewrite_direct_pointers(
        self, context: "MemoryContext", moved_block_ids: Set[int]
    ) -> int:
        """Rewrite direct references that point into compacted blocks.

        The referrer SMCs are statically known from the schemas; before
        following any stored pointer we probe the compacted-block hash set
        with the pointer's block id — the paper's optimisation to avoid
        random memory accesses for unaffected references.
        """
        manager = self.manager
        space = manager.space
        target_name = context.name
        registry = getattr(manager, "collections", {})
        rewritten = 0
        for coll in registry.values():
            ref_fields = [
                f
                for f in coll.layout.ref_fields
                if f.resolve_target().__name__ == target_name
            ]
            if not ref_fields:
                continue
            slot_size = coll.layout.slot_size
            for block in coll.context.blocks():
                for slot in block.valid_slots():
                    base = block.object_offset + int(slot) * slot_size
                    for f in ref_fields:
                        off = base + f.offset
                        word, inc = f.decode_words(block.buf, off)
                        if word == NULL_ADDRESS:
                            continue
                        if (word >> space.block_shift) not in moved_block_ids:
                            continue
                        src_block = space.try_block_at(word)
                        if src_block is None:
                            continue
                        src_slot = src_block.slot_of_address(word)
                        src_word = int(src_block.slot_incs[src_slot])
                        if not src_word & FORWARD:
                            continue
                        entry = int(src_block.backptrs[src_slot])
                        new_addr = manager.table.address_of(entry)
                        if new_addr == NULL_ADDRESS:
                            continue
                        new_block = space.block_at(new_addr)
                        new_slot = new_block.slot_of_address(new_addr)
                        new_inc = int(new_block.slot_incs[new_slot]) & INC_MASK
                        if manager.pager is not None:
                            # The referrer block takes an in-place pointer
                            # rewrite; promote it (and dirty its image).
                            manager.pager.ensure_hot(block)
                        f.encode_words(block.buf, off, new_addr, new_inc)
                        rewritten += 1
        return rewritten
