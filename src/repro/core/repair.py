"""Reference repair: the paper's incarnation-overflow background scan.

Section 3.1: "We do not expect incarnation numbers to overflow in the
lifetime of a typical application, but if overflows should occur, we stop
reusing these memory slots until a background thread has scanned all
manually managed objects and has set all invalid references to null."

The runtime's first half of that contract is automatic: an entry whose
29-bit counter would overflow is *retired* — taken out of circulation —
by :meth:`IndirectionTable.release`.  This module provides the second
half: :func:`repair_references` scans every reference field of every
collection on a manager, nulls the stale ones in place, and returns the
retired entries to the free list so their slots become reusable again.

The scan runs inside a critical section per collection block (amortised,
like a query) and can also be started on a background thread.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Tuple

from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import INC_MASK

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.manager import MemoryManager


def repair_references(manager: "MemoryManager") -> Dict[str, int]:
    """Null every stale reference field across all collections.

    Returns counters: ``scanned`` rows, ``nulled`` references, and
    ``reclaimed`` retired indirection entries returned to circulation.
    A reference is stale when its stored incarnation no longer matches
    its target's (indirect mode: the entry's counter; direct mode: the
    slot header's counter).
    """
    registry = getattr(manager, "collections", {})
    table = manager.table
    space = manager.space
    direct = manager.direct_pointers
    scanned = 0
    nulled = 0

    for coll in registry.values():
        ref_fields = coll.layout.ref_fields
        if not ref_fields:
            continue
        for block in coll.context.blocks():
            with manager.critical_section():
                columns = getattr(block, "columns", None)
                for slot in block.valid_slots():
                    slot = int(slot)
                    scanned += 1
                    for f in ref_fields:
                        if columns is not None:
                            word = int(columns[f.name + "__w"][slot])
                            inc = int(columns[f.name + "__i"][slot])
                        else:
                            off = (
                                block.object_offset
                                + slot * block.slot_size
                                + f.offset
                            )
                            word, inc = f.decode_words(block.buf, off)
                        if word == NULL_ADDRESS:
                            continue
                        if _is_stale(table, space, direct, word, inc):
                            if columns is not None:
                                columns[f.name + "__w"][slot] = NULL_ADDRESS
                                columns[f.name + "__i"][slot] = 0
                            else:
                                f.encode_words(
                                    block.buf, off, NULL_ADDRESS, 0
                                )
                            nulled += 1

    reclaimed = table.reclaim_retired()
    return {"scanned": scanned, "nulled": nulled, "reclaimed": reclaimed}


def _is_stale(table, space, direct: bool, word: int, inc: int) -> bool:
    if direct:
        block = space.try_block_at(word)
        if block is None:
            return True
        slot = block.slot_of_address(word)
        return (int(block.slot_incs[slot]) & INC_MASK) != (inc & INC_MASK)
    if word < 0 or word >= table.size:
        return True
    return (table.incarnation(word)) != (inc & INC_MASK)


def repair_in_thread(manager: "MemoryManager") -> threading.Thread:
    """Run :func:`repair_references` on a background thread."""
    thread = threading.Thread(
        target=repair_references, args=(manager,), name="smc-repair", daemon=True
    )
    thread.start()
    return thread
