"""Self-managed collections (paper sections 2 and 4).

A :class:`Collection` owns the lifetime of its objects: ``add`` allocates a
slot in the collection's private memory context, runs the constructor
(writes the field values), and returns a handle; ``remove`` ends the
object's lifetime, after which every reference to it dereferences as null.

Collections have bag semantics: enumeration visits objects in memory
order — block by block, slot by slot — which is what lets compiled queries
scan the raw blocks directly (section 4).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple, Type, Union

from repro.errors import TabularTypeError
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.manager import MemoryManager
from repro.memory.reference import Ref
from repro.core.handle import Handle
from repro.schema.fields import RefField
from repro.schema.tabular import Tabular, TabularMeta, resolve_tabular

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block
    from repro.query.builder import Query

_default_manager: Optional[MemoryManager] = None
_default_manager_lock = threading.Lock()


def default_manager() -> MemoryManager:
    """The process-wide memory manager used when none is supplied.

    Collections that should reference each other must share one manager;
    the default makes the common single-runtime case frictionless.
    """
    global _default_manager
    with _default_manager_lock:
        if _default_manager is None:
            _default_manager = MemoryManager()
        return _default_manager


def reset_default_manager() -> None:
    """Discard the default manager (tests / benchmarks isolation)."""
    global _default_manager
    with _default_manager_lock:
        if _default_manager is not None:
            _default_manager.close()
        _default_manager = None


class Collection:
    """A self-managed collection of one tabular class."""

    #: Default compiled-query backend: raw-block access ("SMC (unsafe C#)"
    #: in the paper's Figure 11); pass ``flavor="smc-safe"`` to Query.run
    #: for the handle-level "SMC (C#)" series.
    compiled_flavor = "smc-unsafe"

    def __init__(
        self,
        schema: Type[Tabular],
        manager: Optional[MemoryManager] = None,
        name: Optional[str] = None,
        auto_compact_occupancy: Optional[float] = None,
    ) -> None:
        """Create a collection of *schema* on *manager*.

        ``auto_compact_occupancy`` enables the paper's "heavy shrinkage"
        policy (section 5): after removals, once the collection's overall
        occupancy falls below the given fraction, a compaction cycle runs
        automatically.
        """
        if not isinstance(schema, TabularMeta) or schema.__dict__.get(
            "_tabular_root_", False
        ):
            raise TabularTypeError(
                f"Collection requires a tabular class, got {schema!r}"
            )
        self.schema = schema
        self.layout = schema.__layout__
        self.manager = manager if manager is not None else default_manager()
        self.name = name or schema.__name__
        #: Private memory context: all objects of this collection live in
        #: the context's blocks (section 3.3 / 4).
        self.context = self.manager.create_context(
            self.layout.slot_size, schema.__name__
        )
        # The vectorised engine resolves strided field views through the
        # block's context; give it the slot layout.
        self.context.layout = self.layout
        # Register for reference navigation and direct-pointer rewriting.
        registry = getattr(self.manager, "collections", None)
        if registry is None:
            registry = {}
            self.manager.collections = registry  # type: ignore[attr-defined]
        primary = registry.setdefault(schema.__name__, self)
        # Per-collection string dictionary (shared by collections of the
        # same schema on one manager, since fields resolve it by schema
        # name through the registry).
        if primary is not self:
            self.strdict = primary.strdict
        elif self.layout.var_fields and getattr(self.manager, "string_dict", True):
            from repro.memory.stringheap import StringDict

            self.strdict = StringDict(self.manager.strings, self.manager.epochs)
        else:
            self.strdict = None
        self.context.strdict = self.strdict
        if auto_compact_occupancy is not None and not (
            0.0 < auto_compact_occupancy < 1.0
        ):
            raise ValueError("auto_compact_occupancy must be in (0, 1)")
        self.auto_compact_occupancy = auto_compact_occupancy
        self._removals_since_check = 0
        #: Secondary hash indexes (see :meth:`create_index`).
        self._indexes: List["HashIndex"] = []
        self._indexed_fields: Dict[str, List["HashIndex"]] = {}
        #: Durability hook (a :class:`~repro.durability.store.DurableStore`
        #: or None).  When set, every mutation holds ``mutation_log.hold()``
        #: across *apply + append*, so checkpoints cut between whole
        #: mutations, never through one.
        self.mutation_log = None

    # ------------------------------------------------------------------
    # Reference encoding (indirect vs direct pointer mode, section 6)
    # ------------------------------------------------------------------

    def _ref_words(
        self, field: RefField, value: Union[Handle, Ref, None]
    ) -> Optional[Tuple[int, int]]:
        """Convert a user-supplied reference into its stored word pair."""
        if value is None:
            return None
        if isinstance(value, Ref):
            ref = value
        else:
            ref = getattr(value, "ref", None)
            if not isinstance(ref, Ref):
                raise TypeError(
                    f"field {field.name} expects a handle, Ref or None; "
                    f"got {type(value).__name__}"
                )
        target_cls = field.resolve_target()
        if not self.manager.direct_pointers:
            return ref.entry, ref.inc
        # Direct-pointer mode: store the raw address plus the slot-header
        # incarnation of the target (paper section 6, Figure 5).
        address = ref.address()
        block = self.manager.space.block_at(address)
        slot = block.slot_of_address(address)
        del target_cls  # validated for effect
        from repro.memory.indirection import INC_MASK

        return address, int(block.slot_incs[slot]) & INC_MASK

    def target_collection(self, field: RefField) -> "Collection":
        """Collection hosting *field*'s target class (for navigation)."""
        target_cls = field.resolve_target()
        registry: Dict[str, Collection] = getattr(self.manager, "collections", {})
        target = registry.get(target_cls.__name__)
        if target is None:
            raise TabularTypeError(
                f"no collection for {target_cls.__name__} exists on this "
                f"manager; create it before navigating references"
            )
        return target

    # ------------------------------------------------------------------
    # Containment semantics: Add / Remove (section 2)
    # ------------------------------------------------------------------

    def add(self, **values: Any) -> Handle:
        """Create an object inside the collection; returns its handle.

        Maps directly onto the memory manager's ``alloc`` (section 2): the
        object is constructed in place in the collection's private blocks.
        Construction is two-speed: a wide row is written with one combined
        struct pack; a sparse one blits the default template and patches
        only the supplied fields.
        """
        mlog = self.mutation_log
        if mlog is None:
            return self._add_impl(values)
        with mlog.hold():
            handle = self._add_impl(values)
            mlog.log_add(self, handle.ref.entry, values)
            return handle

    def _add_impl(self, values: Dict[str, Any]) -> Handle:
        layout = self.layout
        by_name = layout.by_name
        for key in values:
            if key not in by_name:
                raise TypeError(f"{self.schema.__name__} has no field {key!r}")
        manager = self.manager
        block, slot, ref = manager.allocate_object(
            self.context, defer_publish=True
        )
        off = block.object_offset + slot * layout.slot_size
        buf = block.buf
        if len(values) * 2 >= len(layout.fields):
            layout.pack_full_row(buf, off, values, manager, self._ref_words)
        else:
            buf[off + 8 : off + layout.slot_size] = layout.template_body
            for key, value in values.items():
                field = by_name[key]
                if isinstance(field, RefField):
                    value = self._ref_words(field, value)
                layout.write_field(buf, off, key, value, manager)
        # Publish only the fully constructed object (paper section 2).
        self.context.commit_slot(block, slot)
        handle = Handle(self, ref)
        for index in self._indexes:
            index._insert(ref.entry, getattr(handle, index.field_name))
        return handle

    def remove(self, obj: Union[Handle, Ref]) -> None:
        """End *obj*'s lifetime; all references to it become null.

        Maps onto the memory manager's ``free``.  Strings owned by the
        object are reclaimed with it (section 2).
        """
        ref = obj.ref if isinstance(obj, Handle) else obj
        mlog = self.mutation_log
        if mlog is None:
            self._remove_impl(ref)
            return
        with mlog.hold():
            self._remove_impl(ref)
            mlog.log_remove(self, ref.entry)

    def _remove_impl(self, ref: Ref) -> None:
        epochs = self.manager.epochs
        epochs.enter_critical_section()
        try:
            address = ref.address()  # raises NullReferenceError if gone
            block = self.manager.space.block_at(address)
            if self.manager.pager is not None:
                # release_owned writes tombstones into the slot; a cold
                # block's buffer is a read-only tier mapping.
                self.manager.pager.ensure_hot(block)
            off = self.manager.space.offset_of(address)
            self.layout.release_owned(block.buf, off, self.manager)
            self.manager.free_object(ref)
        finally:
            epochs.exit_critical_section()
        for index in self._indexes:
            index._delete(ref.entry)
        if self.auto_compact_occupancy is not None:
            self._maybe_auto_compact()

    def create_index(self, field_name: str):
        """Create (and keep maintained) a hash index on *field_name*."""
        from repro.core.index import HashIndex

        index = HashIndex(self, field_name)
        self._indexes.append(index)
        self._indexed_fields.setdefault(field_name, []).append(index)
        return index

    def create_sorted_index(self, field_name: str):
        """Create (and keep maintained) a range index on *field_name*."""
        from repro.core.index import SortedIndex

        index = SortedIndex(self, field_name)
        self._indexes.append(index)
        self._indexed_fields.setdefault(field_name, []).append(index)
        return index

    def _notify_field_update(self, entry: int, field_name: str, value) -> None:
        for index in self._indexed_fields.get(field_name, ()):
            index._update(entry, value)

    def index_specs(self) -> List[Tuple[str, str]]:
        """``(field_name, kind)`` per index — persisted by snapshots."""
        return [(index.field_name, index.kind) for index in self._indexes]

    def _maybe_auto_compact(self, batch: int = 1) -> None:
        """Compact when overall occupancy drops below the policy threshold.

        Checked periodically (not on every removal) to keep removal cheap.
        """
        self._removals_since_check += batch
        period = max(64, len(self) // 8)
        if self._removals_since_check < period:
            return
        self._removals_since_check = 0
        blocks = self.context.block_count()
        if blocks < 2:
            return
        capacity = sum(b.slot_count for b in self.context.blocks())
        if capacity and len(self) / capacity < self.auto_compact_occupancy:
            self.compact(occupancy_threshold=self.auto_compact_occupancy)

    def clear(self) -> int:
        """Remove every object; returns the number removed."""
        removed = 0
        for handle in list(self):
            self.remove(handle)
            removed += 1
        return removed

    def remove_where(self, pred) -> int:
        """Remove every object matching *pred* (an expression).

        The predicate runs through the compiled query engine (one block
        scan); matching objects are removed afterwards through their
        references — the paper's single-enumeration predicate removal.
        """
        refs = self.query().where(pred).run().rows
        removed = 0
        mlog = self.mutation_log
        for ref in refs:
            if mlog is None:
                self._free_matched(ref)
            else:
                with mlog.hold():
                    self._free_matched(ref)
                    mlog.log_remove(self, ref.entry)
            removed += 1
        if self.auto_compact_occupancy is not None:
            self._maybe_auto_compact(batch=removed)
        return removed

    def _free_matched(self, ref: Ref) -> None:
        self.manager.free_object_with_strings(self, ref)
        for index in self._indexes:
            index._delete(ref.entry)

    def update_where(self, pred, **values: Any) -> int:
        """Set *values* on every object matching *pred*; returns the count."""
        for key in values:
            if key not in self.layout.by_name:
                raise TypeError(f"{self.schema.__name__} has no field {key!r}")
        refs = self.query().where(pred).run().rows
        for ref in refs:
            handle = self._handle(ref)
            for key, value in values.items():
                setattr(handle, key, value)
        return len(refs)

    # ------------------------------------------------------------------
    # Enumeration (bag semantics, memory order)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.context.live_count

    def __iter__(self) -> Iterator[Handle]:
        """Enumerate live objects in memory order.

        Each block is processed inside one critical section (the paper's
        per-block granularity for lazily consumed enumerations, section 4).
        """
        manager = self.manager
        from repro.query.runtime import scan_blocks

        for block in scan_blocks(manager, self.context):
            with manager.critical_section():
                pairs = [
                    (int(block.backptrs[slot]), block)
                    for slot in block.valid_slots()
                ]
                handles = [
                    Handle(self, Ref(manager, entry, manager.table.incarnation(entry)))
                    for entry, __ in pairs
                ]
            yield from handles

    def handles(self) -> List[Handle]:
        return list(self)

    def _handle(self, ref: Ref) -> Handle:
        """Wrap *ref* in this collection's handle type (navigation hook)."""
        return Handle(self, ref)

    # ------------------------------------------------------------------
    # Query surface (language-integrated query)
    # ------------------------------------------------------------------

    def query(self) -> "Query":
        """Start a language-integrated query over this collection."""
        from repro.query.builder import Query

        return Query(self)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self, occupancy_threshold: float = 0.3) -> int:
        """Compact under-occupied blocks (section 5); returns #relocations."""
        from repro.core.compaction import Compactor

        compactor = self.manager.compactor
        owned = False
        if compactor is None:
            compactor = Compactor(self.manager)
            owned = True
        try:
            return compactor.compact_context(self.context, occupancy_threshold)
        finally:
            if owned:
                compactor.detach()

    def memory_bytes(self) -> int:
        """Bytes mapped for this collection's data blocks."""
        return self.context.total_bytes()

    def blocks(self) -> List["Block"]:
        return self.context.blocks()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Collection {self.name} of {self.schema.__name__}: "
            f"{len(self)} objects in {self.context.block_count()} blocks>"
        )
