"""Block-aligned address space.

The paper aligns the base address of every memory block to the block size so
that the block header can be recovered from any object pointer with a single
mask operation (section 3.1).  We reproduce that scheme with integer
addresses::

    address  = (block_id << BLOCK_SHIFT) | offset
    block_id = address >> BLOCK_SHIFT
    offset   = address & (BLOCK_SIZE - 1)

Block id 0 is never allocated, so address ``0`` is always invalid and the
integer ``NULL_ADDRESS`` (-1) is used as the canonical null pointer in stored
fields.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, List, Optional

from repro.errors import MemoryExhaustedError
from repro.memory.shm import HeapBuffers

#: log2 of the default block size; 1 << 16 = 64 KiB blocks.
DEFAULT_BLOCK_SHIFT = 16

#: Canonical null pointer value stored in reference fields.
NULL_ADDRESS = -1


class AddressSpace:
    """Registry mapping block ids to block objects.

    The address space is the Python analogue of the process's unmanaged
    heap: blocks are "mapped" into it when allocated and "unmapped" when
    returned.  All addresses handed out by the memory manager are resolved
    through a single address space, which lets any component translate an
    object address back into its hosting block exactly the way the paper
    recovers a block header from a pointer.
    """

    def __init__(
        self,
        block_shift: int = DEFAULT_BLOCK_SHIFT,
        buffers: Optional[object] = None,
    ) -> None:
        if block_shift < 8 or block_shift > 30:
            raise ValueError(f"block_shift must be in [8, 30], got {block_shift}")
        self.block_shift = block_shift
        self.block_size = 1 << block_shift
        self._offset_mask = self.block_size - 1
        #: Buffer allocation policy (``repro.memory.shm``): HeapBuffers by
        #: default; SharedBuffers when the space must be visible to worker
        #: processes for scatter-gather execution.
        self.buffers = buffers if buffers is not None else HeapBuffers()
        #: Worker-side hook: ``attach_miss(block_id) -> Optional[block]``.
        #: A forked worker resolving an address minted *after* the fork has
        #: no Python object for the block; this hook lets it attach the
        #: backing shared segment by name and adopt a read-only view.
        self.attach_miss: Optional[Callable[[int], Optional[object]]] = None
        # Index 0 is reserved so that address 0 is never valid.
        self._blocks: List[Optional[object]] = [None]
        self._free_ids: List[int] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Block registration
    # ------------------------------------------------------------------

    def register(self, block: object) -> int:
        """Assign a block id to *block* and return it.

        The caller stores the id on the block; the address space only keeps
        the mapping needed for address resolution.
        """
        with self._lock:
            if self._free_ids:
                block_id = self._free_ids.pop()
                self._blocks[block_id] = block
            else:
                block_id = len(self._blocks)
                if block_id >= (1 << (63 - self.block_shift)):
                    raise MemoryExhaustedError("address space exhausted")
                self._blocks.append(block)
            return block_id

    def unregister(self, block_id: int) -> None:
        """Release *block_id*, making its address range invalid."""
        with self._lock:
            if block_id <= 0 or block_id >= len(self._blocks):
                raise ValueError(f"unknown block id {block_id}")
            if self._blocks[block_id] is None:
                raise ValueError(f"block id {block_id} already unregistered")
            self._blocks[block_id] = None
            self._free_ids.append(block_id)

    def adopt(self, block_id: int, block: object) -> None:
        """Install an attached block under a specific id (worker side).

        Unlike :meth:`register`, the id is dictated by the parent space the
        worker is mirroring; the local table is grown as needed.  Never used
        in the owning process.
        """
        with self._lock:
            while len(self._blocks) <= block_id:
                self._blocks.append(None)
            self._blocks[block_id] = block

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------

    def address_of(self, block_id: int, offset: int = 0) -> int:
        """Compose an address from a block id and an in-block offset."""
        return (block_id << self.block_shift) | offset

    def block_id_of(self, address: int) -> int:
        """Extract the block id from *address* (the alignment trick)."""
        return address >> self.block_shift

    def offset_of(self, address: int) -> int:
        """Extract the in-block offset from *address*."""
        return address & self._offset_mask

    def block_at(self, address: int) -> object:
        """Resolve the block hosting *address*.

        Raises :class:`ValueError` for addresses outside any live block;
        callers on hot paths that have already validated the address may
        use :meth:`block_by_id` on a cached id instead.
        """
        block_id = address >> self.block_shift
        if block_id <= 0:
            raise ValueError(f"address {address:#x} is not in a live block")
        block = (
            self._blocks[block_id] if block_id < len(self._blocks) else None
        )
        if block is None and self.attach_miss is not None:
            block = self.attach_miss(block_id)
        if block is None:
            raise ValueError(f"address {address:#x} is not in a live block")
        return block

    def block_by_id(self, block_id: int) -> object:
        block = (
            self._blocks[block_id]
            if 0 <= block_id < len(self._blocks)
            else None
        )
        if block is None and self.attach_miss is not None and block_id > 0:
            block = self.attach_miss(block_id)
        if block is None:
            raise ValueError(f"block id {block_id} is not live")
        return block

    def try_block_at(self, address: int) -> Optional[object]:
        """Like :meth:`block_at` but returns ``None`` for dead addresses."""
        block_id = address >> self.block_shift
        if block_id <= 0 or block_id >= len(self._blocks):
            if block_id > 0 and self.attach_miss is not None:
                return self.attach_miss(block_id)
            return None
        block = self._blocks[block_id]
        if block is None and self.attach_miss is not None:
            block = self.attach_miss(block_id)
        return block

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_blocks(self) -> Iterator[object]:
        """Iterate over currently registered blocks (snapshot semantics)."""
        with self._lock:
            snapshot = list(self._blocks[1:])
        return (blk for blk in snapshot if blk is not None)

    @property
    def live_block_count(self) -> int:
        with self._lock:
            return sum(1 for blk in self._blocks[1:] if blk is not None)

    @property
    def total_bytes(self) -> int:
        """Total bytes currently mapped (live blocks * block size)."""
        return self.live_block_count * self.block_size
