"""Epoch-based memory reclamation (paper section 3.4).

Threads access self-managed objects inside *critical sections* (grace
periods).  Each thread has a section context holding its thread-local epoch
and an in-critical flag; a global epoch counter advances only when every
thread currently inside a critical section has caught up to it.  Memory
freed in global epoch ``e`` is safe to reclaim in epoch ``e + 2``: by then
no thread can still be inside a critical section begun in epoch ``e``.

Differences from classic epoch reclamation, following the paper:

* the global epoch is a continuous counter, not modulo-3;
* the epoch is advanced lazily from the allocation path (and by the
  compactor), not on critical-section exit;
* critical sections span large units of work (a whole query or one memory
  block) to amortise their cost.

The paper inserts CPU memory fences around the section-context updates.  In
CPython the GIL serialises byte-code execution and provides the equivalent
ordering guarantees, so no explicit fence is required; the protocol logic
is otherwise identical.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

from repro.errors import ConcurrencyProtocolError
from repro.sanitizer import hooks as _san


class SectionContext:
    """Per-thread critical-section state (``sectionCtx`` in the paper)."""

    __slots__ = ("epoch", "depth")

    def __init__(self) -> None:
        self.epoch = 0
        #: Nesting depth; > 0 means the thread is inside a critical section.
        self.depth = 0

    @property
    def in_critical(self) -> bool:
        return self.depth > 0


class EpochManager:
    """Global epoch counter plus the per-thread section contexts."""

    def __init__(self) -> None:
        self._global_epoch = 0
        self._contexts: Dict[int, SectionContext] = {}
        self._registry_lock = threading.Lock()
        self._advance_lock = threading.Lock()
        #: When set, only this thread id may advance the global epoch.  Used
        #: by the compactor: once a relocation epoch is scheduled, no other
        #: thread may advance until compaction finishes (section 5.1).
        self._advance_restricted_to: Optional[int] = None

    # ------------------------------------------------------------------
    # Thread registration
    # ------------------------------------------------------------------

    def _context(self) -> SectionContext:
        tid = threading.get_ident()
        ctx = self._contexts.get(tid)
        if ctx is None:
            ctx = SectionContext()
            with self._registry_lock:
                self._contexts[tid] = ctx
        return ctx

    def forget_dead_threads(self) -> int:
        """Drop section contexts of threads that have exited.

        Returns the number of contexts removed.  A dead thread can never be
        inside a critical section, so forgetting it can only unblock epoch
        advancement.
        """
        alive = {t.ident for t in threading.enumerate()}
        removed = 0
        with self._registry_lock:
            for tid in list(self._contexts):
                if tid not in alive and not self._contexts[tid].in_critical:
                    del self._contexts[tid]
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    # Critical sections
    # ------------------------------------------------------------------

    def enter_critical_section(self) -> int:
        """Enter a critical section; returns the thread-local epoch.

        Nested enters are permitted (depth-counted); only the outermost
        enter refreshes the thread-local epoch, so a nested section never
        observes a newer epoch than its enclosing one.
        """
        ctx = self._context()
        if ctx.depth == 0:
            ctx.epoch = self._global_epoch
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("section.enter", epochs=self, epoch=ctx.epoch)
        ctx.depth += 1
        return ctx.epoch

    def exit_critical_section(self) -> None:
        ctx = self._context()
        if ctx.depth == 0:
            raise ConcurrencyProtocolError(
                "exit_critical_section without matching enter"
            )
        ctx.depth -= 1
        if ctx.depth == 0 and _san.SANITIZER is not None:
            _san.SANITIZER.event("section.exit", epochs=self, epoch=ctx.epoch)

    class _Critical:
        __slots__ = ("_mgr",)

        def __init__(self, mgr: "EpochManager") -> None:
            self._mgr = mgr

        def __enter__(self) -> int:
            return self._mgr.enter_critical_section()

        def __exit__(self, *exc) -> None:
            self._mgr.exit_critical_section()

    def critical_section(self) -> "_Critical":
        """Context manager wrapping enter/exit of a critical section."""
        return self._Critical(self)

    # ------------------------------------------------------------------
    # Epoch advancement
    # ------------------------------------------------------------------

    @property
    def global_epoch(self) -> int:
        return self._global_epoch

    def local_epoch(self) -> int:
        """The calling thread's thread-local epoch."""
        return self._context().epoch

    def in_critical(self) -> bool:
        return self._context().in_critical

    def try_advance(self) -> bool:
        """Advance the global epoch if every in-critical thread caught up.

        A thread may increment the global epoch from ``e`` to ``e + 1`` if
        all threads currently inside critical sections have thread-local
        epoch ``e`` (the paper's rule: threads can only be in ``e`` or
        ``e - 1``; advancing requires nobody left in ``e - 1``).
        """
        me = threading.get_ident()
        with self._advance_lock:
            restricted = self._advance_restricted_to
            if restricted is not None and restricted != me:
                return False
            current = self._global_epoch
            with self._registry_lock:
                for tid, ctx in self._contexts.items():
                    if tid == me:
                        continue
                    if ctx.in_critical and ctx.epoch < current:
                        return False
            self._global_epoch = current + 1
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "epoch.advance",
                    lock_held=True,
                    epochs=self,
                    old=current,
                    new=current + 1,
                )
            return True

    def restrict_advancement(self, thread_id: Optional[int]) -> None:
        """Reserve (or release, with ``None``) epoch advancement for a thread."""
        with self._advance_lock:
            if thread_id is not None and self._advance_restricted_to is not None:
                raise ConcurrencyProtocolError(
                    "epoch advancement already restricted"
                )
            self._advance_restricted_to = thread_id

    def others_at_least(self, epoch: int) -> bool:
        """True if every *other* in-critical thread has reached *epoch*.

        The compactor uses this to detect that all threads entered the
        freezing / relocation epoch (section 5.1).
        """
        me = threading.get_ident()
        with self._registry_lock:
            for tid, ctx in self._contexts.items():
                if tid == me:
                    continue
                if ctx.in_critical and ctx.epoch < epoch:
                    return False
        return True

    def min_active_epoch(self) -> int:
        """Smallest thread-local epoch among in-critical threads.

        Returns the current global epoch when no thread is in a critical
        section; used by tests and diagnostics.
        """
        with self._registry_lock:
            epochs = [
                ctx.epoch for ctx in self._contexts.values() if ctx.in_critical
            ]
        if not epochs:
            return self._global_epoch
        return min(epochs)

    def contexts_snapshot(self) -> Iterator[tuple]:
        """(tid, epoch, depth) triples — diagnostics only."""
        with self._registry_lock:
            items = list(self._contexts.items())
        return ((tid, ctx.epoch, ctx.depth) for tid, ctx in items)
