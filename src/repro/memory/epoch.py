"""Epoch-based memory reclamation (paper section 3.4).

Threads access self-managed objects inside *critical sections* (grace
periods).  Each thread has a section context holding its thread-local epoch
and an in-critical flag; a global epoch counter advances only when every
thread currently inside a critical section has caught up to it.  Memory
freed in global epoch ``e`` is safe to reclaim in epoch ``e + 2``: by then
no thread can still be inside a critical section begun in epoch ``e``.

Differences from classic epoch reclamation, following the paper:

* the global epoch is a continuous counter, not modulo-3;
* the epoch is advanced lazily from the allocation path (and by the
  compactor), not on critical-section exit;
* critical sections span large units of work (a whole query or one memory
  block) to amortise their cost.

The paper inserts CPU memory fences around the section-context updates.  In
CPython the GIL serialises byte-code execution and provides the equivalent
ordering guarantees, so no explicit fence is required; the protocol logic
is otherwise identical.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

from repro.errors import ConcurrencyProtocolError
from repro.sanitizer import hooks as _san


class SectionContext:
    """Per-thread critical-section state (``sectionCtx`` in the paper)."""

    __slots__ = ("epoch", "depth")

    def __init__(self) -> None:
        self.epoch = 0
        #: Nesting depth; > 0 means the thread is inside a critical section.
        self.depth = 0

    @property
    def in_critical(self) -> bool:
        return self.depth > 0


class EpochLease:
    """An epoch critical section held on behalf of an *external* client.

    Thread section contexts are keyed by ``threading.get_ident()``, which
    ties a critical section's lifetime to one thread's call stack.  A
    query *service*, however, serves a client session from whichever
    worker thread picks its request up, and the session may want to pin a
    snapshot (keep the epoch from advancing over its reads) across
    several requests.  A lease is a section context registered under a
    synthetic key: while entered, it pins epoch advancement exactly like
    an in-critical thread; unlike a thread it can be **revoked** by a
    watchdog when its owner goes silent, so a dead client can never wedge
    limbo reclamation.

    Enter/exit/revoke are serialised by the epoch registry lock — a
    watchdog revocation can race a worker thread touching the same lease.
    """

    __slots__ = ("_mgr", "key", "name", "revoked")

    def __init__(self, mgr: "EpochManager", key: int, name: str) -> None:
        self._mgr = mgr
        self.key = key
        self.name = name
        #: Set (only) by :meth:`revoke`; a revoked lease is permanently
        #: dead — enter() raises, exit() becomes a no-op.
        self.revoked = False

    def enter(self) -> int:
        """Enter the leased critical section; returns the lease epoch."""
        return self._mgr._lease_enter(self)

    def exit(self) -> None:
        self._mgr._lease_exit(self)

    def release(self) -> None:
        """Drop the lease entirely (exits any held section, unregisters)."""
        self._mgr._lease_release(self)

    def revoke(self) -> bool:
        """Forcibly expire the lease (watchdog path).

        Returns True if the lease was holding a critical section at the
        time — i.e. revocation actually unblocked epoch advancement.
        """
        return self._mgr._lease_revoke(self)

    @property
    def held(self) -> bool:
        ctx = self._mgr._lease_ctx(self.key)
        return ctx is not None and ctx.in_critical

    @property
    def epoch(self) -> Optional[int]:
        ctx = self._mgr._lease_ctx(self.key)
        return ctx.epoch if ctx is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "revoked" if self.revoked else ("held" if self.held else "idle")
        return f"<EpochLease {self.name or self.key} {state}>"


class EpochManager:
    """Global epoch counter plus the per-thread section contexts."""

    def __init__(self) -> None:
        self._global_epoch = 0
        self._contexts: Dict[int, SectionContext] = {}
        self._registry_lock = threading.Lock()
        self._advance_lock = threading.Lock()
        #: When set, only this thread id may advance the global epoch.  Used
        #: by the compactor: once a relocation epoch is scheduled, no other
        #: thread may advance until compaction finishes (section 5.1).
        self._advance_restricted_to: Optional[int] = None
        #: Synthetic context keys for leases; negative so they can never
        #: collide with a real thread ident.
        self._next_lease_key = -1
        #: External reader-section sources (cross-process executors).  Each
        #: is a zero-argument callable yielding ``(in_critical, epoch)``
        #: pairs — one per remote reader — folded into every advancement
        #: decision exactly like local section contexts.
        self._external_sources: list = []

    # ------------------------------------------------------------------
    # Thread registration
    # ------------------------------------------------------------------

    def _context(self) -> SectionContext:
        tid = threading.get_ident()
        ctx = self._contexts.get(tid)
        if ctx is None:
            ctx = SectionContext()
            with self._registry_lock:
                self._contexts[tid] = ctx
        return ctx

    def forget_dead_threads(self) -> int:
        """Drop section contexts of threads that have exited.

        Returns the number of contexts removed.  A dead thread can never be
        inside a critical section, so forgetting it can only unblock epoch
        advancement.
        """
        alive = {t.ident for t in threading.enumerate()}
        removed = 0
        with self._registry_lock:
            for tid in list(self._contexts):
                if tid < 0:
                    # Lease contexts are not tied to a thread's lifetime;
                    # they are removed by release/revoke only.
                    continue
                if tid not in alive and not self._contexts[tid].in_critical:
                    del self._contexts[tid]
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    # Leases (externally-held critical sections)
    # ------------------------------------------------------------------

    def create_lease(self, name: str = "") -> EpochLease:
        """Register a new lease-backed section context.

        The context is keyed by a fresh negative integer so it can never
        collide with a real thread ident; ``try_advance`` /
        ``others_at_least`` treat it like any other registered context,
        which is exactly what makes a held lease pin the epoch.
        """
        with self._registry_lock:
            key = self._next_lease_key
            self._next_lease_key -= 1
            self._contexts[key] = SectionContext()
        lease = EpochLease(self, key, name)
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "lease.create", epochs=self, key=key, lease=name
            )
        return lease

    def _lease_ctx(self, key: int) -> Optional[SectionContext]:
        with self._registry_lock:
            return self._contexts.get(key)

    def _lease_enter(self, lease: EpochLease) -> int:
        with self._registry_lock:
            if lease.revoked:
                raise ConcurrencyProtocolError(
                    f"lease {lease.name or lease.key} has been revoked"
                )
            ctx = self._contexts.get(lease.key)
            if ctx is None:  # released concurrently
                raise ConcurrencyProtocolError(
                    f"lease {lease.name or lease.key} has been released"
                )
            if ctx.depth == 0:
                ctx.epoch = self._global_epoch
            ctx.depth += 1
            epoch = ctx.epoch
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "lease.enter", epochs=self, key=lease.key, epoch=epoch
            )
        return epoch

    def _lease_exit(self, lease: EpochLease) -> None:
        with self._registry_lock:
            # A watchdog revocation between enter and exit already forced
            # the section closed; the late exit must be a silent no-op.
            if lease.revoked:
                return
            ctx = self._contexts.get(lease.key)
            if ctx is None:
                return
            if ctx.depth == 0:
                raise ConcurrencyProtocolError(
                    f"lease {lease.name or lease.key}: exit without enter"
                )
            ctx.depth -= 1
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("lease.exit", epochs=self, key=lease.key)

    def _lease_release(self, lease: EpochLease) -> None:
        with self._registry_lock:
            self._contexts.pop(lease.key, None)
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("lease.release", epochs=self, key=lease.key)

    def _lease_revoke(self, lease: EpochLease) -> bool:
        with self._registry_lock:
            if lease.revoked:
                return False
            lease.revoked = True
            ctx = self._contexts.pop(lease.key, None)
            was_held = ctx is not None and ctx.in_critical
            if ctx is not None:
                ctx.depth = 0
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "lease.revoke", epochs=self, key=lease.key, was_held=was_held
            )
        return was_held

    def lease_count(self) -> int:
        """Number of registered (unrevoked, unreleased) leases."""
        with self._registry_lock:
            return sum(1 for key in self._contexts if key < 0)

    # ------------------------------------------------------------------
    # External reader sections (cross-process epoch protocol)
    # ------------------------------------------------------------------

    def register_external(self, source) -> None:
        """Register a cross-process reader-section source.

        *source* is called (under the registry lock — it must not block)
        whenever an advancement decision is made and must yield
        ``(in_critical, epoch)`` pairs describing remote readers, e.g.
        worker processes publishing their pinned epoch through a shared
        slot array.  A remote reader pinning epoch ``e`` blocks
        advancement past ``e`` exactly like a local thread would, which
        is what keeps reclamation from reusing a segment's bytes while an
        attached worker still scans them.
        """
        with self._registry_lock:
            self._external_sources.append(source)

    def unregister_external(self, source) -> None:
        with self._registry_lock:
            try:
                self._external_sources.remove(source)
            except ValueError:
                pass

    def _external_pairs(self):
        # Caller holds the registry lock.
        for source in self._external_sources:
            yield from source()

    # ------------------------------------------------------------------
    # Critical sections
    # ------------------------------------------------------------------

    def enter_critical_section(self) -> int:
        """Enter a critical section; returns the thread-local epoch.

        Nested enters are permitted (depth-counted); only the outermost
        enter refreshes the thread-local epoch, so a nested section never
        observes a newer epoch than its enclosing one.
        """
        ctx = self._context()
        if ctx.depth == 0:
            ctx.epoch = self._global_epoch
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("section.enter", epochs=self, epoch=ctx.epoch)
        ctx.depth += 1
        return ctx.epoch

    def exit_critical_section(self) -> None:
        ctx = self._context()
        if ctx.depth == 0:
            raise ConcurrencyProtocolError(
                "exit_critical_section without matching enter"
            )
        ctx.depth -= 1
        if ctx.depth == 0 and _san.SANITIZER is not None:
            _san.SANITIZER.event("section.exit", epochs=self, epoch=ctx.epoch)

    class _Critical:
        __slots__ = ("_mgr",)

        def __init__(self, mgr: "EpochManager") -> None:
            self._mgr = mgr

        def __enter__(self) -> int:
            return self._mgr.enter_critical_section()

        def __exit__(self, *exc) -> None:
            self._mgr.exit_critical_section()

    def critical_section(self) -> "_Critical":
        """Context manager wrapping enter/exit of a critical section."""
        return self._Critical(self)

    # ------------------------------------------------------------------
    # Epoch advancement
    # ------------------------------------------------------------------

    @property
    def global_epoch(self) -> int:
        return self._global_epoch

    def local_epoch(self) -> int:
        """The calling thread's thread-local epoch."""
        return self._context().epoch

    def in_critical(self) -> bool:
        return self._context().in_critical

    def try_advance(self) -> bool:
        """Advance the global epoch if every in-critical thread caught up.

        A thread may increment the global epoch from ``e`` to ``e + 1`` if
        all threads currently inside critical sections have thread-local
        epoch ``e`` (the paper's rule: threads can only be in ``e`` or
        ``e - 1``; advancing requires nobody left in ``e - 1``).
        """
        me = threading.get_ident()
        with self._advance_lock:
            restricted = self._advance_restricted_to
            if restricted is not None and restricted != me:
                return False
            current = self._global_epoch
            with self._registry_lock:
                for tid, ctx in self._contexts.items():
                    if tid == me:
                        continue
                    if ctx.in_critical and ctx.epoch < current:
                        return False
                for in_critical, epoch in self._external_pairs():
                    if in_critical and epoch < current:
                        return False
            self._global_epoch = current + 1
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "epoch.advance",
                    lock_held=True,
                    epochs=self,
                    old=current,
                    new=current + 1,
                )
            return True

    def restrict_advancement(self, thread_id: Optional[int]) -> None:
        """Reserve (or release, with ``None``) epoch advancement for a thread."""
        with self._advance_lock:
            if thread_id is not None and self._advance_restricted_to is not None:
                raise ConcurrencyProtocolError(
                    "epoch advancement already restricted"
                )
            self._advance_restricted_to = thread_id

    def others_at_least(self, epoch: int) -> bool:
        """True if every *other* in-critical thread has reached *epoch*.

        The compactor uses this to detect that all threads entered the
        freezing / relocation epoch (section 5.1).
        """
        me = threading.get_ident()
        with self._registry_lock:
            for tid, ctx in self._contexts.items():
                if tid == me:
                    continue
                if ctx.in_critical and ctx.epoch < epoch:
                    return False
            for in_critical, remote_epoch in self._external_pairs():
                if in_critical and remote_epoch < epoch:
                    return False
        return True

    def min_active_epoch(self) -> int:
        """Smallest thread-local epoch among in-critical threads.

        Returns the current global epoch when no thread is in a critical
        section; used by tests and diagnostics.
        """
        with self._registry_lock:
            epochs = [
                ctx.epoch for ctx in self._contexts.values() if ctx.in_critical
            ]
            epochs.extend(
                epoch
                for in_critical, epoch in self._external_pairs()
                if in_critical
            )
        if not epochs:
            return self._global_epoch
        return min(epochs)

    def contexts_snapshot(self) -> Iterator[tuple]:
        """(tid, epoch, depth) triples — diagnostics only."""
        with self._registry_lock:
            items = list(self._contexts.items())
        return ((tid, ctx.epoch, ctx.depth) for tid, ctx in items)
