"""Memory tiering: file-backed cold blocks under a byte budget.

The paper's collections manage their own memory so queries dominate; this
module removes the remaining assumption that every block fits in RAM.  A
:class:`Pager` attached to a :class:`~repro.memory.manager.MemoryManager`
keeps the *block pool* — the layout-bearing row and columnar blocks of
every collection — under a byte budget by demoting cold blocks to a
*tier file* and mapping them back read-only:

* **hot** — the block owns a writable buffer from the space's inner
  allocation policy (process heap or named shared memory); the only
  state in which writes are possible.
* **cooling** — chosen for demotion at epoch ``e``; still hot bytes.
  Demotion completes only once the global epoch reaches ``e + 2``, the
  same two-epoch grace the limbo/reclamation machinery trusts: a writer
  inside a critical section entered at ``s <= e`` pins the global epoch
  at ``s + 1 < e + 2``, so no write that validated residency before the
  cooling decision can still be in flight when the buffer is swapped.
  Every write path calls :meth:`Pager.ensure_hot` inside its critical
  section, which cancels an in-progress cooling under the pager lock.
* **cold** — ``block.buf`` is a read-only mmap of the block's region in
  the tier file.  All *read* paths work unchanged over the mapping
  (NumPy views come out non-writable; a stray write raises instead of
  corrupting the spilled image).  A cold block's ``zone_version`` is
  frozen — writes promote first — so the zone map built at demotion
  answers pruning with **zero cold byte reads**.

Replacement is Clock-style: scan admission bumps a per-block reference
counter (:meth:`Pager.touch`, which also faults cold blocks back in);
the sweep hand halves counters as it passes and demotes the first
unpinned, non-active, non-compacting block whose counter reached zero.
Dirty blocks are spilled (written) to the tier file before demotion;
blocks whose spilled image is still current are demoted without a
write.  Freed tier regions are recycled only two epochs after the free,
so worker processes that mapped them (``repro.query.procexec``) never
observe a rewrite under a live mapping.

:class:`TieredBuffers` is the buffer-policy companion to
``repro.memory.shm``'s ``HeapBuffers``/``SharedBuffers``: it delegates
hot-segment allocation to an inner policy and owns the tier file, so
the same address space serves shared-memory hot blocks to forked
workers while cold blocks travel by ``(tier file, offset)`` coordinates
instead of segment names.
"""

from __future__ import annotations

import atexit
import contextlib
import mmap
import os
import tempfile
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.memory import zonemap
from repro.memory.shm import HeapBuffers
from repro.sanitizer import hooks as _san

#: Tier files are created as ``smc_tier_<pid>_*`` in the temp directory;
#: like ``/dev/shm/smc_*``, zero leftovers after close is part of the
#: contract the CI leak checks sweep.
TIER_PREFIX = "smc_tier_"

#: Cap on the Clock reference counter; keeps one hot streak from making a
#: block unevictable for many sweep revolutions.
CLOCK_CAP = 8


def _align_up(n: int, a: int) -> int:
    return n + (-n % a)


class ColdSegment:
    """A read-only mapping of one tier-file region (segment protocol).

    Stands in for a ``HeapSegment``/``SharedSegment`` as ``block.segment``
    while the block is cold.  It has no attachable ``name``: worker
    processes reach the same bytes through their own mapping of the tier
    file (:meth:`TierStore.map_region`), addressed by file offset.
    """

    __slots__ = ("_store", "offset", "length", "_map", "buf")

    #: Cold segments are not attachable by segment name.
    name: Optional[str] = None

    def __init__(self, store: "TierStore", offset: int, length: int, mm) -> None:
        self._store = store
        self.offset = offset
        self.length = length
        self._map = mm
        self.buf = memoryview(mm)

    def release(self) -> None:
        self.buf = None  # type: ignore[assignment]
        self._store._unmap(self._map)
        self._map = None


class TierStore:
    """The cold store: one append-ish file of block-sized spill regions.

    Regions are aligned to ``mmap.ALLOCATIONGRANULARITY`` so each cold
    block can be mapped independently with a file offset.  The file is
    created lazily on the first spill and unlinked at close; a forked
    worker inherits the open file descriptor (file offsets are the wire
    format of the process-executor's cold-block entries), but only the
    creating process ever writes, frees or unlinks.
    """

    def __init__(self, region_size: int) -> None:
        self.region_size = _align_up(max(1, region_size), mmap.ALLOCATIONGRANULARITY)
        self.path: Optional[str] = None
        self._fd: Optional[int] = None
        self._next = 0
        self._free: List[int] = []
        self._lock = threading.Lock()
        #: Mappings whose close() hit BufferError (stale NumPy views still
        #: export them); retried at close, else the kernel reclaims them.
        self._zombies: List[object] = []
        self._closed = False
        self._pid = os.getpid()
        atexit.register(self._atexit)

    # -- regions -------------------------------------------------------

    def _ensure_file(self) -> int:
        with self._lock:
            if self._closed:
                raise ValueError("tier store is closed")
            if self._fd is None:
                fd, path = tempfile.mkstemp(prefix=f"{TIER_PREFIX}{self._pid}_", suffix=".dat")
                self._fd = fd
                self.path = path
            return self._fd

    def spill(self, data: bytes, offset: int = -1) -> int:
        """Write one block image to *offset* (or a fresh region); returns
        the region offset."""
        if len(data) > self.region_size:
            raise ValueError("block image exceeds tier region size")
        fd = self._ensure_file()
        if offset < 0:
            with self._lock:
                if self._free:
                    offset = self._free.pop()
                else:
                    offset = self._next
                    self._next += self.region_size
        os.pwrite(fd, data, offset)
        return offset

    def map_region(self, offset: int, length: int) -> ColdSegment:
        """Map ``[offset, offset+length)`` read-only (owner or worker)."""
        fd = self._ensure_file()
        mm = mmap.mmap(fd, length, offset=offset, access=mmap.ACCESS_READ)
        return ColdSegment(self, offset, length, mm)

    def free_region(self, offset: int) -> None:
        with self._lock:
            if not self._closed:
                self._free.append(offset)

    def _unmap(self, mm) -> None:
        try:
            mm.close()
        except BufferError:
            with self._lock:
                self._zombies.append(mm)

    # -- introspection -------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Bytes of tier file currently holding (or reserved for) images."""
        with self._lock:
            return self._next - len(self._free) * self.region_size

    @property
    def file_bytes(self) -> int:
        with self._lock:
            return self._next

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            fd, self._fd = self._fd, None
            path, self.path = self.path, None
            zombies, self._zombies = self._zombies, []
            self._free.clear()
        for mm in zombies:
            try:
                mm.close()
            except BufferError:  # pragma: no cover - kernel reclaims at exit
                pass
        if fd is not None:
            os.close(fd)
        if path is not None:
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - already swept
                pass

    def _atexit(self) -> None:
        # Forked workers inherit this registration but must never unlink
        # the owner's tier file.
        if os.getpid() != self._pid:  # pragma: no cover - fork guard
            return
        self.close()


class TieredBuffers:
    """Buffer policy pairing an inner hot-segment policy with a tier store.

    Hot blocks get their buffers from *inner* (``HeapBuffers`` by
    default, ``SharedBuffers`` when the space must be fork-attachable);
    the pager spills and maps cold images through the tier store.  The
    store's region size is fixed lazily by the first spill, since block
    size belongs to the address space, not the policy.
    """

    def __init__(self, inner=None) -> None:
        self.inner = inner if inner is not None else HeapBuffers()
        self._store: Optional[TierStore] = None
        self._store_lock = threading.Lock()

    @property
    def shared(self) -> bool:
        return self.inner.shared

    # -- hot segments (delegate) ---------------------------------------

    def create(self, size: int):
        return self.inner.create(size)

    def attach(self, name: str):
        return self.inner.attach(name)

    # -- cold store ----------------------------------------------------

    def store_for(self, region_size: int) -> TierStore:
        with self._store_lock:
            if self._store is None:
                self._store = TierStore(region_size)
            return self._store

    @property
    def store(self) -> Optional[TierStore]:
        return self._store

    @property
    def tier_path(self) -> Optional[str]:
        store = self._store
        return store.path if store is not None else None

    def close(self) -> None:
        store = self._store
        if store is not None:
            store.close()
        self.inner.close()


class Pager:
    """Budget-driven block pager over one manager's address space.

    All state transitions run under one lock; sanitizer events
    (``tier.cool`` / ``tier.evict`` / ``tier.fault``) are emitted after
    the lock is released so schedule gates can park threads between
    protocol steps without wedging the pager.
    """

    def __init__(self, manager, budget: int) -> None:
        space = manager.space
        buffers = space.buffers
        if not isinstance(buffers, TieredBuffers):
            raise ValueError("Pager requires the space to use TieredBuffers")
        self.manager = manager
        self.buffers = buffers
        self.block_size = space.block_size
        self.budget = max(int(budget), space.block_size)
        self._lock = threading.RLock()
        #: Clock list of tracked (pageable) blocks; hand index sweeps it.
        self._blocks: List[object] = []
        self._hand = 0
        self._cooling: List[object] = []
        self._cold_count = 0
        #: Freed tier regions awaiting their two-epoch grace:
        #: ``(ready_epoch, offset)`` in push order.
        self._retired_regions: Deque[Tuple[int, int]] = deque()
        #: While > 0, demotions are deferred (process-executor fan-outs
        #: hold this so hot segment names and tier regions stay stable
        #: for the duration of a scatter-gather query).
        self._hold = 0
        self._pid = os.getpid()
        #: Metrics hook: called with each fault's wall-clock seconds.
        self.fault_timer = None
        self.faults = 0
        self.evictions = 0
        self.spills = 0
        self.touch_hits = 0

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------

    def track(self, block) -> None:
        """Register a freshly acquired pageable block with the clock."""
        if os.getpid() != self._pid:  # pragma: no cover - fork guard
            return
        with self._lock:
            self._blocks.append(block)

    def untrack(self, block) -> None:
        """Forget *block* (it is being released) and retire its region."""
        if os.getpid() != self._pid:  # pragma: no cover - fork guard
            return
        with self._lock:
            try:
                idx = self._blocks.index(block)
            except ValueError:
                idx = -1
            if idx >= 0:
                self._blocks.pop(idx)
                if idx < self._hand:
                    self._hand -= 1
            if block in self._cooling:
                self._cooling.remove(block)
            if block.residency == "cold":
                self._cold_count -= 1
            if block.tier_offset >= 0:
                self._retired_regions.append(
                    (self.manager.epochs.global_epoch + 2, block.tier_offset)
                )
                block.tier_offset = -1

    # ------------------------------------------------------------------
    # Pin / unpin
    # ------------------------------------------------------------------

    def pin(self, block) -> None:
        """Bar *block* from demotion until :meth:`unpin` (fault it first)."""
        events: List[tuple] = []
        with self._lock:
            if block.residency == "cooling":
                self._cancel_cooling(block)
            if block.residency == "cold":
                self._fault(block, events)
            block.pin_count += 1
        self._emit(events)

    def unpin(self, block) -> None:
        with self._lock:
            if block.pin_count <= 0:
                raise ValueError("unpin without matching pin")
            block.pin_count -= 1

    @contextlib.contextmanager
    def pinned(self, block):
        self.pin(block)
        try:
            yield block
        finally:
            self.unpin(block)

    @contextlib.contextmanager
    def hold(self):
        """Defer demotions for the duration (process-exec fan-outs)."""
        with self._lock:
            self._hold += 1
        try:
            yield
        finally:
            with self._lock:
                self._hold -= 1

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def touch(self, block) -> bool:
        """Scan admission: reference *block*, faulting it in if cold.

        Returns True when a fault (cold -> hot promotion) happened.  In a
        forked worker this is a no-op — workers read cold blocks through
        their own tier-file mappings and never mutate residency.
        """
        if os.getpid() != self._pid:
            return False
        if getattr(block, "residency", None) is None:
            return False
        events: List[tuple] = []
        with self._lock:
            block.read_clock = min(block.read_clock + 1, CLOCK_CAP)
            if block.residency == "cooling":
                self._cancel_cooling(block)
            if block.residency == "cold":
                self._fault(block, events)
                faulted = True
            else:
                self.touch_hits += 1
                faulted = False
        self._emit(events)
        return faulted

    def ensure_hot(self, block) -> None:
        """Make *block* writable; every write path calls this *inside its
        epoch critical section*, which is what makes the two-epoch cooling
        grace a proof that no writer still trusts a demoted buffer."""
        if os.getpid() != self._pid:  # pragma: no cover - workers never write
            return
        if getattr(block, "residency", None) is None:
            return
        events: List[tuple] = []
        with self._lock:
            if block.residency == "cooling":
                self._cancel_cooling(block)
            if block.residency == "cold":
                self._fault(block, events)
            if block.tier_offset >= 0:
                # The spilled image is about to go stale.
                block.tier_dirty = True
        self._emit(events)

    # ------------------------------------------------------------------
    # Budget / maintenance
    # ------------------------------------------------------------------

    def set_budget(self, budget: int) -> None:
        """Governor hook: retarget the hot-tier byte budget."""
        with self._lock:
            self.budget = max(int(budget), self.block_size)

    def governor_usage(self) -> int:
        return self.hot_bytes()

    def governor_counters(self) -> Tuple[int, int]:
        """(hits, misses) for the governor's miss-growth weighting."""
        with self._lock:
            return self.touch_hits, self.faults

    def over_budget(self) -> bool:
        return self.hot_bytes() > self.budget

    def maintain(self, max_rounds: int = 4) -> None:
        """Operation-boundary upkeep: finish cooling, evict down to budget.

        Advances the global epoch (when no critical section blocks it) so
        pending demotions can cross their two-epoch grace; after this
        returns with no open sections and enough eligible victims,
        ``hot_bytes() <= budget`` holds.
        """
        if os.getpid() != self._pid:  # pragma: no cover - fork guard
            return
        events: List[tuple] = []
        for _ in range(max_rounds):
            with self._lock:
                self._drain_retired_regions()
                self._reclaim_ready(events)
                started = self._evict_for(0, events)
                self._reclaim_ready(events)
                done = (
                    not self._cooling
                    and (len(self._blocks) - self._cold_count) * self.block_size
                    <= self.budget
                )
            if done:
                break
            if not started and not self._cooling:
                break
            self.manager.advance_epoch()
            self.manager.advance_epoch()
        self._emit(events)

    # ------------------------------------------------------------------
    # Internals (lock held unless noted)
    # ------------------------------------------------------------------

    def _eligible(self, block) -> bool:
        return (
            block.residency == "hot"
            and block.pin_count == 0
            and not block.is_active
            and not block.compacting
            and block.compaction_group is None
            and not block.queued_for_reclaim
        )

    def _clock_next(self):
        blocks = self._blocks
        n = len(blocks)
        scanned = 0
        # A block referenced up to CLOCK_CAP needs bit_length(CLOCK_CAP)
        # halvings before its counter reaches zero, plus one more visit to
        # be returned — bound the sweep so a victim is always found when
        # an eligible block exists, no matter how hot the pool ran.
        limit = (CLOCK_CAP.bit_length() + 1) * n
        while scanned < limit:
            if self._hand >= n:
                self._hand = 0
            block = blocks[self._hand]
            self._hand += 1
            scanned += 1
            if not self._eligible(block):
                continue
            if block.read_clock > 0:
                block.read_clock >>= 1  # second chance, aging
                continue
            return block
        return None

    def _start_cooling(self, block) -> None:
        block.residency = "cooling"
        block.cool_epoch = self.manager.epochs.global_epoch
        self._cooling.append(block)

    def _cancel_cooling(self, block) -> None:
        block.residency = "hot"
        block.cool_epoch = -1
        if block in self._cooling:
            self._cooling.remove(block)

    def _evict_for(self, extra: int, events: Optional[List[tuple]] = None) -> int:
        """Start cooling victims until projected hot bytes fit the budget.

        Returns the number of blocks newly put into cooling.  Projection
        counts in-flight coolings as already reclaimed; actual demotion
        happens in :meth:`_reclaim_ready` once the grace has passed.
        """
        bs = self.block_size
        hot = (len(self._blocks) - self._cold_count) * bs
        projected = hot - len(self._cooling) * bs
        started = 0
        while projected + extra > self.budget:
            victim = self._clock_next()
            if victim is None:
                break
            self._start_cooling(victim)
            if events is not None:
                events.append(
                    (
                        "tier.cool",
                        dict(
                            manager=self.manager,
                            block=victim,
                            cool_epoch=victim.cool_epoch,
                        ),
                    )
                )
            projected -= bs
            started += 1
        return started

    def _reclaim_ready(self, events: List[tuple]) -> None:
        """Demote every cooling block whose two-epoch grace has passed."""
        if self._hold or not self._cooling:
            return
        epoch = self.manager.epochs.global_epoch
        ripe = [
            b
            for b in self._cooling
            if b.residency == "cooling" and epoch >= b.cool_epoch + 2
        ]
        for block in ripe:
            # Re-verify under the lock: the block may have become an
            # allocator target or a compaction source since cooling began
            # (those paths cancel cooling, but be defensive about any
            # flag flipped without the pager's knowledge).
            if (
                block.pin_count
                or block.is_active
                or block.compacting
                or block.compaction_group is not None
                or block.queued_for_reclaim
            ):
                self._cancel_cooling(block)
                continue
            self._demote(block, events)

    def _demote(self, block, events: List[tuple]) -> None:
        manager = self.manager
        # Build (or revalidate) the zone map while the bytes are still
        # hot: the block's zone_version is frozen once cold (all writes
        # promote first), so pruning and planner statistics answer from
        # this retained map without touching a single cold byte.
        try:
            zonemap.ensure(manager, block)
        except Exception:  # pragma: no cover - statless contexts
            pass
        store = self.buffers.store_for(self.block_size)
        spilled = False
        if block.tier_offset < 0 or block.tier_dirty:
            block.tier_offset = store.spill(bytes(block.buf), block.tier_offset)
            self.spills += 1
            spilled = True
        cold = store.map_region(block.tier_offset, self.block_size)
        old = block.segment
        block.segment = cold
        block.buf = cold.buf
        block._bind_views()
        block.residency = "cold"
        block.tier_dirty = False
        cool_epoch, block.cool_epoch = block.cool_epoch, -1
        block.read_clock = 0
        if block in self._cooling:
            self._cooling.remove(block)
        self._cold_count += 1
        self.evictions += 1
        extra = manager.stats.extra
        extra["tier_evictions"] = extra.get("tier_evictions", 0) + 1
        if spilled:
            extra["tier_spills"] = extra.get("tier_spills", 0) + 1
        old.release()
        events.append(
            (
                "tier.evict",
                # Flags are captured at demotion time (under the pager
                # lock): events are emitted after the lock is released,
                # when the block may legitimately have moved on.
                dict(
                    manager=manager,
                    block=block,
                    cool_epoch=cool_epoch,
                    epoch=manager.epochs.global_epoch,
                    pin_count=block.pin_count,
                    was_active=block.is_active,
                    was_compacting=bool(
                        block.compacting or block.compaction_group is not None
                    ),
                    was_queued=block.queued_for_reclaim,
                    was_dirty=spilled,
                ),
            )
        )

    def _fault(self, block, events: List[tuple]) -> None:
        """Promote a cold block back into a writable hot segment."""
        manager = self.manager
        start = time.perf_counter()
        # Make room first (evict-then-fault), completing any cooling
        # whose grace already passed so steady-state stays at budget.
        self._drain_retired_regions()
        self._reclaim_ready(events)
        self._evict_for(self.block_size, events)
        self._reclaim_ready(events)
        data = bytes(block.buf)
        seg = self.buffers.create(self.block_size)
        seg.buf[: len(data)] = data
        old = block.segment
        block.segment = seg
        block.buf = seg.buf
        block._bind_views()
        block.residency = "hot"
        block.tier_dirty = False  # image in the tier file is still current
        block.cool_epoch = -1
        self._cold_count -= 1
        self.faults += 1
        extra = manager.stats.extra
        extra["tier_faults"] = extra.get("tier_faults", 0) + 1
        old.release()
        elapsed = time.perf_counter() - start
        timer = self.fault_timer
        if timer is not None:
            timer(elapsed)
        events.append(
            (
                "tier.fault",
                dict(
                    manager=manager,
                    block=block,
                    residency=block.residency,
                    tier_offset=block.tier_offset,
                    pin_count=block.pin_count,
                    seconds=elapsed,
                ),
            )
        )

    def _drain_retired_regions(self) -> None:
        store = self.buffers.store
        if store is None:
            return
        epoch = self.manager.epochs.global_epoch
        retired = self._retired_regions
        while retired and retired[0][0] <= epoch:
            __, offset = retired.popleft()
            store.free_region(offset)

    def _emit(self, events: List[tuple]) -> None:
        if _san.SANITIZER is None or not events:
            return
        for name, data in events:
            _san.SANITIZER.event(name, **data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def hot_bytes(self) -> int:
        with self._lock:
            return (len(self._blocks) - self._cold_count) * self.block_size

    def cold_bytes(self) -> int:
        with self._lock:
            return self._cold_count * self.block_size

    def residency_counts(self) -> Dict[str, int]:
        with self._lock:
            cooling = len(self._cooling)
            cold = self._cold_count
            hot = len(self._blocks) - cold - cooling
        return {"hot": hot, "cooling": cooling, "cold": cold}

    def residency_by_context(self) -> Dict[int, Dict[str, int]]:
        """Per-context residency: ``{context_id: {"hot": n, "cold": n}}``.

        Cooling blocks count as hot (their bytes still are).
        """
        out: Dict[int, Dict[str, int]] = {}
        with self._lock:
            for block in self._blocks:
                entry = out.setdefault(block.context_id, {"hot": 0, "cold": 0})
                entry["cold" if block.residency == "cold" else "hot"] += 1
        return out

    def telemetry(self) -> Dict[str, object]:
        store = self.buffers.store
        with self._lock:
            cold = self._cold_count
            cooling = len(self._cooling)
            total = len(self._blocks)
        return {
            "budget_bytes": self.budget,
            "hot_blocks": total - cold - cooling,
            "cooling_blocks": cooling,
            "cold_blocks": cold,
            "hot_bytes": (total - cold) * self.block_size,
            "cold_bytes": cold * self.block_size,
            "tier_file_bytes": store.file_bytes if store is not None else 0,
            "tier_path": store.path if store is not None else None,
            "faults": self.faults,
            "evictions": self.evictions,
            "spills": self.spills,
            "touch_hits": self.touch_hits,
        }

    def close(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._cooling.clear()
            self._retired_regions.clear()
            self._cold_count = 0
