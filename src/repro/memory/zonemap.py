"""Per-block zone maps: min/max statistics for block-level scan pruning.

Blocks are the natural statistics granularity in an SMC: fixed-size,
single-type, slot-directory-enumerated — the same granularity the scan
protocol (section 5.2) and the parallel morsel dispatcher already work
at.  A :class:`ZoneMap` records, per numeric/date/scaled-decimal field,
the minimum and maximum *raw* value over the block's valid slots, plus a
staleness counter.  The query planner derives interval tests from
``Where``/``Between``/``InSet`` predicates and skips blocks whose zone
cannot contain a match, before any kernel touches the block's memory.

Maintenance is **lazy**: writers never compute statistics.  Every block
carries a ``zone_version`` counter that mutators bump — one integer
increment on ``commit_slot`` and on in-place writes to a zoned field —
so the allocation hot path (the paper's headline Add/Remove throughput)
pays no per-field work.  The first pruning scan to reach a block builds
its map with one vectorised min/max pass over the valid slots
(:func:`ensure`) and stamps it with the version it observed; a map whose
recorded version no longer matches the block's counter is simply
ignored and rebuilt.  The invariant is *conservatism*: a map is either
provably current or it is not consulted.

* **insert / update** — bump ``zone_version`` (after the slot/field
  bytes are visible, so a map built from a matching version has seen the
  write).  The stale map is rebuilt by the next pruning scan.
* **free** — bounds are left untouched and the version is *not* bumped;
  only ``stale`` grows.  A freed extremum therefore keeps the zone wide,
  which can cost pruning opportunities but can never skip a live match.
* **compaction** — relocation copies slot bytes without going through
  ``commit_slot``, but each copy's ``mark_valid`` still bumps the
  destination's version, so no destination map can go stale unnoticed;
  when the group finishes the compactor calls :func:`rebuild` to publish
  exact bounds over the surviving slots.  ``Block.reset`` clears zones
  when a block is recycled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.context import MemoryContext
    from repro.memory.manager import MemoryManager

#: Field classes whose raw representation is an ordered scalar the zone
#: map can bound.  (Char/VarString/Ref fields are excluded: strings are
#: compared padded and references are identities, not ordinals.)
_ELIGIBLE_FIELDS = frozenset(
    {
        "Int8Field",
        "Int16Field",
        "Int32Field",
        "Int64Field",
        "BoolField",
        "Float64Field",
        "DecimalField",
        "DateField",
    }
)

#: NumPy dtypes for strided row-block views, by field class (mirrors the
#: raw column dtypes of the columnar layout).
_VIEW_DTYPES = {
    "Int8Field": np.int8,
    "Int16Field": np.int16,
    "Int32Field": np.int32,
    "Int64Field": np.int64,
    "BoolField": np.int8,
    "Float64Field": np.float64,
    "DecimalField": np.int64,
    "DateField": np.int32,
}


#: Distinct-code threshold below which a block's zone map keeps the exact
#: set of dictionary codes present (a "small-domain code bitmap") instead
#: of only the min/max envelope.
CODE_SET_LIMIT = 64


def is_zoned(field) -> bool:
    """True if writes to *field* must invalidate block zone maps.

    Varstring fields count: with dictionary encoding their columns hold
    int codes that zone maps bound (and enumerate for small domains), so
    in-place updates have to bump ``zone_version`` like any zoned write.
    """
    name = type(field).__name__
    return name in _ELIGIBLE_FIELDS or name == "VarStringField"


class ZoneMap:
    """Min/max bounds per field (raw-value domain), valid at one version.

    For dictionary-coded string fields, ``codes[name]`` additionally holds
    the exact set of codes present in the block when the block's distinct
    count is small (at most :data:`CODE_SET_LIMIT`); otherwise the entry
    is absent and only the lo/hi envelope applies.

    ``charsets[name]`` holds the analogous small-domain value set for
    fixed-width ``CharField`` columns (raw padded bytes).  Char fields
    are *not* zoned for write invalidation (:func:`is_zoned` excludes
    them, so in-place Char updates do not bump ``zone_version``), which
    means a charset may silently go stale.  It is therefore **advisory
    only** — the planner folds charsets into domain-cardinality
    estimates, but pruning must never test them.
    """

    __slots__ = ("lo", "hi", "codes", "charsets", "stale", "version")

    def __init__(self, version: int) -> None:
        self.lo: Dict[str, float] = {}
        self.hi: Dict[str, float] = {}
        self.codes: Dict[str, frozenset] = {}
        self.charsets: Dict[str, frozenset] = {}
        self.stale = 0
        self.version = version

    def bounds(self, name: str) -> Optional[Tuple[float, float]]:
        lo = self.lo.get(name)
        if lo is None:
            return None
        return lo, self.hi[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(
            f"{n}=[{self.lo[n]}, {self.hi[n]}]" for n in sorted(self.lo)
        )
        return f"<ZoneMap v={self.version} stale={self.stale} {spans}>"


def zone_specs(
    context: "MemoryContext",
) -> List[Tuple[str, np.dtype, int, str]]:
    """Cached ``(name, dtype, offset, kind)`` list of zoned fields.

    The dtype/offset pair builds a strided view over a row block's slot
    bytes; columnar builds only need the names.  ``kind`` is ``"num"``
    for ordered scalars (min/max envelope), ``"code"`` for
    dictionary-coded varstring columns (envelope plus small-domain code
    sets) and ``"char"`` for fixed-width Char columns (small-domain
    value sets only — padded bytes have no useful numeric envelope).
    Contexts without a layout (e.g. the string store) have no zoned
    fields.
    """
    specs = getattr(context, "_zone_specs", None)
    if specs is None:
        layout = context.layout
        if layout is None:  # string store etc.: nothing to zone, no cache
            return []
        specs = [
            (f.name, _VIEW_DTYPES[type(f).__name__], f.offset, "num")
            for f in layout.fields
            if type(f).__name__ in _ELIGIBLE_FIELDS
        ]
        specs.extend(
            (f.name, np.dtype(f"S{f.width}"), f.offset, "char")
            for f in layout.fields
            if type(f).__name__ == "CharField"
        )
        if getattr(context, "strdict", None) is not None:
            specs.extend(
                (f.name, np.int64, f.offset, "code") for f in layout.var_fields
            )
        context._zone_specs = specs
    return specs


def note_free(block) -> None:
    """Record that a slot died: bounds stay (conservative), stale bumps."""
    zones = block.zones
    if zones is not None:
        zones.stale += 1


def _compute(context: "MemoryContext", block, version: int) -> Optional[ZoneMap]:
    """One vectorised min/max pass over *block*'s valid slots."""
    specs = zone_specs(context)
    if not specs:
        return None
    valid = block.valid_slots()
    if valid.size == 0:
        return None
    zones = ZoneMap(version)
    columns = getattr(block, "columns", None)
    mv = None if columns is not None else memoryview(block.buf)
    for name, dtype, off, kind in specs:
        if columns is not None:
            col = columns[name]
        else:
            col = np.ndarray(
                shape=(block.slot_count,),
                dtype=dtype,
                buffer=mv,
                offset=block.object_offset + off,
                strides=(block.slot_size,),
            )
        vals = col[valid]
        if kind == "code":
            # Row templates store NULL_ADDRESS (-1) for unset varstrings;
            # both -1 and 0 decode to "", so fold them before bounding.
            uniq = np.unique(np.maximum(vals, 0))
            zones.lo[name] = uniq[0].item()
            zones.hi[name] = uniq[-1].item()
            if uniq.size <= CODE_SET_LIMIT:
                zones.codes[name] = frozenset(int(c) for c in uniq)
            continue
        if kind == "char":
            # Advisory distinct set for the planner's cardinality
            # estimates; no lo/hi (padded bytes are not ordinals) and
            # never consulted by pruning (see class docstring).
            uniq = np.unique(vals)
            if uniq.size <= CODE_SET_LIMIT:
                zones.charsets[name] = frozenset(bytes(v) for v in uniq)
            continue
        zones.lo[name] = vals.min().item()
        zones.hi[name] = vals.max().item()
    return zones


def ensure(manager: "MemoryManager", block) -> Optional[ZoneMap]:
    """Return a provably current zone map for *block*, building it if needed.

    ``None`` means "no usable statistics, admit the block" — for empty
    blocks, unlayouted contexts, and builds raced by a writer.

    Concurrency: every slot publication goes through ``mark_valid`` —
    allocation commits and relocation copies alike — which bumps the
    version counter, so the discipline covers blocks still being filled.
    The version is captured *before* the slot read and re-checked before
    publishing, so a mutation racing with the build discards the result
    instead of installing bounds that miss it.  A mutation that lands
    after the re-check leaves a map whose recorded version trails
    ``block.zone_version`` — later calls see the mismatch and rebuild.
    Rows committed mid-scan may thus be missed by pruning, which matches
    bag-semantics scans (concurrent-insert visibility is undefined); rows
    committed before the scan started always bumped the counter first and
    are therefore covered.
    """
    version = block.zone_version
    zones = block.zones
    if zones is not None and zones.version == version:
        return zones
    zones = _compute(manager.context_by_id(block.context_id), block, version)
    if zones is None:
        return None
    if block.zone_version == version:
        block.zones = zones
        return zones
    return None  # a writer raced the build; admit conservatively


def rebuild(manager: "MemoryManager", block) -> None:
    """Recompute exact bounds from *block*'s valid slots (post-compaction)."""
    context = manager.context_by_id(block.context_id)
    block.zones = _compute(context, block, block.zone_version)
