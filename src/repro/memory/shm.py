"""Buffer allocation policies: process-heap vs named shared memory.

Every block in the system — row blocks, columnar blocks, string blocks —
owns exactly one flat buffer.  Historically that buffer was a
``bytearray``; this module abstracts the allocation behind a *buffer
policy* attached to the :class:`~repro.memory.addressing.AddressSpace`
so the same header/directory/back-pointer layout can live either on the
process heap (:class:`HeapBuffers`, the default) or in named
``multiprocessing.shared_memory`` segments (:class:`SharedBuffers`,
selected with ``MemoryManager(shm=True)`` / ``--shm``).

Shared segments are what make multi-process scatter-gather execution
possible: a worker process that inherited the address space via ``fork``
keeps reading the *live* bytes of every block through the inherited
mappings, and can attach blocks mapped after the fork by segment name
(see ``repro.query.procexec``).

Segment contract (documented in ``docs/parallel_execution.md``):

* names are ``smc_<pid>_<uid>_<serial>`` — the ``smc_`` prefix is the
  namespace the leak checks sweep (``/dev/shm/smc_*`` must be empty
  after every run), ``pid``/``uid`` isolate concurrent processes and
  ``serial`` is a per-space monotonic counter;
* the **creating** process owns the name: it unlinks on free/close;
  attachers only ever map and unmap;
* a segment's *name* may be unlinked while workers still scan it — a
  POSIX mapping survives unlink — but its *bytes* may only be reused
  for a new object two epochs after the free, and never while any
  registered cross-process reader section pins an older epoch
  (:meth:`~repro.memory.epoch.EpochManager.register_external`).

Python's ``multiprocessing.resource_tracker`` would unlink every
segment at interpreter exit (and spam warnings about ones we already
unlinked), so each create/attach is immediately unregistered from it:
the address space owns the lifecycle, with an ``atexit`` safety net for
crashed tests.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from typing import Dict, List, Optional

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing.shared_memory import SharedMemory
except ImportError:  # pragma: no cover - exotic builds
    SharedMemory = None  # type: ignore[assignment]
    _resource_tracker = None  # type: ignore[assignment]

#: Prefix shared by every segment this process creates; the CI leak check
#: asserts ``/dev/shm`` holds no file starting with this after a run.
SEGMENT_PREFIX = "smc_"


def _untrack(shm) -> None:
    """Remove an *attached* segment from the resource tracker's list.

    On Python < 3.13 (no ``SharedMemory(track=False)``) merely attaching
    a segment registers it with the tracker, which would then unlink the
    *owner's* segment when the attaching process exits.  Unregistering
    restores single-owner semantics.  Created segments are deliberately
    left tracked: ``unlink()`` pairs their unregister, and the tracker
    doubles as a crash net that keeps ``/dev/shm`` clean.
    """
    if _resource_tracker is None:
        return
    try:
        _resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def _close_or_abandon(shm) -> None:
    """Unmap *shm*, or abandon the mapping if views still export it.

    ``SharedMemory.close()`` raises :class:`BufferError` while NumPy
    views export the mapping's buffer.  At shutdown the right move is to
    abandon the mapping to the kernel (the segment is already unlinked;
    a dying process's mappings vanish anyway) and neuter the object so
    its ``__del__`` does not retry the close and spam
    "Exception ignored" tracebacks through interpreter teardown.
    """
    try:
        shm.close()
    except BufferError:
        try:
            shm._buf = None
            shm._mmap = None
        except AttributeError:  # pragma: no cover - stdlib internals moved
            pass


class HeapSegment:
    """A plain ``bytearray`` buffer (single-process policy)."""

    __slots__ = ("buf",)

    #: Heap buffers have no cross-process name.
    name: Optional[str] = None

    def __init__(self, size: int) -> None:
        self.buf = bytearray(size)

    def release(self) -> None:
        self.buf = None  # type: ignore[assignment]


class SharedSegment:
    """One named shared-memory segment and its local mapping."""

    __slots__ = ("name", "owner", "_shm", "buf", "_pool")

    def __init__(self, pool: "SharedBuffers", shm, owner: bool) -> None:
        self._pool = pool
        self._shm = shm
        self.name = shm.name
        self.owner = owner
        self.buf = shm.buf

    def release(self) -> None:
        self._pool._release(self)


class HeapBuffers:
    """Default buffer policy: private process-heap bytearrays."""

    #: Workers cannot attach heap buffers; the process executor refuses
    #: to start over a space using this policy.
    shared = False

    def create(self, size: int) -> HeapSegment:
        return HeapSegment(size)

    def attach(self, name: str):  # pragma: no cover - policy guard
        raise ValueError("heap buffers have no attachable segments")

    def close(self) -> None:
        pass


class SharedBuffers:
    """Named ``multiprocessing.shared_memory`` buffer policy.

    One instance backs one address space; it tracks every segment the
    *owning* process created so ``close()`` (and the atexit net) can
    guarantee zero orphan ``/dev/shm/smc_*`` files.  Attached (foreign)
    segments are tracked separately and only unmapped, never unlinked.
    """

    shared = True

    def __init__(self) -> None:
        if SharedMemory is None:  # pragma: no cover - exotic builds
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable; "
                "shared-memory block pools require it"
            )
        self._pid = os.getpid()
        self.prefix = f"{SEGMENT_PREFIX}{self._pid}_{uuid.uuid4().hex[:6]}"
        self._serial = 0
        self._lock = threading.Lock()
        #: name -> SharedSegment for segments this process owns.
        self._owned: Dict[str, SharedSegment] = {}
        #: name -> SharedSegment mapped from another space (worker side).
        self._attached: Dict[str, SharedSegment] = {}
        #: Segments unlinked but whose mapping still had exported NumPy
        #: views at free time; their ``close()`` is retried at shutdown.
        self._zombies: List[object] = []
        self._closed = False
        atexit.register(self._atexit)

    # -- allocation ----------------------------------------------------

    def create(self, size: int) -> SharedSegment:
        with self._lock:
            if self._closed:
                raise ValueError("shared buffer pool is closed")
            name = f"{self.prefix}_{self._serial}"
            self._serial += 1
        shm = SharedMemory(name=name, create=True, size=size)
        seg = SharedSegment(self, shm, owner=True)
        with self._lock:
            self._owned[name] = seg
        return seg

    def attach(self, name: str) -> SharedSegment:
        """Map an existing segment by name (worker attach protocol)."""
        with self._lock:
            seg = self._attached.get(name) or self._owned.get(name)
            if seg is not None:
                return seg
        shm = SharedMemory(name=name)
        _untrack(shm)
        seg = SharedSegment(self, shm, owner=False)
        with self._lock:
            self._attached[name] = seg
        return seg

    # -- release -------------------------------------------------------

    def _release(self, seg: SharedSegment) -> None:
        with self._lock:
            if seg.owner:
                self._owned.pop(seg.name, None)
            else:
                self._attached.pop(seg.name, None)
        seg.buf = None  # type: ignore[assignment]
        if seg.owner:
            # Unlink first: the name disappears from /dev/shm immediately
            # (leak-check visible state), while any still-attached worker
            # keeps its private mapping until it unmaps or exits.
            try:
                seg._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            seg._shm.close()
        except BufferError:
            # A stray NumPy view still exports the mapping; the segment
            # is already unlinked, so just park the mapping and retry the
            # munmap at close() — worst case the kernel reclaims it at
            # process exit.
            with self._lock:
                self._zombies.append(seg._shm)

    def close(self) -> None:
        """Unlink every owned segment and drop all mappings."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned = list(self._owned.values())
            self._owned.clear()
            attached = list(self._attached.values())
            self._attached.clear()
            zombies = self._zombies
            self._zombies = []
        for seg in owned:
            seg.buf = None  # type: ignore[assignment]
            try:
                seg._shm.unlink()
            except FileNotFoundError:
                pass
            _close_or_abandon(seg._shm)
        for seg in attached:
            seg.buf = None  # type: ignore[assignment]
            _close_or_abandon(seg._shm)
        for shm in zombies:
            _close_or_abandon(shm)

    def _atexit(self) -> None:
        # A forked worker inherits this registration; it must never
        # unlink the parent's segments (workers exit via os._exit, but
        # guard anyway for exotic exits).
        if os.getpid() != self._pid:  # pragma: no cover - fork guard
            return
        self.close()

    # -- introspection -------------------------------------------------

    @property
    def owned_count(self) -> int:
        with self._lock:
            return len(self._owned)

    def owned_names(self) -> List[str]:
        with self._lock:
            return sorted(self._owned)
