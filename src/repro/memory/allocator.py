"""Allocation policy helpers: reclamation queue and thread-local blocks.

Section 3.5 of the paper:

* all allocations are served from *thread-local* blocks, so only one
  thread allocates in a block at a time (removals may be concurrent);
* blocks whose limbo-slot fraction surpasses the *reclamation threshold*
  are appended to a per-type reclamation queue together with the earliest
  epoch at which they may be reclaimed (removal epoch + 2);
* when a thread needs a new block it first tries the reclamation queue,
  then falls back to fresh memory from the unmanaged heap;
* the allocation path attempts to advance the global epoch when the queue
  holds blocks that are not yet reclaimable.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block


class ReclamationQueue:
    """FIFO of blocks waiting to have their limbo slots recycled."""

    def __init__(self) -> None:
        self._queue: Deque["Block"] = deque()
        self._lock = threading.Lock()

    def push(self, block: "Block", ready_epoch: int) -> None:
        """Enqueue *block*; it may be handed out at *ready_epoch*.

        Blocks some thread currently allocates into are refused: queueing
        one would let :meth:`pop_ready` hand it to a *second* allocator,
        breaking the one-thread-per-block allocation rule.  The check
        happens under the queue lock, the same lock under which
        :meth:`pop_ready` marks a block active, so the decision is
        race-free; a refused block is re-examined when its owner retires
        it (``MemoryContext._retire_active_block``).
        """
        with self._lock:
            if block.queued_for_reclaim or block.is_active or block.compacting:
                return
            block.queued_for_reclaim = True
            block.reclaim_ready_epoch = ready_epoch
            self._queue.append(block)

    def pop_ready(self, global_epoch: int) -> Optional["Block"]:
        """Dequeue the head block if its ready epoch has passed."""
        with self._lock:
            if not self._queue:
                return None
            head = self._queue[0]
            if head.reclaim_ready_epoch > global_epoch:
                return None
            if _san.SANITIZER is not None:
                # Inside the queue lock: a concurrent re-push cannot change
                # the ready epoch between the check and the event.
                _san.SANITIZER.event(
                    "block.recycled",
                    lock_held=True,
                    block=head,
                    ready=head.reclaim_ready_epoch,
                    epoch=global_epoch,
                )
            self._queue.popleft()
            head.queued_for_reclaim = False
            # Adopted by the calling thread while still under the queue
            # lock, so a concurrent push cannot re-queue it from here on.
            head.is_active = True
            return head

    def claim_for_compaction(self, block: "Block") -> bool:
        """Atomically take *block* out of allocation circulation.

        A compaction source must be owned exclusively by the compactor: if
        it stayed in the reclamation queue, :meth:`pop_ready` could hand it
        to an allocator that fills its limbo slots with new objects — which
        the compactor, unaware, would later scrub away with the emptied
        source.  Under the queue lock the block is dequeued (if queued) and
        flagged ``compacting``, which :meth:`push` refuses from then on.
        Returns False — reject the block as a source — if some thread
        already adopted it for allocation.
        """
        with self._lock:
            if block.is_active:
                return False
            if block.queued_for_reclaim:
                try:
                    self._queue.remove(block)
                except ValueError:
                    return False
                block.queued_for_reclaim = False
            block.compacting = True
            return True

    def has_blocked_head(self, global_epoch: int) -> bool:
        """True if the queue is non-empty but its head is not ready yet.

        This is the condition under which the allocation function attempts
        to advance the global epoch (section 3.5).
        """
        with self._lock:
            return bool(self._queue) and self._queue[0].reclaim_ready_epoch > global_epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def drain(self) -> Deque["Block"]:
        with self._lock:
            drained = self._queue
            self._queue = deque()
            for block in drained:
                block.queued_for_reclaim = False
            return drained


class ThreadLocalBlocks:
    """Per-thread active allocation block for one memory context."""

    def __init__(self) -> None:
        self._by_thread: Dict[int, "Block"] = {}
        self._lock = threading.Lock()

    def get(self) -> Optional["Block"]:
        return self._by_thread.get(threading.get_ident())

    def set(self, block: Optional["Block"]) -> None:
        tid = threading.get_ident()
        with self._lock:
            if block is None:
                self._by_thread.pop(tid, None)
            else:
                self._by_thread[tid] = block

    def values(self):
        with self._lock:
            return list(self._by_thread.values())

    def clear(self) -> None:
        with self._lock:
            self._by_thread.clear()
