"""Allocation policy helpers: reclamation queue and thread-local blocks.

Section 3.5 of the paper:

* all allocations are served from *thread-local* blocks, so only one
  thread allocates in a block at a time (removals may be concurrent);
* blocks whose limbo-slot fraction surpasses the *reclamation threshold*
  are appended to a per-type reclamation queue together with the earliest
  epoch at which they may be reclaimed (removal epoch + 2);
* when a thread needs a new block it first tries the reclamation queue,
  then falls back to fresh memory from the unmanaged heap;
* the allocation path attempts to advance the global epoch when the queue
  holds blocks that are not yet reclaimable.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block


class ReclamationQueue:
    """FIFO of blocks waiting to have their limbo slots recycled."""

    def __init__(self) -> None:
        self._queue: Deque["Block"] = deque()
        self._lock = threading.Lock()

    def push(self, block: "Block", ready_epoch: int) -> None:
        """Enqueue *block*; it may be handed out at *ready_epoch*."""
        with self._lock:
            if block.queued_for_reclaim:
                return
            block.queued_for_reclaim = True
            block.reclaim_ready_epoch = ready_epoch
            self._queue.append(block)

    def pop_ready(self, global_epoch: int) -> Optional["Block"]:
        """Dequeue the head block if its ready epoch has passed."""
        with self._lock:
            if not self._queue:
                return None
            head = self._queue[0]
            if head.reclaim_ready_epoch > global_epoch:
                return None
            self._queue.popleft()
            head.queued_for_reclaim = False
            return head

    def has_blocked_head(self, global_epoch: int) -> bool:
        """True if the queue is non-empty but its head is not ready yet.

        This is the condition under which the allocation function attempts
        to advance the global epoch (section 3.5).
        """
        with self._lock:
            return bool(self._queue) and self._queue[0].reclaim_ready_epoch > global_epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def drain(self) -> Deque["Block"]:
        with self._lock:
            drained = self._queue
            self._queue = deque()
            for block in drained:
                block.queued_for_reclaim = False
            return drained


class ThreadLocalBlocks:
    """Per-thread active allocation block for one memory context."""

    def __init__(self) -> None:
        self._by_thread: Dict[int, "Block"] = {}
        self._lock = threading.Lock()

    def get(self) -> Optional["Block"]:
        return self._by_thread.get(threading.get_ident())

    def set(self, block: Optional["Block"]) -> None:
        tid = threading.get_ident()
        with self._lock:
            if block is None:
                self._by_thread.pop(tid, None)
            else:
                self._by_thread[tid] = block

    def values(self):
        with self._lock:
            return list(self._by_thread.values())

    def clear(self) -> None:
        with self._lock:
            self._by_thread.clear()
