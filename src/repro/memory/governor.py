"""Unified memory governor: one byte budget across the engine's caches.

The engine grows several independent caches — the service's prepared-plan
cache, each collection's string-dictionary match/decode caches, and the
write-ahead log's group-commit buffer.  Left alone, each imposes its own
ad-hoc cap (a 256-entry dictionary limit, an unbounded plan cache, a
fixed WAL buffer), so total cache memory is unowned: it depends on how
many collections exist and which queries ran.  The governor makes the
total explicit.  One byte budget is split across registered *tenants*
and periodically **rebalanced toward the tenants that are missing**:
a tenant whose miss counter grew since the last rebalance gets a larger
share of the pool, one that is all hits shrinks back toward its floor.

Tenant protocol (duck-typed callables supplied at registration):

``usage()``
    Current bytes held by the tenant's cache(s).
``counters()``
    ``(hits, misses)`` lifetime totals; the governor differentiates them
    between rebalances, so tenants just keep monotonic counters.
``set_budget(n)``
    Install a new byte ceiling; the tenant must evict down to it.

The governor never frees memory itself — it only moves ceilings; each
tenant owns its eviction policy (insertion-order for the plan cache and
match caches, flush-to-disk for the WAL buffer).  Shares are recomputed
proportionally to ``weight * (miss_delta + 1)`` on top of a per-tenant
floor, so a quiet tenant keeps a minimum working set and a thrashing one
can claim most of the pool without starving the others entirely.

Exposed as ``smc_governor_*`` gauges when a metrics registry is given.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

#: Fraction of the total budget reserved as equal per-tenant floors.
FLOOR_FRACTION = 0.25

#: Default operation cadence for :meth:`MemoryGovernor.maybe_rebalance`.
REBALANCE_EVERY = 64


class _Tenant:
    __slots__ = (
        "name",
        "usage",
        "counters",
        "set_budget",
        "weight",
        "share",
        "last_hits",
        "last_misses",
        "hit_delta",
        "miss_delta",
    )

    def __init__(self, name, usage, counters, set_budget, weight):
        self.name = name
        self.usage = usage
        self.counters = counters
        self.set_budget = set_budget
        self.weight = float(weight)
        self.share = 0
        self.last_hits = 0
        self.last_misses = 0
        self.hit_delta = 0
        self.miss_delta = 0


class MemoryGovernor:
    """Arbitrates one byte budget across registered cache tenants."""

    def __init__(
        self,
        budget_bytes: int,
        metrics=None,
        *,
        floor_fraction: float = FLOOR_FRACTION,
        rebalance_every: int = REBALANCE_EVERY,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("governor budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self._floor_fraction = float(floor_fraction)
        self._rebalance_every = max(1, int(rebalance_every))
        self._lock = threading.Lock()
        self._tenants: Dict[str, _Tenant] = {}
        self._ops = 0
        self.rebalances = 0
        if metrics is not None:
            metrics.gauge(
                "smc_governor_budget_bytes",
                "Total byte budget arbitrated by the memory governor",
                callback=lambda: float(self.budget_bytes),
            )
            metrics.gauge(
                "smc_governor_rebalances",
                "Budget rebalances performed by the memory governor",
                callback=lambda: float(self.rebalances),
            )
            share = metrics.gauge(
                "smc_governor_tenant_share_bytes",
                "Byte ceiling currently granted to each governor tenant",
            )
            share.attach_series(self._share_series)
            usage = metrics.gauge(
                "smc_governor_tenant_usage_bytes",
                "Bytes currently held by each governor tenant",
            )
            usage.attach_series(self._usage_series)

    # -- metric series ---------------------------------------------------

    def _share_series(self):
        with self._lock:
            return {
                (("tenant", t.name),): float(t.share)
                for t in self._tenants.values()
            }

    def _usage_series(self):
        with self._lock:
            tenants = list(self._tenants.values())
        return {(("tenant", t.name),): float(t.usage()) for t in tenants}

    # -- registration ----------------------------------------------------

    def register(
        self,
        name: str,
        *,
        usage: Callable[[], int],
        counters: Callable[[], Tuple[int, int]],
        set_budget: Callable[[int], None],
        weight: float = 1.0,
    ) -> None:
        """Add a tenant and re-split the budget over the new population."""
        tenant = _Tenant(name, usage, counters, set_budget, weight)
        hits, misses = counters()
        tenant.last_hits, tenant.last_misses = int(hits), int(misses)
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"governor tenant {name!r} already registered")
            self._tenants[name] = tenant
        self.rebalance()

    def unregister(self, name: str) -> None:
        """Remove a tenant and re-split the budget over the survivors.

        The departing tenant keeps whatever ceiling it last held (it is
        about to be torn down anyway); the survivors immediately reclaim
        its slice via the re-split, and every survivor's new share is at
        least its floor — the floors only grow when the population
        shrinks, so an unregister can never starve anyone.
        """
        with self._lock:
            if name not in self._tenants:
                raise KeyError(f"governor tenant {name!r} is not registered")
            del self._tenants[name]
        self.rebalance()

    # -- rebalancing -----------------------------------------------------

    def maybe_rebalance(self) -> bool:
        """Cheap per-operation hook; rebalances every N calls."""
        with self._lock:
            self._ops += 1
            due = self._ops % self._rebalance_every == 0
        if due:
            self.rebalance()
        return due

    def rebalance(self) -> None:
        """Recompute tenant ceilings from miss-counter growth.

        Every tenant keeps an equal floor (``floor_fraction`` of the
        budget split evenly); the remaining pool is divided proportional
        to ``weight * (miss_delta + 1)``.  The ``+1`` keeps an idle
        tenant's demand positive so a single miss cannot swing the whole
        pool, and makes the initial (no-history) split weight-equal.
        """
        with self._lock:
            tenants = list(self._tenants.values())
            if not tenants:
                return
            demands: List[float] = []
            for t in tenants:
                hits, misses = t.counters()
                t.hit_delta = max(0, int(hits) - t.last_hits)
                t.miss_delta = max(0, int(misses) - t.last_misses)
                t.last_hits, t.last_misses = int(hits), int(misses)
                demands.append(t.weight * (t.miss_delta + 1))
            floor = int(
                self._floor_fraction * self.budget_bytes / len(tenants)
            )
            pool = self.budget_bytes - floor * len(tenants)
            total_demand = sum(demands)
            for t, demand in zip(tenants, demands):
                t.share = floor + int(pool * demand / total_demand)
            self.rebalances += 1
        # Apply ceilings outside the governor lock: tenants evict under
        # their own locks and may call back into metrics.
        for t in tenants:
            t.set_budget(t.share)

    # -- introspection ---------------------------------------------------

    def usage_bytes(self) -> int:
        with self._lock:
            tenants = list(self._tenants.values())
        return sum(int(t.usage()) for t in tenants)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            tenants = list(self._tenants.values())
            out: Dict[str, object] = {
                "budget_bytes": self.budget_bytes,
                "rebalances": self.rebalances,
                "tenants": {},
            }
        total = 0
        for t in tenants:
            usage = int(t.usage())
            hits, misses = t.counters()
            total += usage
            out["tenants"][t.name] = {  # type: ignore[index]
                "share_bytes": t.share,
                "usage_bytes": usage,
                "hits": int(hits),
                "misses": int(misses),
            }
        out["usage_bytes"] = total
        return out
