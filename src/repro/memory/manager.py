"""The type-safe manual memory manager (paper section 3).

:class:`MemoryManager` owns the address space, the global indirection
table, the epoch machinery, the string heap and a pool of recycled blocks.
Collections create a private :class:`~repro.memory.context.MemoryContext`
per type and map their ``add``/``remove`` operations onto
:meth:`MemoryManager.allocate_object` / :meth:`MemoryManager.free_object`.

The manager also carries the global compaction state the dereference slow
path consults (``next_relocation_epoch`` / ``in_moving_phase``); the
compaction algorithm itself lives in ``repro.core.compaction``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    ConcurrencyProtocolError,
    IncarnationOverflowError,
    NullReferenceError,
)
from repro.memory.addressing import AddressSpace, NULL_ADDRESS
from repro.memory.block import Block
from repro.memory.context import MemoryContext
from repro.memory.epoch import EpochManager
from repro.memory.indirection import (
    FLAG_MASK,
    FROZEN,
    INC_MASK,
    LOCKED,
    IndirectionTable,
)
from repro.memory.reference import Ref
from repro.memory.stringheap import StringHeap
from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.compaction import Compactor

#: Default reclamation threshold: a block joins the reclamation queue once
#: more than this fraction of its slots are in limbo.  The paper's
#: sensitivity study (Figure 6) selects 5%.
DEFAULT_RECLAMATION_THRESHOLD = 0.05

#: Default data-block size: 1 MiB.  Large blocks amortise per-block costs
#: in block-at-a-time query execution; small setups (tests) may shrink it.
DEFAULT_MANAGER_BLOCK_SHIFT = 20


@dataclass
class MemoryStats:
    """Counters exposed for tests, benchmarks and diagnostics."""

    allocations: int = 0
    frees: int = 0
    limbo_reuses: int = 0
    blocks_allocated: int = 0
    blocks_recycled: int = 0
    blocks_pooled: int = 0
    epoch_advances: int = 0
    compactions: int = 0
    relocations: int = 0
    failed_relocations: int = 0
    helped_relocations: int = 0
    bailed_relocations: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


class MemoryManager:
    """Facade over the off-heap memory subsystem."""

    def __init__(
        self,
        block_shift: int = DEFAULT_MANAGER_BLOCK_SHIFT,
        reclamation_threshold: float = DEFAULT_RECLAMATION_THRESHOLD,
        direct_pointers: bool = False,
        string_dict: bool = True,
        shm: bool = False,
        memory_budget: Optional[int] = None,
    ) -> None:
        if not 0.0 <= reclamation_threshold <= 1.0:
            raise ValueError("reclamation_threshold must be within [0, 1]")
        #: Back block buffers with named shared-memory segments so worker
        #: processes can attach them (``repro.memory.shm``); required by
        #: the multi-process scatter-gather executor.
        self.shm = shm
        buffers = None
        if shm:
            from repro.memory.shm import SharedBuffers

            buffers = SharedBuffers()
        #: Hot-tier byte budget for the block pool.  When set, the block
        #: pool is paged: blocks exceeding the budget are demoted to a
        #: tier file and faulted back on access (``repro.memory.pager``).
        self.memory_budget = memory_budget
        if memory_budget is not None:
            from repro.memory.pager import TieredBuffers

            buffers = TieredBuffers(inner=buffers)
        self.space = AddressSpace(block_shift, buffers=buffers)
        self.epochs = EpochManager()
        #: The pager governing block residency, or None when unbudgeted.
        self.pager = None
        if memory_budget is not None:
            from repro.memory.pager import Pager

            self.pager = Pager(self, memory_budget)
        self.table = IndirectionTable()
        self.strings = StringHeap(self.space, self.epochs)
        #: Dictionary-encode varstring columns: collections intern distinct
        #: strings and store dense int codes instead of heap addresses.
        self.string_dict = string_dict
        self.reclamation_threshold = reclamation_threshold
        #: Direct-pointer mode (section 6): references *between* SMCs store
        #: raw addresses and incarnation checks use the slot header.
        self.direct_pointers = direct_pointers

        self._contexts: List[MemoryContext] = []
        self._type_ids: Dict[str, int] = {}
        self._pool: Dict[int, List[Block]] = {}
        self._pool_lock = threading.Lock()
        #: Freed indirection entries awaiting recycling: (ready_epoch, idx).
        #: Like limbo slots, entries only become reusable two epochs after
        #: the free, so a reader that passed the incarnation check inside a
        #: grace period can still read the entry's pointer safely.
        self._retired_entries: Deque[Tuple[int, int]] = deque()
        self._closed = False

        # --- global compaction state (sections 5, 6) ---
        self.compactor: Optional["Compactor"] = None
        self.next_relocation_epoch: Optional[int] = None
        self.in_moving_phase = False

        #: Process-pool executor for scatter-gather scans, if one was
        #: attached (``repro.query.procexec.ProcessScanPool``); consulted
        #: by the vectorised engine when routing parallel queries.
        self.exec_pool = None

        self.stats = MemoryStats()

        if _san.SANITIZER is not None:
            _san.SANITIZER.event("manager.created", manager=self)

    # ------------------------------------------------------------------
    # Type & context registry
    # ------------------------------------------------------------------

    def type_id_for(self, type_name: str) -> int:
        """Intern *type_name*, returning its stable numeric type id."""
        type_id = self._type_ids.get(type_name)
        if type_id is None:
            type_id = len(self._type_ids) + 1
            self._type_ids[type_name] = type_id
        return type_id

    def _register_context(self, context: MemoryContext) -> int:
        self._contexts.append(context)
        return len(self._contexts) - 1

    def create_context(self, slot_size: int, type_name: str) -> MemoryContext:
        """Create a private memory context for one collection."""
        self._ensure_open()
        return MemoryContext(
            self, self.type_id_for(type_name), slot_size, name=type_name
        )

    def context_by_id(self, context_id: int) -> MemoryContext:
        return self._contexts[context_id]

    # ------------------------------------------------------------------
    # Block pool ("unmanaged heap")
    # ------------------------------------------------------------------

    def _acquire_block(self, context: MemoryContext) -> Block:
        factory = getattr(context, "block_factory", None)
        if factory is not None:
            # Columnar (and other custom) contexts build their own blocks;
            # those are not pooled across types.
            self.stats.blocks_allocated += 1
            block = factory()
            if self.pager is not None:
                self.pager.track(block)
            return block
        with self._pool_lock:
            pool = self._pool.get(context.slot_size)
            block = pool.pop() if pool else None
        if block is not None:
            block.reset(context.type_id, context.context_id)
            self.stats.blocks_pooled += 1
            return block
        self.stats.blocks_allocated += 1
        block = Block(
            self.space, context.slot_size, context.type_id, context.context_id
        )
        if self.pager is not None:
            self.pager.track(block)
        return block

    def _release_block(self, block) -> None:
        """Return an emptied block to the pool for reuse by any type.

        Only row blocks are pooled; custom block kinds (columnar) release
        their address range immediately.  Under a memory budget nothing
        is pooled: a pooled block would hold hot bytes invisible to the
        pager's accounting, so paged managers release buffers (and the
        block's tier region, if any) outright.
        """
        if self.pager is not None:
            self.pager.untrack(block)
            block.release()
            return
        if not isinstance(block, Block):
            block.release()
            return
        with self._pool_lock:
            self._pool.setdefault(block.slot_size, []).append(block)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def allocate_object(
        self, context: MemoryContext, defer_publish: bool = False
    ) -> Tuple[Block, int, Ref]:
        """Allocate a slot in *context*; returns ``(block, slot, ref)``.

        The slot's data (beyond the slot header) is left untouched; the
        collection layer writes the object's fields through its layout.
        With ``defer_publish`` the slot stays unpublished (not VALID) and
        the caller must call ``context.commit_slot(block, slot)`` once the
        object is fully constructed — the paper's Add sequence: allocate,
        run the constructor, then add to the collection (section 2).
        """
        self._ensure_open()
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("alloc.start", manager=self, context=context.name)
        self._drain_retired_entries()
        block, slot = context.allocate_slot()
        address = block.slot_address(slot)
        entry = self.table.allocate(address)
        block.backptrs[slot] = entry
        if not defer_publish:
            context.commit_slot(block, slot)
        self.stats.allocations += 1
        inc = self.table.incarnation(entry)
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("alloc.publish", manager=self, entry=entry, slot=slot)
        return block, slot, Ref(self, entry, inc)

    def free_object(self, ref: Ref) -> None:
        """End the referenced object's lifetime.

        Increments both the indirection entry's and the slot header's
        incarnation counters (so indirect references *and* direct in-row
        pointers turn null), moves the slot to limbo and recycles the
        indirection entry.  Raises :class:`NullReferenceError` if the
        object was already removed.
        """
        self._ensure_open()
        table = self.table
        entry = ref.entry
        word = table.incarnation_word(entry)
        if (word & INC_MASK) != (ref.inc & INC_MASK):
            raise NullReferenceError(
                f"object behind entry {entry} was already removed"
            )
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("free.validated", manager=self, entry=entry)
        # Free must CAS (section 5.1 footnote): a scheduled relocation
        # carries FROZEN and a mover holds LOCKED while it copies, so
        # claiming the increment with a CAS on the flag-free word excludes
        # the relocation machinery — either the relocation is bailed out
        # here (and the compactor cancels the now-stale item under its
        # lock) or it completes first, in which case the address read
        # below already names the object's final location.
        while True:
            if word & FROZEN:
                if self.compactor is not None:
                    self.compactor.bail_out_relocation(entry)
                else:
                    table.clear_flags(entry, FROZEN)  # stale freeze bit
                word = table.incarnation_word(entry)
                continue
            if word & LOCKED:
                word = table.spin_while_locked(entry)
                continue
            counter = (word & INC_MASK) + 1
            if counter > INC_MASK:
                raise IncarnationOverflowError(f"entry {entry} overflowed")
            if table.cas_inc(entry, word, (word & FLAG_MASK) | counter):
                break
            word = table.incarnation_word(entry)
        address = table.address_of(entry)
        block: Block = self.space.block_at(address)  # type: ignore[assignment]
        slot = block.slot_of_address(address)
        if self.pager is not None:
            # The slot-header and directory writes below need a writable
            # buffer; promotion also cancels any in-flight cooling so the
            # demotion grace argument covers this free.
            self.pager.ensure_hot(block)
        # Slot-header incarnation protects direct pointers (section 6).
        block.slot_incs[slot] = (int(block.slot_incs[slot]) + 1) & 0xFFFFFFFF
        # The entry's pointer stays intact: a concurrent reader that passed
        # the incarnation check at the start of its grace period may still
        # follow it, and the slot itself is limbo-protected (section 3.4).
        # The entry becomes recyclable two epochs from now.
        self._retired_entries.append((self.epochs.global_epoch + 2, entry))

        context = self._contexts[block.context_id]
        context.free_slot(block, slot)
        self.stats.frees += 1
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("free.done", manager=self, entry=entry, slot=slot)

    def free_object_with_strings(self, collection, ref: Ref) -> None:
        """Free *ref* including its owned strings (bulk-removal helper)."""
        epochs = self.epochs
        epochs.enter_critical_section()
        try:
            address = ref.address()
            block = self.space.block_at(address)
            off = self.space.offset_of(address)
            collection.layout.release_owned(block.buf, off, self)
            self.free_object(ref)
        finally:
            epochs.exit_critical_section()

    def _drain_retired_entries(self) -> None:
        """Recycle indirection entries whose safety epoch has passed."""
        retired = self._retired_entries
        epoch = self.epochs.global_epoch
        while retired:
            try:
                ready, entry = retired[0]
            except IndexError:  # pragma: no cover - concurrent drain
                return
            if ready > epoch:
                return
            try:
                item = retired.popleft()
            except IndexError:  # pragma: no cover - concurrent drain
                return
            if item[0] > epoch:  # raced with another drainer; put it back
                retired.appendleft(item)
                return
            self.table.set_address(item[1], NULL_ADDRESS)
            self.table.release(item[1])

    # ------------------------------------------------------------------
    # Dereference slow path (frozen incarnations, section 5.1)
    # ------------------------------------------------------------------

    def _deref_frozen(self, entry: int, ref_inc: int) -> int:
        compactor = self.compactor
        if compactor is None:
            # No compactor is running: the flags are stale or we raced with
            # a free; wait for the lock to clear and re-validate.
            word = self.table.spin_while_locked(entry)
            if (word & INC_MASK) != (ref_inc & INC_MASK):
                raise NullReferenceError(f"entry {entry} became null")
            return self.table.address_of(entry)

        local_epoch = self.epochs.local_epoch()
        if (
            self.next_relocation_epoch is None
            or local_epoch != self.next_relocation_epoch
        ):
            # Case (a): freezing epoch — no relocation yet this epoch.
            return self.table.address_of(entry)
        if not self.in_moving_phase:
            # Case (b): waiting phase — bail the relocation out.
            compactor.bail_out_relocation(entry)
            return self.table.address_of(entry)
        # Case (c): moving phase — help relocate, then proceed.
        compactor.help_relocation(entry)
        return self.table.address_of(entry)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def critical_section(self):
        """Enter/exit a grace period (see :class:`EpochManager`)."""
        return self.epochs.critical_section()

    def advance_epoch(self) -> bool:
        advanced = self.epochs.try_advance()
        if advanced:
            self.stats.epoch_advances += 1
        return advanced

    def total_bytes(self) -> int:
        """Bytes currently mapped by all live blocks (data + strings)."""
        return self.space.total_bytes

    def describe(self) -> str:
        """Human-readable report of the memory system's current state."""
        lines = [
            f"MemoryManager: {self.space.live_block_count} live blocks, "
            f"{self.total_bytes() / 2**20:.1f} MiB mapped, "
            f"global epoch {self.epochs.global_epoch}",
            f"  indirection table: {self.table.size} entries "
            f"({self.table.free_count} free, {self.table.retired_count} retired)",
            f"  string heap: {self.strings.block_count} blocks, "
            f"{self.strings.bytes_in_use} bytes in use"
            + (
                f", {sum(d.live_count for d in dicts)} interned "
                f"across {len(dicts)} dictionaries"
                if (
                    dicts := {
                        id(sd): sd
                        for c in getattr(self, "collections", {}).values()
                        if (sd := getattr(c, "strdict", None)) is not None
                    }.values()
                )
                else ""
            ),
            *(
                [
                    f"  tier: {t['hot_blocks']} hot / {t['cooling_blocks']} "
                    f"cooling / {t['cold_blocks']} cold blocks, budget "
                    f"{t['budget_bytes'] / 2**20:.1f} MiB, "
                    f"{t['faults']} faults, {t['evictions']} evictions, "
                    f"{t['spills']} spills"
                ]
                if (t := self.pager.telemetry() if self.pager else None)
                else []
            ),
            f"  stats: {self.stats.allocations} allocs, {self.stats.frees} "
            f"frees, {self.stats.limbo_reuses} limbo reuses, "
            f"{self.stats.blocks_recycled} blocks recycled, "
            f"{self.stats.compactions} compactions "
            f"({self.stats.relocations} relocations)",
        ]
        for context in self._contexts:
            blocks = context.blocks()
            capacity = sum(b.slot_count for b in blocks)
            occupancy = context.live_count / capacity if capacity else 0.0
            limbo = sum(b.limbo_count for b in blocks)
            lines.append(
                f"  context {context.name}: {context.live_count} live / "
                f"{capacity} slots ({occupancy:.0%}) in {len(blocks)} "
                f"blocks, {limbo} limbo, queue {context.reclaim_queue_length}"
            )
        return "\n".join(lines)

    def telemetry(self) -> Dict[str, object]:
        """Structured snapshot of the memory system's state.

        This is the machine-readable twin of :meth:`describe`; the service
        metrics registry and ``repro info`` both read it, so the shape is
        part of the observable surface: top-level scalars plus a
        ``contexts`` list and a ``string_dicts`` map.
        """
        contexts = []
        residency = (
            self.pager.residency_by_context() if self.pager is not None else {}
        )
        for context in self._contexts:
            blocks = context.blocks()
            capacity = sum(b.slot_count for b in blocks)
            limbo = sum(b.limbo_count for b in blocks)
            entry = {
                "name": context.name,
                "live": context.live_count,
                "capacity": capacity,
                "blocks": len(blocks),
                "limbo": limbo,
                "limbo_fraction": (limbo / capacity) if capacity else 0.0,
                "reclaim_queue": context.reclaim_queue_length,
            }
            if self.pager is not None:
                tiers = residency.get(context.context_id, {"hot": 0, "cold": 0})
                entry["hot_blocks"] = tiers["hot"]
                entry["cold_blocks"] = tiers["cold"]
                entry["tier_bytes"] = tiers["cold"] * self.space.block_size
            contexts.append(entry)
        string_dicts = {}
        for name, coll in getattr(self, "collections", {}).items():
            strdict = getattr(coll, "strdict", None)
            if strdict is not None:
                string_dicts[name] = strdict.live_count
        stats = self.stats
        counters = {
            "allocations": stats.allocations,
            "frees": stats.frees,
            "limbo_reuses": stats.limbo_reuses,
            "blocks_allocated": stats.blocks_allocated,
            "blocks_recycled": stats.blocks_recycled,
            "blocks_pooled": stats.blocks_pooled,
            "epoch_advances": stats.epoch_advances,
            "compactions": stats.compactions,
            "relocations": stats.relocations,
            "failed_relocations": stats.failed_relocations,
            "helped_relocations": stats.helped_relocations,
            "bailed_relocations": stats.bailed_relocations,
        }
        counters.update(stats.extra)
        tier = self.pager.telemetry() if self.pager is not None else None
        return {
            "tier": tier,
            "global_epoch": self.epochs.global_epoch,
            "min_active_epoch": self.epochs.min_active_epoch(),
            "leases": self.epochs.lease_count(),
            "live_blocks": self.space.live_block_count,
            "mapped_bytes": self.total_bytes(),
            "table_entries": self.table.size,
            "table_free": self.table.free_count,
            "string_heap_blocks": self.strings.block_count,
            "string_heap_bytes": self.strings.bytes_in_use,
            "contexts": contexts,
            "string_dicts": string_dicts,
            "counters": counters,
        }

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConcurrencyProtocolError("memory manager is closed")

    def close(self) -> None:
        """Release every context, pooled block and string block."""
        if self._closed:
            return
        pool = self.exec_pool
        if pool is not None:
            self.exec_pool = None
            pool.shutdown()
        for context in self._contexts:
            context.close()
        with self._pool_lock:
            pooled = [blk for blks in self._pool.values() for blk in blks]
            self._pool.clear()
        for block in pooled:
            block.release()
        self.strings.close()
        if self.pager is not None:
            self.pager.close()
        # With shared buffers this unlinks every remaining segment (and
        # with tiered buffers, the tier file); zero orphan /dev/shm/smc_*
        # and smc_tier_* files is part of the contract.
        self.space.buffers.close()
        self._closed = True

    def __enter__(self) -> "MemoryManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
