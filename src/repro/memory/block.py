"""Data blocks: the unit of off-heap allocation.

A block (paper section 3.2, Figure 1) is a fixed-size, block-aligned chunk
of raw memory divided into four consecutive segments::

    +-------------+----------------------+----------------+---------------+
    | block header|   object store       | slot directory | back-pointers |
    +-------------+----------------------+----------------+---------------+

* The *block header* stores per-block (hence per-type) metadata once,
  instead of with every object — the paper's vtable-sharing trick.
* The *object store* holds ``slot_count`` fixed-size object slots.  The
  first 8 bytes of every slot are the slot header: a 32-bit incarnation
  word (used in direct-pointer mode, section 6) plus 4 reserved bytes.
* The *slot directory* has one 32-bit word per slot encoding its state
  (free / valid / limbo) and, for limbo slots, the removal epoch.
* The *back-pointers* segment stores, per slot, the index of the slot's
  indirection-table entry, so that queries scanning the block can build
  references to qualifying objects (section 4) and the compactor can find
  the entries to re-point (section 5).

The backing store is a ``bytearray``; the slot directory, back-pointers and
slot headers are exposed as writable NumPy views for fast scans.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterator, List, Optional

import numpy as np

from repro.memory import slots as slotcodec
from repro.memory.slots import FREE, LIMBO, VALID
from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.addressing import AddressSpace

#: Reserved bytes at the start of every block for the block header.
BLOCK_HEADER_SIZE = 64

#: Bytes at the start of every slot reserved for the slot header
#: (32-bit incarnation word + 32 reserved bits).
SLOT_HEADER_SIZE = 8

_HEADER_STRUCT = struct.Struct("<iiiii")  # type_id, context_id, slot_count, slot_size, kind

#: Block kinds (stored in the header for debugging/validation).
KIND_ROW = 0
KIND_STRING = 1
KIND_COLUMNAR = 2


class Block:
    """A single-type data block in the off-heap address space."""

    __slots__ = (
        "space",
        "block_id",
        "base_address",
        "segment",
        "buf",
        "type_id",
        "context_id",
        "slot_size",
        "slot_count",
        "object_offset",
        "directory",
        "backptrs",
        "slot_incs",
        "valid_count",
        "limbo_count",
        "alloc_cursor",
        "is_active",
        "compacting",
        "queued_for_reclaim",
        "reclaim_ready_epoch",
        "relocation_list",
        "compaction_group",
        "zones",
        "zone_version",
        "residency",
        "pin_count",
        "tier_dirty",
        "tier_offset",
        "read_clock",
        "cool_epoch",
        "_dir_offset",
        "_bp_offset",
    )

    def __init__(
        self,
        space: "AddressSpace",
        slot_size: int,
        type_id: int,
        context_id: int,
    ) -> None:
        if slot_size % 8 != 0:
            raise ValueError(f"slot_size must be 8-byte aligned, got {slot_size}")
        if slot_size < SLOT_HEADER_SIZE + 8:
            raise ValueError(f"slot_size {slot_size} too small for slot header")
        usable = space.block_size - BLOCK_HEADER_SIZE
        # Per slot we need the slot itself + 4 directory bytes + 8 back-pointer bytes.
        slot_count = usable // (slot_size + 4 + 8)
        if slot_count < 1:
            raise ValueError(
                f"slot_size {slot_size} does not fit in a "
                f"{space.block_size}-byte block"
            )

        self.space = space
        self.block_id = space.register(self)
        self.base_address = space.address_of(self.block_id)
        # The buffer comes from the space's allocation policy: a process
        # heap bytearray by default, or a named shared-memory segment that
        # worker processes can attach by name (repro.memory.shm).
        self.segment = space.buffers.create(space.block_size)
        self.buf = self.segment.buf
        self.type_id = type_id
        self.context_id = context_id
        self.slot_size = slot_size
        self.slot_count = slot_count
        self.object_offset = BLOCK_HEADER_SIZE

        dir_offset = BLOCK_HEADER_SIZE + slot_count * slot_size
        bp_offset = dir_offset + slot_count * 4
        # Back-pointers must be 8-byte aligned within the buffer.
        if bp_offset % 8 != 0:
            bp_offset += 8 - (bp_offset % 8)
            if bp_offset + slot_count * 8 > space.block_size:
                # Sacrifice one slot to make room; recompute segments.
                slot_count -= 1
                self.slot_count = slot_count
                dir_offset = BLOCK_HEADER_SIZE + slot_count * slot_size
                bp_offset = dir_offset + slot_count * 4
                if bp_offset % 8 != 0:
                    bp_offset += 8 - (bp_offset % 8)

        _HEADER_STRUCT.pack_into(
            self.buf, 0, type_id, context_id, slot_count, slot_size, KIND_ROW
        )

        self._dir_offset = dir_offset
        self._bp_offset = bp_offset
        self._bind_views()
        self.backptrs.fill(-1)

        self.valid_count = 0
        self.limbo_count = 0
        self.alloc_cursor = 0
        #: True while some thread allocates in this block (thread-local
        #: active block) or the compactor fills it as a relocation
        #: destination.  Active blocks must never enter the reclamation
        #: queue: handing one to a second allocator would let two threads
        #: claim slots in the same block (section 3.5's one-allocator rule).
        self.is_active = False
        self.queued_for_reclaim = False
        self.reclaim_ready_epoch = -1
        #: True while this block is claimed as a compaction source; the
        #: reclamation queue refuses such blocks (see
        #: ``ReclamationQueue.claim_for_compaction``).
        self.compacting = False
        # Compaction bookkeeping (section 5): populated by the compactor.
        self.relocation_list: Optional[list] = None
        self.compaction_group: Optional[object] = None
        #: Per-block min/max statistics (``repro.memory.zonemap.ZoneMap``),
        #: built lazily by the first pruning scan and validated against
        #: ``zone_version``, which mutators bump on every slot publication
        #: and zoned-field update.
        self.zones = None
        self.zone_version = 0
        # --- memory tiering (repro.memory.pager) ---
        #: ``"hot"`` (writable buffer from the space's allocation policy),
        #: ``"cooling"`` (chosen for demotion, grace period running) or
        #: ``"cold"`` (read-only mmap of a tier-file region).  Every write
        #: path promotes through ``Pager.ensure_hot`` first; a stray write
        #: to a cold block raises (the views are read-only) instead of
        #: corrupting the spilled image.
        self.residency = "hot"
        #: Explicit pin count (scan admission / tests); pinned blocks are
        #: never chosen for demotion, independent of the epoch argument.
        self.pin_count = 0
        #: True when the hot bytes may differ from the spilled tier image.
        self.tier_dirty = False
        #: Byte offset of this block's region in the tier file (-1: none).
        self.tier_offset = -1
        #: Clock-replacement reference counter, bumped on scan admission.
        self.read_clock = 0
        #: Epoch at which cooling started (-1 while not cooling).
        self.cool_epoch = -1

    def _bind_views(self) -> None:
        """(Re)build the NumPy views over the current ``self.buf``.

        Called at construction and by the pager whenever the backing
        buffer is swapped (demotion to a read-only tier mapping, or
        promotion back into a writable segment).  Performs no writes, so
        it is safe over a read-only cold mapping — the resulting arrays
        simply come out non-writable.
        """
        mv = memoryview(self.buf)
        self.directory = np.frombuffer(
            mv, dtype=np.uint32, count=self.slot_count, offset=self._dir_offset
        )
        self.backptrs = np.frombuffer(
            mv, dtype=np.int64, count=self.slot_count, offset=self._bp_offset
        )
        # Strided view over the first 4 bytes of every slot: the incarnation
        # word of the slot header (authoritative in direct-pointer mode).
        self.slot_incs = np.ndarray(
            shape=(self.slot_count,),
            dtype=np.uint32,
            buffer=mv,
            offset=self.object_offset,
            strides=(self.slot_size,),
        )

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------

    def slot_address(self, slot: int) -> int:
        """Address of *slot*'s data (start of the slot, i.e. its header)."""
        return self.base_address + self.object_offset + slot * self.slot_size

    def slot_of_address(self, address: int) -> int:
        """Inverse of :meth:`slot_address` for addresses inside this block."""
        return (self.space.offset_of(address) - self.object_offset) // self.slot_size

    # ------------------------------------------------------------------
    # Slot directory transitions
    # ------------------------------------------------------------------

    def state_of(self, slot: int) -> int:
        return int(self.directory[slot]) & slotcodec.STATE_MASK

    def mark_valid(self, slot: int) -> None:
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "slot.valid", block=self, slot=slot, word=int(self.directory[slot])
            )
        prev = int(self.directory[slot]) & slotcodec.STATE_MASK
        self.directory[slot] = slotcodec.pack(VALID)
        if prev == LIMBO:
            self.limbo_count -= 1
        self.valid_count += 1
        # Invalidate the zone map (after the directory write, so a map
        # built under the new version has seen this slot).  Publication
        # through mark_valid — allocation commits AND relocation copies —
        # is exactly the set of writes zone maps must observe.
        self.zone_version += 1

    def mark_limbo(self, slot: int, epoch: int) -> None:
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "slot.limbo",
                block=self,
                slot=slot,
                word=int(self.directory[slot]),
                epoch=epoch,
            )
        if (int(self.directory[slot]) & slotcodec.STATE_MASK) != VALID:
            raise ValueError(f"slot {slot} is not valid; cannot move to limbo")
        self.directory[slot] = slotcodec.pack(LIMBO, epoch)
        self.valid_count -= 1
        self.limbo_count += 1

    def removal_epoch_of(self, slot: int) -> int:
        return slotcodec.epoch_of(int(self.directory[slot]))

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def valid_slots(self) -> np.ndarray:
        """Indices of all valid slots (vectorised slot-directory scan)."""
        states = self.directory & slotcodec.STATE_MASK
        return np.nonzero(states == VALID)[0]

    def iter_valid_slots(self) -> Iterator[int]:
        for slot in self.valid_slots():
            yield int(slot)

    def find_allocatable(self, start: int, global_epoch: int) -> Optional[int]:
        """Scan the directory from *start* for a FREE or reclaimable LIMBO slot.

        Mirrors the paper's allocation scan (section 3.5): starting at the
        cursor of the last allocation, walk forward until a usable slot is
        found; return ``None`` when the end of the block is reached.
        """
        directory = self.directory
        for slot in range(start, self.slot_count):
            word = int(directory[slot])
            state = word & slotcodec.STATE_MASK
            if state == FREE:
                return slot
            if state == LIMBO and global_epoch >= slotcodec.epoch_of(word) + 2:
                return slot
        return None

    # ------------------------------------------------------------------
    # Occupancy / reclamation policy inputs
    # ------------------------------------------------------------------

    @property
    def limbo_fraction(self) -> float:
        return self.limbo_count / self.slot_count

    @property
    def occupancy(self) -> float:
        """Fraction of slots holding live objects."""
        return self.valid_count / self.slot_count

    @property
    def is_exhausted(self) -> bool:
        """True once the allocation cursor has passed the last slot."""
        return self.alloc_cursor >= self.slot_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def release(self) -> None:
        """Return this block's address range and buffer to the space.

        The NumPy views must be dropped *before* the segment is released:
        a shared-memory mapping cannot be closed while views still export
        its buffer.
        """
        self.space.unregister(self.block_id)
        self.directory = None
        self.backptrs = None
        self.slot_incs = None
        self.buf = None
        self.segment.release()

    def reset(self, type_id: int, context_id: int) -> None:
        """Reinitialise the block for reuse by a (possibly different) type.

        Single-type blocks may be recycled for different types once empty
        (section 3.2) because incarnation state lives in the indirection
        table; we clear all segments.
        """
        if self.valid_count:
            raise ValueError("cannot reset a block with live objects")
        if self.residency != "hot":
            raise ValueError("cannot reset a non-resident block")
        self.type_id = type_id
        self.context_id = context_id
        _HEADER_STRUCT.pack_into(
            self.buf, 0, type_id, context_id, self.slot_count, self.slot_size, KIND_ROW
        )
        self.directory.fill(0)
        self.backptrs.fill(-1)
        self.slot_incs.fill(0)
        self.valid_count = 0
        self.limbo_count = 0
        self.alloc_cursor = 0
        self.is_active = False
        self.compacting = False
        self.queued_for_reclaim = False
        self.reclaim_ready_epoch = -1
        self.relocation_list = None
        self.compaction_group = None
        self.zones = None
        self.zone_version = 0
        self.pin_count = 0
        self.tier_dirty = False
        self.tier_offset = -1
        self.read_clock = 0
        self.cool_epoch = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Block id={self.block_id} type={self.type_id} "
            f"valid={self.valid_count} limbo={self.limbo_count} "
            f"slots={self.slot_count}x{self.slot_size}B>"
        )
