"""Memory contexts: per-collection private block sets (paper section 3.3).

A memory context groups the blocks that serve one object type for one
collection, so that objects of the same collection end up physically
adjacent — the spatial-locality property that makes enumeration fast
(section 4).  The context also owns the allocation machinery for its
blocks: per-thread active blocks and the reclamation queue of blocks with
recyclable limbo slots.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.memory import zonemap
from repro.memory.allocator import ReclamationQueue, ThreadLocalBlocks
from repro.memory.block import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.manager import MemoryManager


class MemoryContext:
    """Private set of single-type blocks for one collection."""

    def __init__(
        self,
        manager: "MemoryManager",
        type_id: int,
        slot_size: int,
        name: str = "",
    ) -> None:
        self.manager = manager
        self.type_id = type_id
        self.slot_size = slot_size
        self.name = name or f"ctx-{type_id}"
        self.context_id = manager._register_context(self)
        self._blocks: List[Block] = []
        self._blocks_lock = threading.Lock()
        self._tl_blocks = ThreadLocalBlocks()
        self._reclaim = ReclamationQueue()
        #: Optional custom block constructor (columnar collections).
        self.block_factory = None
        #: Slot layout of the hosted type (set by the owning collection);
        #: used by the vectorised query engine to build field views.
        self.layout = None
        #: Varstring fields stored as dictionary codes (set by columnar
        #: collections); part of the deterministic column-offset recipe a
        #: worker process needs to attach this context's blocks.
        self.dict_fields = frozenset()
        #: Blocks whose owner thread abandoned them (exhausted); candidates
        #: for the reclamation queue as their limbo fraction grows.
        self.live_count = 0

    # ------------------------------------------------------------------
    # Block set
    # ------------------------------------------------------------------

    def blocks(self) -> List[Block]:
        """Snapshot of this context's blocks in allocation order.

        Queries enumerate this list; bag semantics let them visit objects
        in memory order (section 4).
        """
        with self._blocks_lock:
            return list(self._blocks)

    def block_count(self) -> int:
        with self._blocks_lock:
            return len(self._blocks)

    def _attach_block(self, block: Block) -> None:
        with self._blocks_lock:
            self._blocks.append(block)

    def detach_block(self, block: Block) -> None:
        """Remove an emptied block from the context (compaction, section 5.2)."""
        with self._blocks_lock:
            self._blocks.remove(block)

    # ------------------------------------------------------------------
    # Allocation (section 3.5)
    # ------------------------------------------------------------------

    def allocate_slot(self) -> Tuple[Block, int]:
        """Claim a slot for a new object; returns ``(block, slot)``.

        The slot is *claimed* (the cursor moves past it) but not yet
        published: its directory entry stays FREE/LIMBO until
        :meth:`commit_slot` flips it to VALID, so concurrent scans never
        observe a slot whose back-pointer and field values are still
        being written (the paper's Add publishes the object last).
        """
        manager = self.manager
        epochs = manager.epochs
        block = self._tl_blocks.get()
        while True:
            if block is not None:
                slot = block.find_allocatable(block.alloc_cursor, epochs.global_epoch)
                if slot is not None:
                    block.alloc_cursor = slot + 1
                    return block, slot
                # Current thread-local block is exhausted; abandon it.
                block.alloc_cursor = block.slot_count
                self._retire_active_block(block)
                self._tl_blocks.set(None)
                block = None

            # The paper advances the global epoch from the allocation path
            # when queued blocks are not reclaimable yet; keep advancing
            # until the head becomes ready or a critical section blocks us.
            while self._reclaim.has_blocked_head(epochs.global_epoch):
                if not epochs.try_advance():
                    break
                manager.stats.epoch_advances += 1

            block = self._reclaim.pop_ready(epochs.global_epoch)
            if block is not None:
                block.alloc_cursor = 0
                # An adopted block is about to take in-place writes that
                # bypass the per-object write hooks; if it was ever
                # spilled, its tier image goes stale now.  (The frees
                # that queued it already marked it dirty — this is the
                # defensive restatement of that invariant.)
                if block.tier_offset >= 0:
                    block.tier_dirty = True
                manager.stats.blocks_recycled += 1
            else:
                block = manager._acquire_block(self)
                block.is_active = True
                self._attach_block(block)
            self._tl_blocks.set(block)

    def commit_slot(self, block: Block, slot: int) -> None:
        """Publish a claimed slot: directory -> VALID, counters updated."""
        if block.state_of(slot) != 0:  # LIMBO slot recycled in place
            self.manager.stats.limbo_reuses += 1
        block.mark_valid(slot)  # also invalidates the block's zone map
        self.live_count += 1

    def _retire_active_block(self, block: Block) -> None:
        """An exhausted thread-local block becomes queue-eligible again."""
        block.is_active = False
        if block.limbo_fraction > self.manager.reclamation_threshold:
            self._reclaim.push(block, self.manager.epochs.global_epoch + 2)

    # ------------------------------------------------------------------
    # Removal (section 3.5)
    # ------------------------------------------------------------------

    def free_slot(self, block: Block, slot: int) -> None:
        """Move ``(block, slot)`` to limbo stamped with the current epoch."""
        epoch = self.manager.epochs.global_epoch
        block.mark_limbo(slot, epoch)
        self.live_count -= 1
        # Zone bounds stay (widen-only invariant); the map just goes stale.
        zonemap.note_free(block)
        # Blocks actively used for allocation — by ANY thread, not just the
        # remover — are re-examined when retired; all other blocks join the
        # queue as soon as they cross the reclamation threshold.  (The
        # ``is_active`` read here may be stale; ``push`` re-checks it under
        # the queue lock, so an active block can never actually be queued.)
        if not block.is_active:
            if (
                not block.queued_for_reclaim
                and block.limbo_fraction > self.manager.reclamation_threshold
            ):
                self._reclaim.push(block, epoch + 2)

    # ------------------------------------------------------------------
    # Compaction cooperation (section 5)
    # ------------------------------------------------------------------

    def claim_for_compaction(self, block: Block) -> bool:
        """Give the compactor exclusive ownership of *block*'s slots.

        Dequeues the block from the reclamation queue (if queued) and bars
        it from re-entering, so no allocator can start filling a block
        whose survivors are being relocated.  False if an allocator beat
        the compactor to it.
        """
        return self._reclaim.claim_for_compaction(block)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_valid(self) -> Iterator[Tuple[Block, int]]:
        """Yield ``(block, slot)`` for every live object, memory order."""
        for block in self.blocks():
            for slot in block.iter_valid_slots():
                yield block, slot

    @property
    def reclaim_queue_length(self) -> int:
        return len(self._reclaim)

    def total_bytes(self) -> int:
        return self.block_count() * self.manager.space.block_size

    def compactable_blocks(self, occupancy_threshold: float) -> List[Block]:
        """Blocks whose occupancy fell below the compaction threshold.

        Thread-local active blocks are excluded: they are being filled.
        """
        active = set(id(b) for b in self._tl_blocks.values())
        return [
            block
            for block in self.blocks()
            if id(block) not in active and block.occupancy < occupancy_threshold
        ]

    def close(self) -> None:
        """Tear the context down, ending the lifetime of all its objects.

        Blocks are scrubbed before returning to the pool; references into
        a closed context are not protected (closing a collection ends its
        objects' lifetimes wholesale).
        """
        with self._blocks_lock:
            blocks = list(self._blocks)
            self._blocks.clear()
        for block in blocks:
            if block.residency == "hot":
                block.directory.fill(0)
            # Cold blocks skip the scrub: their directory view is a
            # read-only tier mapping, and a paged manager releases the
            # block (and its tier region) outright instead of pooling it.
            block.valid_count = 0
            block.limbo_count = 0
            self.manager._release_block(block)
        self._tl_blocks.clear()
        self._reclaim.drain()
        self.live_count = 0
