"""Slot-directory entry codec.

Each data block keeps a *slot directory*: one 32-bit word per slot
(section 3.2 of the paper).  A slot is in one of three states:

``FREE``
    never used since the block was (re)initialised,
``VALID``
    currently holds live object data,
``LIMBO``
    the object was removed but the slot cannot be reused yet because
    concurrent threads may still be reading it (epoch-based reclamation,
    section 3.4/3.5).

For limbo slots the directory word also records the global epoch at which
the object was removed; the slot becomes reclaimable two epochs later.

Word layout (32 bits)::

    bits 0..1   state (0 = FREE, 1 = VALID, 2 = LIMBO)
    bits 2..31  removal epoch (limbo slots only), modulo 2**30

Epochs are monotonically increasing Python ints; 30 bits of epoch are ample
for any realistic run (the paper advances epochs lazily, on allocation).
"""

from __future__ import annotations

FREE = 0
VALID = 1
LIMBO = 2

STATE_BITS = 2
STATE_MASK = (1 << STATE_BITS) - 1
EPOCH_MASK = (1 << 30) - 1

STATE_NAMES = {FREE: "free", VALID: "valid", LIMBO: "limbo"}


def pack(state: int, epoch: int = 0) -> int:
    """Pack a slot state and removal epoch into a directory word."""
    return ((epoch & EPOCH_MASK) << STATE_BITS) | (state & STATE_MASK)


def state_of(word: int) -> int:
    """Extract the slot state from a directory word."""
    return word & STATE_MASK


def epoch_of(word: int) -> int:
    """Extract the removal epoch from a (limbo) directory word."""
    return (word >> STATE_BITS) & EPOCH_MASK


def is_reclaimable(word: int, global_epoch: int) -> bool:
    """True if a limbo directory word may be reused at *global_epoch*.

    The paper's rule (section 3.4): memory freed in epoch ``e`` can safely
    be reclaimed in epoch ``e + 2`` because no thread can still be inside a
    critical section begun in epoch ``e``.
    """
    if (word & STATE_MASK) != LIMBO:
        return False
    return global_epoch >= epoch_of(word) + 2
