"""Type-safe manual memory management (paper section 3).

Subpackage layout:

- :mod:`repro.memory.addressing` — block-aligned integer address space
- :mod:`repro.memory.block` — data blocks (object store, slot directory,
  back-pointers)
- :mod:`repro.memory.slots` — slot-directory word codec
- :mod:`repro.memory.indirection` — global indirection table + flag bits
- :mod:`repro.memory.reference` — references and the dereference protocol
- :mod:`repro.memory.epoch` — epoch-based reclamation
- :mod:`repro.memory.context` — per-collection memory contexts
- :mod:`repro.memory.allocator` — reclamation queue / thread-local blocks
- :mod:`repro.memory.stringheap` — object-owned variable-length strings
- :mod:`repro.memory.manager` — the façade collections talk to
"""

from repro.memory.addressing import AddressSpace, NULL_ADDRESS
from repro.memory.block import Block
from repro.memory.context import MemoryContext
from repro.memory.epoch import EpochManager
from repro.memory.indirection import IndirectionTable
from repro.memory.manager import MemoryManager, MemoryStats
from repro.memory.reference import Ref

__all__ = [
    "AddressSpace",
    "NULL_ADDRESS",
    "Block",
    "MemoryContext",
    "EpochManager",
    "IndirectionTable",
    "MemoryManager",
    "MemoryStats",
    "Ref",
]
