"""References to self-managed objects.

A reference (``ObjRef`` in the paper, Figure 1) stores a pointer to the
object's indirection-table entry together with the incarnation number the
object had when the reference was created.  Dereferencing verifies that the
incarnation still matches; if the object has since been removed from its
collection the check fails and the access raises
:class:`~repro.errors.NullReferenceError` — the paper's semantics of all
references to a removed object implicitly becoming null (section 2).

The dereference logic mirrors the paper's ``dereference_object`` pseudocode
(section 5.1), including the three frozen-incarnation cases that arise
during compaction:

a. the thread is still in the *freezing* epoch — no relocation can happen
   yet, the current address is safe;
b. the *waiting* phase of the relocation epoch — the reader bails out the
   pending relocation and uses the current address;
c. the *moving* phase — the reader helps perform the relocation and uses
   the new address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NullReferenceError
from repro.memory.indirection import FLAG_MASK, INC_MASK

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.manager import MemoryManager


class Ref:
    """A type-safe reference to a self-managed object."""

    __slots__ = ("manager", "entry", "inc")

    def __init__(self, manager: "MemoryManager", entry: int, inc: int) -> None:
        self.manager = manager
        self.entry = entry
        self.inc = inc

    # ------------------------------------------------------------------
    # Dereferencing
    # ------------------------------------------------------------------

    def address(self) -> int:
        """Resolve to the object's current memory address.

        Must be called inside a critical section for the address to remain
        valid while it is being used (section 3.4); the collection layer
        and the generated query code take care of that.
        """
        manager = self.manager
        table = manager.table
        word = table.incarnation_word(self.entry)
        if word == self.inc:
            # Common path: no flag bits set and incarnations match.
            address = table.address_of(self.entry)
            if address >= 0:
                return address
            # The entry was recycled between the check and the pointer
            # read — only possible outside a critical section.
            raise NullReferenceError(
                f"entry {self.entry} was recycled (access outside a "
                f"critical section?)"
            )
        if (word & ~FLAG_MASK) == self.inc & INC_MASK:
            # Flags are set but the counter still matches: the object is
            # frozen (and possibly locked) for relocation.
            return manager._deref_frozen(self.entry, self.inc)
        raise NullReferenceError(
            f"reference to entry {self.entry} (incarnation {self.inc}) is null"
        )

    def try_address(self) -> Optional[int]:
        """Like :meth:`address` but returns ``None`` instead of raising."""
        try:
            return self.address()
        except NullReferenceError:
            return None

    @property
    def is_alive(self) -> bool:
        """True if the referenced object has not been removed.

        Only a snapshot: without an enclosing critical section the object
        may be removed immediately after the check.
        """
        word = self.manager.table.incarnation_word(self.entry)
        return (word & INC_MASK) == (self.inc & INC_MASK)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ref):
            return NotImplemented
        return (
            self.entry == other.entry
            and self.inc == other.inc
            and self.manager is other.manager
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.entry, self.inc))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = "alive" if self.is_alive else "null"
        return f"<Ref entry={self.entry} inc={self.inc} {alive}>"
