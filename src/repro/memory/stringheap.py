"""Object-owned variable-length string storage.

Tabular objects have a fixed size and layout, so variable-length strings
cannot live inside object slots.  The paper (section 2) makes strings part
of the object: their lifetime matches the object's, and the collection
reclaims their memory together with the object's memory slot.

The string heap allocates string records from dedicated string blocks in
the same block-aligned address space as data blocks.  A record is::

    uint32 length | utf-8 bytes ...

rounded up to a power-of-two size class.  Freed records go to per-class
free lists and are recycled immediately — unlike object slots, string
records are only reachable through their owning object, whose own slot is
protected by epoch-based reclamation, so a string freed together with its
object cannot be re-read by a racing thread that passed the object's
incarnation check inside the same grace period *before* the free happened
and re-reads after; we conservatively defer string reuse with the same
two-epoch rule as object slots.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Tuple

from repro.memory.addressing import NULL_ADDRESS

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.addressing import AddressSpace
    from repro.memory.epoch import EpochManager

_LEN = struct.Struct("<I")

_MIN_CLASS = 16


class StringBlock:
    """A bump-allocated block holding string records."""

    __slots__ = ("space", "block_id", "base_address", "buf", "bump")

    def __init__(self, space: "AddressSpace") -> None:
        self.space = space
        self.block_id = space.register(self)
        self.base_address = space.address_of(self.block_id)
        self.buf = bytearray(space.block_size)
        self.bump = 0

    def release(self) -> None:
        self.space.unregister(self.block_id)


class StringHeap:
    """Size-class string allocator over block-aligned string blocks."""

    def __init__(self, space: "AddressSpace", epochs: "EpochManager") -> None:
        self._space = space
        self._epochs = epochs
        self._blocks: List[StringBlock] = []
        self._current: StringBlock | None = None
        # size class -> free addresses ready for reuse
        self._free: Dict[int, List[int]] = {}
        # freed but possibly still visible: (ready_epoch, size_class, addr)
        self._limbo: Deque[Tuple[int, int, int]] = deque()
        self._max_record = space.block_size
        self.bytes_in_use = 0

    # ------------------------------------------------------------------

    @staticmethod
    def size_class(payload_len: int) -> int:
        """Smallest power-of-two record size holding *payload_len* bytes."""
        needed = payload_len + _LEN.size
        cls = _MIN_CLASS
        while cls < needed:
            cls <<= 1
        return cls

    def _reclaim_limbo(self) -> None:
        epoch = self._epochs.global_epoch
        while self._limbo and self._limbo[0][0] <= epoch:
            __, cls, addr = self._limbo.popleft()
            self._free.setdefault(cls, []).append(addr)

    def _carve(self, cls: int) -> int:
        block = self._current
        if block is None or block.bump + cls > self._space.block_size:
            block = StringBlock(self._space)
            self._blocks.append(block)
            self._current = block
        addr = block.base_address + block.bump
        block.bump += cls
        return addr

    # ------------------------------------------------------------------

    def alloc(self, text: str) -> int:
        """Store *text*; return the address of its record.

        The empty string is stored as ``NULL_ADDRESS`` and costs nothing.
        """
        if not text:
            return NULL_ADDRESS
        data = text.encode("utf-8")
        cls = self.size_class(len(data))
        if cls > self._max_record:
            raise ValueError(
                f"string of {len(data)} bytes exceeds the maximum record "
                f"size {self._max_record}"
            )
        self._reclaim_limbo()
        free = self._free.get(cls)
        addr = free.pop() if free else self._carve(cls)
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        _LEN.pack_into(block.buf, off, len(data))
        block.buf[off + _LEN.size : off + _LEN.size + len(data)] = data
        self.bytes_in_use += cls
        return addr

    def read(self, addr: int) -> str:
        if addr == NULL_ADDRESS:
            return ""
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        (length,) = _LEN.unpack_from(block.buf, off)
        return bytes(block.buf[off + _LEN.size : off + _LEN.size + length]).decode(
            "utf-8"
        )

    def free(self, addr: int) -> None:
        """Schedule the record at *addr* for reuse (two-epoch delay)."""
        if addr == NULL_ADDRESS:
            return
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        (length,) = _LEN.unpack_from(block.buf, off)
        cls = self.size_class(length)
        self.bytes_in_use -= cls
        self._limbo.append((self._epochs.global_epoch + 2, cls, addr))

    # ------------------------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def total_bytes(self) -> int:
        return len(self._blocks) * self._space.block_size

    def close(self) -> None:
        for block in self._blocks:
            block.release()
        self._blocks.clear()
        self._current = None
        self._free.clear()
        self._limbo.clear()
        self.bytes_in_use = 0
