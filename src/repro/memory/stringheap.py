"""Object-owned variable-length string storage.

Tabular objects have a fixed size and layout, so variable-length strings
cannot live inside object slots.  The paper (section 2) makes strings part
of the object: their lifetime matches the object's, and the collection
reclaims their memory together with the object's memory slot.

The string heap allocates string records from dedicated string blocks in
the same block-aligned address space as data blocks.  A record is::

    uint32 length | utf-8 bytes ...

rounded up to a power-of-two size class.  Freed records go to per-class
free lists and are recycled immediately — unlike object slots, string
records are only reachable through their owning object, whose own slot is
protected by epoch-based reclamation, so a string freed together with its
object cannot be re-read by a racing thread that passed the object's
incarnation check inside the same grace period *before* the free happened
and re-reads after; we conservatively defer string reuse with the same
two-epoch rule as object slots.
"""

from __future__ import annotations

import struct
import threading
from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.memory.addressing import NULL_ADDRESS
from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.addressing import AddressSpace
    from repro.memory.epoch import EpochManager

_LEN = struct.Struct("<I")

_MIN_CLASS = 16


class StringBlock:
    """A bump-allocated block holding string records."""

    __slots__ = ("space", "block_id", "base_address", "segment", "buf", "bump")

    def __init__(self, space: "AddressSpace") -> None:
        self.space = space
        self.block_id = space.register(self)
        self.base_address = space.address_of(self.block_id)
        self.segment = space.buffers.create(space.block_size)
        self.buf = self.segment.buf
        self.bump = 0

    def release(self) -> None:
        self.space.unregister(self.block_id)
        self.buf = None
        self.segment.release()


class StringHeap:
    """Size-class string allocator over block-aligned string blocks."""

    def __init__(self, space: "AddressSpace", epochs: "EpochManager") -> None:
        self._space = space
        self._epochs = epochs
        self._blocks: List[StringBlock] = []
        self._current: StringBlock | None = None
        # size class -> free addresses ready for reuse
        self._free: Dict[int, List[int]] = {}
        # freed but possibly still visible: (ready_epoch, size_class, addr)
        self._limbo: Deque[Tuple[int, int, int]] = deque()
        self._max_record = space.block_size
        self.bytes_in_use = 0

    # ------------------------------------------------------------------

    @staticmethod
    def size_class(payload_len: int) -> int:
        """Smallest power-of-two record size holding *payload_len* bytes."""
        needed = payload_len + _LEN.size
        cls = _MIN_CLASS
        while cls < needed:
            cls <<= 1
        return cls

    def _reclaim_limbo(self) -> None:
        epoch = self._epochs.global_epoch
        while self._limbo and self._limbo[0][0] <= epoch:
            __, cls, addr = self._limbo.popleft()
            self._free.setdefault(cls, []).append(addr)

    def _carve(self, cls: int) -> int:
        block = self._current
        if block is None or block.bump + cls > self._space.block_size:
            block = StringBlock(self._space)
            self._blocks.append(block)
            self._current = block
        addr = block.base_address + block.bump
        block.bump += cls
        return addr

    # ------------------------------------------------------------------

    def alloc(self, text: str) -> int:
        """Store *text*; return the address of its record.

        The empty string is stored as ``NULL_ADDRESS`` and costs nothing.
        """
        if not text:
            return NULL_ADDRESS
        data = text.encode("utf-8")
        cls = self.size_class(len(data))
        if cls > self._max_record:
            raise ValueError(
                f"string of {len(data)} bytes exceeds the maximum record "
                f"size {self._max_record}"
            )
        self._reclaim_limbo()
        free = self._free.get(cls)
        addr = free.pop() if free else self._carve(cls)
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        _LEN.pack_into(block.buf, off, len(data))
        block.buf[off + _LEN.size : off + _LEN.size + len(data)] = data
        self.bytes_in_use += cls
        return addr

    def read(self, addr: int) -> str:
        if addr == NULL_ADDRESS:
            return ""
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        (length,) = _LEN.unpack_from(block.buf, off)
        return bytes(block.buf[off + _LEN.size : off + _LEN.size + length]).decode(
            "utf-8"
        )

    def read_bytes(self, addr: int) -> bytes:
        """Raw utf-8 payload at *addr* without the decode step."""
        if addr == NULL_ADDRESS:
            return b""
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        (length,) = _LEN.unpack_from(block.buf, off)
        return bytes(block.buf[off + _LEN.size : off + _LEN.size + length])

    def free(self, addr: int) -> None:
        """Schedule the record at *addr* for reuse (two-epoch delay)."""
        if addr == NULL_ADDRESS:
            return
        block = self._space.block_at(addr)
        off = self._space.offset_of(addr)
        (length,) = _LEN.unpack_from(block.buf, off)
        cls = self.size_class(length)
        self.bytes_in_use -= cls
        self._limbo.append((self._epochs.global_epoch + 2, cls, addr))

    # ------------------------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def total_bytes(self) -> int:
        return len(self._blocks) * self._space.block_size

    def close(self) -> None:
        for block in self._blocks:
            block.release()
        self._blocks.clear()
        self._current = None
        self._free.clear()
        self._limbo.clear()
        self.bytes_in_use = 0


class StringDict:
    """Refcounted per-collection intern table layered on the string heap.

    Each distinct string stored by a collection gets a small dense integer
    *code*; object slots and columnar string columns store the code instead
    of a heap address.  The payload bytes still live in heap records (one per
    distinct value), so the heap's accounting and reclamation discipline is
    unchanged — the dictionary merely deduplicates and exposes the code
    space to the query kernels.

    Code ``0`` is permanently pinned to the empty string so that zero-filled
    columnar storage and ``NULL_ADDRESS`` row templates decode identically.

    Reclamation follows the heap's two-epoch rule: when a code's refcount
    drops to zero its heap record is freed and the code itself parks in a
    limbo queue for two epochs before it may be rebound to a new string.  A
    scan that resolved codes inside an epoch-protected critical section can
    therefore never observe a code remapped under it.  ``version`` ticks on
    every binding change; kernels use it to cache per-dictionary artifacts
    (decode arrays, predicate match sets).
    """

    def __init__(self, heap: StringHeap, epochs: "EpochManager") -> None:
        self._heap = heap
        self._epochs = epochs
        self._lock = threading.Lock()
        self._by_text: Dict[str, int] = {"": 0}
        self._texts: List[str] = [""]
        self._addrs: List[int] = [NULL_ADDRESS]
        self._refs: List[int] = [1]
        self._free_codes: List[int] = []
        # retired codes awaiting the reuse grace period: (ready_epoch, code)
        self._limbo: Deque[Tuple[int, int]] = deque()
        self.version = 0
        #: Durability hook: called as ``on_bind(code, text)`` after a NEW
        #: binding is created (never for refcount bumps), outside the
        #: dictionary's lock so the observer may take coarser locks (the
        #: WAL lock) without inverting lock order against interning calls
        #: made while those locks are held.
        self.on_bind: Optional[Callable[[int, str], None]] = None
        self._text_array: Optional[np.ndarray] = None
        self._text_array_version = -1
        self._match_cache: Dict[
            Tuple[str, object], Tuple[int, np.ndarray, FrozenSet[int]]
        ] = {}
        # Match-set cache accounting: with a byte budget installed (the
        # memory governor) eviction is bytes-driven; without one the
        # legacy 256-entry cap applies.  Hit/miss counters feed the
        # governor's rebalance and the service metrics.
        self._match_bytes = 0
        self._match_budget: Optional[int] = None
        self.match_hits = 0
        self.match_misses = 0

    # -- write side ----------------------------------------------------

    def _reclaim_limbo(self) -> None:
        epoch = self._epochs.global_epoch
        while self._limbo and self._limbo[0][0] <= epoch:
            __, code = self._limbo.popleft()
            self._free_codes.append(code)

    def intern(self, text: str) -> int:
        """Return the code for *text*, binding a new one if needed.

        Bumps the refcount for every non-empty hit; callers own exactly one
        reference per stored occurrence and must :meth:`release` it.
        """
        with self._lock:
            code = self._by_text.get(text)
            if code is not None:
                if code:
                    self._refs[code] += 1
                return code
            self._reclaim_limbo()
            addr = self._heap.alloc(text)
            if self._free_codes:
                code = self._free_codes.pop()
                self._texts[code] = text
                self._addrs[code] = addr
                self._refs[code] = 1
            else:
                code = len(self._texts)
                self._texts.append(text)
                self._addrs.append(addr)
                self._refs.append(1)
            self._by_text[text] = code
            self.version += 1
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("strdict.bind", code=code, text=text)
        if self.on_bind is not None:
            self.on_bind(code, text)
        return code

    def release(self, code: int) -> None:
        """Drop one reference to *code*; retires the binding at zero."""
        if code <= 0:
            return
        with self._lock:
            n = self._refs[code] - 1
            self._refs[code] = n
            if n:
                return
            # Keep _texts[code] in place: a racing reader inside the grace
            # period may still decode the retired code.
            del self._by_text[self._texts[code]]
            self._heap.free(self._addrs[code])
            self._addrs[code] = NULL_ADDRESS
            self._limbo.append((self._epochs.global_epoch + 2, code))
            self.version += 1

    # -- read side -----------------------------------------------------

    def text_of(self, code: int) -> str:
        return self._texts[code] if code > 0 else ""

    def code_of(self, text: str) -> Optional[int]:
        """Code currently bound to *text*, or ``None`` (never interns)."""
        return self._by_text.get(text)

    def refcount(self, code: int) -> int:
        return self._refs[code]

    def text_array(self) -> np.ndarray:
        """Object ndarray mapping code -> text, cached per version."""
        arr = self._text_array
        if arr is None or self._text_array_version != self.version:
            arr = np.array(self._texts, dtype=object)
            self._text_array = arr
            self._text_array_version = self.version
        return arr

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised gather: int code array -> object array of texts."""
        arr = self.text_array()
        if codes.size and int(codes.max()) >= arr.size:
            # A concurrent intern grew the table mid-scan; take a fresh
            # uncached view (bag semantics admit the new row).
            arr = np.array(self._texts, dtype=object)
        return arr[codes]

    @staticmethod
    def _entry_bytes(codes: np.ndarray, sel_len: int) -> int:
        """Nominal bytes one cached match set holds (array + frozenset)."""
        return int(codes.nbytes) + sel_len * 8 + 96

    def _evict_match_cache(self) -> None:
        """Evict oldest entries until the cache fits its cap."""
        if self._match_budget is not None:
            while self._match_bytes > self._match_budget and self._match_cache:
                old = self._match_cache.pop(next(iter(self._match_cache)))
                self._match_bytes -= self._entry_bytes(old[1], len(old[2]))
        else:
            while len(self._match_cache) > 256:
                old = self._match_cache.pop(next(iter(self._match_cache)))
                self._match_bytes -= self._entry_bytes(old[1], len(old[2]))

    def set_match_budget(self, budget: Optional[int]) -> None:
        """Install a byte ceiling for the match-set cache (governor hook)."""
        self._match_budget = None if budget is None else int(budget)
        self._evict_match_cache()

    @property
    def cache_bytes(self) -> int:
        """Bytes held by the match-set cache plus the decode array."""
        arr = self._text_array
        return self._match_bytes + (int(arr.nbytes) if arr is not None else 0)

    def _match(self, kind: str, arg: object) -> Tuple[np.ndarray, FrozenSet[int]]:
        key = (kind, arg)
        cached = self._match_cache.get(key)
        if cached is not None and cached[0] == self.version:
            self.match_hits += 1
            return cached[1], cached[2]
        self.match_misses += 1
        texts, refs = self._texts, self._refs
        if kind == "prefix":
            sel = [
                c
                for c in range(len(texts))
                if refs[c] > 0 and texts[c].startswith(arg)
            ]
        elif kind == "contains":
            sel = [c for c in range(len(texts)) if refs[c] > 0 and arg in texts[c]]
        elif kind == "inset":
            sel = sorted(
                code
                for v in arg  # type: ignore[attr-defined]
                if (code := self._by_text.get(v)) is not None
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown match kind {kind!r}")
        codes = np.array(sel, dtype=np.int64)
        result = (codes, frozenset(sel))
        if cached is not None:
            # Stale entry (dictionary version moved on): replace in place.
            self._match_bytes -= self._entry_bytes(cached[1], len(cached[2]))
        self._match_cache[key] = (self.version, *result)
        self._match_bytes += self._entry_bytes(codes, len(result[1]))
        self._evict_match_cache()
        return result

    def match_codes(self, kind: str, arg: object) -> np.ndarray:
        """Codes of live distinct values matching a string predicate.

        *kind* is ``"prefix"``/``"contains"`` (arg: needle string) or
        ``"inset"`` (arg: frozenset of probe strings).  The predicate is
        evaluated once over the distinct values and cached per dictionary
        version, so repeated scans reduce to an ``np.isin`` over the codes.
        """
        return self._match(kind, arg)[0]

    def match_set(self, kind: str, arg: object) -> FrozenSet[int]:
        """Frozenset flavor of :meth:`match_codes` for scalar kernels."""
        return self._match(kind, arg)[1]

    # -- stats ---------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Distinct live strings (excluding the pinned empty string)."""
        return len(self._by_text) - 1
