"""The global indirection table.

References to self-managed objects do not store the object's memory address
directly; they store a pointer to an entry in the indirection table, which
in turn holds the object's address and its authoritative incarnation number
(paper section 3.2, Figure 1).  The level of indirection is what makes
compaction possible: relocating an object only requires atomically updating
one table entry (section 5.1).

Incarnation word layout (32 bits)::

    bit 31  FROZEN   - the object is scheduled for relocation (section 5.1)
    bit 30  LOCKED   - a thread is relocating / bailing out this object
    bit 29  FORWARD  - slot is a tombstone forwarding to a new location
                       (direct-pointer mode, section 6)
    bits 0..28       - incarnation counter

The incarnation counter starts at zero and is incremented whenever the
object occupying the slot is freed.  References capture the counter at
creation time; a mismatch on dereference means the object is gone and the
reference behaves as null.  When the 29-bit counter would overflow, the
entry is *retired* instead of reused — the paper stops reusing such slots
until a background scan has nulled stale references; retiring is the
conservative equivalent.

Atomicity: the paper uses CAS on the incarnation word.  CPython has no CAS
primitive, so flag updates go through a striped lock table
(:meth:`IndirectionTable.cas_inc`).  The *protocol* — which thread may set
or clear which bit in which epoch/phase — follows the paper exactly and is
enforced by the compactor (``repro.core.compaction``).
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.errors import IncarnationOverflowError
from repro.memory.addressing import NULL_ADDRESS
from repro.sanitizer import hooks as _san

FROZEN = 1 << 31
LOCKED = 1 << 30
FORWARD = 1 << 29
FLAG_MASK = FROZEN | LOCKED | FORWARD
INC_MASK = (1 << 29) - 1

#: Number of striped locks used to emulate CAS on incarnation words.
_LOCK_STRIPES = 64

_GROW_CHUNK = 4096


def incarnation_of(word: int) -> int:
    """Strip flag bits from an incarnation word."""
    return word & INC_MASK


def flags_of(word: int) -> int:
    return word & FLAG_MASK


class IndirectionTable:
    """Growable table of (address, incarnation-word) entries."""

    def __init__(self, initial_capacity: int = _GROW_CHUNK) -> None:
        capacity = max(initial_capacity, _GROW_CHUNK)
        self._addr = np.full(capacity, NULL_ADDRESS, dtype=np.int64)
        self._inc = np.zeros(capacity, dtype=np.uint32)
        self._size = 0
        self._free: List[int] = []
        self._retired: List[int] = []
        self._grow_lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_LOCK_STRIPES)]

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------

    def allocate(self, address: int) -> int:
        """Create (or recycle) an entry pointing at *address*; return its index.

        Recycled entries keep their incremented incarnation counter so that
        stale references created against the previous occupant keep failing
        their incarnation check (section 3.2).
        """
        with self._grow_lock:
            if self._free:
                idx = self._free.pop()
            else:
                idx = self._size
                if idx == len(self._addr):
                    self._grow()
                self._size += 1
            self._addr[idx] = address
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "entry.alloc",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    address=address,
                )
            return idx

    def release(self, idx: int) -> None:
        """Return entry *idx* to the free list (its incarnation persists).

        The caller must already have incremented the incarnation counter via
        :meth:`increment_incarnation`; entries whose counter overflowed are
        retired and never reused.
        """
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("entry.release", table=self, entry=idx)
        word = int(self._inc[idx])
        if (word & INC_MASK) >= INC_MASK:
            with self._grow_lock:
                self._retired.append(idx)
            return
        with self._grow_lock:
            self._free.append(idx)

    def _grow(self) -> None:
        new_cap = len(self._addr) + max(_GROW_CHUNK, len(self._addr) // 2)
        addr = np.full(new_cap, NULL_ADDRESS, dtype=np.int64)
        inc = np.zeros(new_cap, dtype=np.uint32)
        addr[: self._size] = self._addr[: self._size]
        inc[: self._size] = self._inc[: self._size]
        self._addr = addr
        self._inc = inc

    # ------------------------------------------------------------------
    # Plain accessors (hot path: GIL-atomic single-element reads/writes)
    # ------------------------------------------------------------------

    def address_of(self, idx: int) -> int:
        return int(self._addr[idx])

    def set_address(self, idx: int, address: int) -> None:
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "entry.repoint", table=self, entry=idx, address=address
            )
        self._addr[idx] = address

    def incarnation_word(self, idx: int) -> int:
        return int(self._inc[idx])

    def incarnation(self, idx: int) -> int:
        return int(self._inc[idx]) & INC_MASK

    # ------------------------------------------------------------------
    # Incarnation updates
    # ------------------------------------------------------------------

    def increment_incarnation(self, idx: int) -> int:
        """Increment the incarnation counter on free; return the new counter.

        Uses the striped lock so it composes safely with concurrent flag
        CAS operations (the paper requires ``free`` to use CAS once the
        freeze bit exists, section 5.1 footnote).
        """
        with self._stripes[idx % _LOCK_STRIPES]:
            word = int(self._inc[idx])
            counter = (word & INC_MASK) + 1
            if counter > INC_MASK:
                raise IncarnationOverflowError(f"entry {idx} overflowed")
            new_word = (word & FLAG_MASK) | counter
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "inc.update",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    old=word,
                    new=new_word,
                    kind="increment",
                )
            self._inc[idx] = new_word
            return counter

    def cas_inc(self, idx: int, expected: int, new: int) -> bool:
        """Compare-and-swap the full incarnation word of entry *idx*."""
        with self._stripes[idx % _LOCK_STRIPES]:
            if int(self._inc[idx]) != expected:
                return False
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "inc.update",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    old=expected,
                    new=new,
                    kind="cas",
                )
            self._inc[idx] = new
            return True

    def set_flags(self, idx: int, flags: int) -> int:
        """Atomically OR *flags* into the incarnation word; return new word."""
        with self._stripes[idx % _LOCK_STRIPES]:
            old = int(self._inc[idx])
            word = old | flags
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "inc.update",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    old=old,
                    new=word,
                    kind="set_flags",
                )
            self._inc[idx] = word
            return word

    def clear_flags(self, idx: int, flags: int) -> int:
        """Atomically clear *flags* from the incarnation word; return new word."""
        with self._stripes[idx % _LOCK_STRIPES]:
            old = int(self._inc[idx])
            word = old & ~flags & 0xFFFFFFFF
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "inc.update",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    old=old,
                    new=word,
                    kind="clear_flags",
                )
            self._inc[idx] = word
            return word

    def try_lock(self, idx: int) -> bool:
        """Attempt to set the LOCKED bit; False if it was already set."""
        with self._stripes[idx % _LOCK_STRIPES]:
            word = int(self._inc[idx])
            if word & LOCKED:
                return False
            if _san.SANITIZER is not None:
                _san.SANITIZER.event(
                    "inc.update",
                    lock_held=True,
                    table=self,
                    entry=idx,
                    old=word,
                    new=word | LOCKED,
                    kind="lock",
                )
            self._inc[idx] = word | LOCKED
            return True

    def spin_while_locked(self, idx: int) -> int:
        """Busy-wait until the LOCKED bit clears; return the final word.

        The paper's readers spin on the lock bit when they race with a
        relocation (section 5.1, cases b/c).  Under the GIL a tiny sleep
        yields to the lock holder.
        """
        import time

        word = int(self._inc[idx])
        while word & LOCKED:
            time.sleep(0)
            word = int(self._inc[idx])
        return word

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """High-water mark of allocated entries."""
        return self._size

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def retired_count(self) -> int:
        return len(self._retired)

    def reclaim_retired(self) -> int:
        """Return retired (counter-overflowed) entries to circulation.

        ONLY safe after a full reference-repair scan has nulled every
        stale reference (paper section 3.1): with no reference left that
        could carry any old incarnation of these entries, their counters
        may restart from zero.
        """
        with self._grow_lock:
            retired, self._retired = self._retired, []
            for idx in retired:
                if _san.SANITIZER is not None:
                    _san.SANITIZER.event(
                        "inc.update",
                        lock_held=True,
                        table=self,
                        entry=idx,
                        old=int(self._inc[idx]),
                        new=0,
                        kind="retire_reset",
                    )
                self._inc[idx] = 0
                self._free.append(idx)
            return len(retired)

    def live_entries(self) -> np.ndarray:
        """Indices of entries currently pointing at a live address."""
        return np.nonzero(self._addr[: self._size] != NULL_ADDRESS)[0]
