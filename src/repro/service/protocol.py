"""Wire protocol: length-prefixed JSON with exact value round-trips.

Framing: each message is a 4-byte big-endian unsigned length followed by
that many bytes of UTF-8 JSON.  Both directions use the same framing.

The differential-correctness contract requires results to come back
**byte-identical** to the in-process engine, so plain JSON is not
enough: ``Decimal`` and ``date`` cells must survive the round trip with
type and value intact.  They are encoded as tagged objects:

* ``Decimal("1.23")`` → ``{"$d": "1.23"}`` (``Decimal(str(d))`` is an
  exact round trip),
* ``date(1998, 9, 2)`` → ``{"$t": "1998-09-02"}``.

Floats round-trip exactly through ``repr`` (Python's ``json`` uses
``float.__repr__``, which is shortest-exact); ints and strings are
trivially exact.  Row tuples become JSON arrays and are re-tupled on
decode.
"""

from __future__ import annotations

import datetime as _dt
import json
import socket
import struct
from decimal import Decimal
from typing import Any, Dict, List, Optional, Tuple

#: Refuse frames above this size (64 MiB): protects against garbage
#: length prefixes from a confused peer.
MAX_FRAME = 64 * 2**20

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame or message."""


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, Decimal):
        return {"$d": str(value)}
    if isinstance(value, _dt.datetime):  # before date: datetime is a date
        return {"$dt": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$t": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if len(value) == 1:
            if "$d" in value:
                return Decimal(value["$d"])
            if "$t" in value:
                return _dt.date.fromisoformat(value["$t"])
            if "$dt" in value:
                return _dt.datetime.fromisoformat(value["$dt"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_rows(rows: List[Tuple[Any, ...]]) -> List[List[Any]]:
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows: List[List[Any]]) -> List[Tuple[Any, ...]]:
    return [tuple(decode_value(v) for v in row) for row in rows]


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def dump_message(message: Dict[str, Any]) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large ({len(payload)} bytes)")
    return _LEN.pack(len(payload)) + payload


def load_message(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(dump_message(message))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None  # clean EOF at a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame too large ({length} bytes)")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return load_message(payload)
