"""Admission control: bounded concurrency, class timeouts, load-shedding.

The controller guards the query-execution stage with a semaphore sized
to ``max_concurrency`` plus a bounded waiting room of ``queue_depth``.
A request that finds the waiting room full is shed immediately; one
that waits longer than its queue class's timeout is shed with
``timed_out``.  Shedding is always an explicit ``OVERLOADED`` response
(the server maps :class:`OverloadedError` onto the wire) — never a
silent drop, so a closed-loop client can distinguish saturation from
failure and back off.

Queue classes let cheap control traffic (``interactive``: ping, metrics)
wait less than bulk query traffic (``batch``): each class carries its
own admission timeout and its own shed counters.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

#: Per-class admission timeouts (seconds).  ``default`` applies to any
#: class without an explicit entry.
DEFAULT_CLASS_TIMEOUTS = {
    "interactive": 1.0,
    "default": 5.0,
    "batch": 15.0,
}


class OverloadedError(Exception):
    """Request shed by admission control; ``reason`` says why."""

    def __init__(self, reason: str, queue_class: str) -> None:
        super().__init__(f"overloaded ({reason}, class={queue_class})")
        self.reason = reason
        self.queue_class = queue_class


class AdmissionController:
    def __init__(
        self,
        max_concurrency: int = 8,
        queue_depth: int = 32,
        class_timeouts: Optional[Dict[str, float]] = None,
        metrics=None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.class_timeouts = dict(DEFAULT_CLASS_TIMEOUTS)
        if class_timeouts:
            self.class_timeouts.update(class_timeouts)
        self._slots = threading.Semaphore(max_concurrency)
        self._lock = threading.Lock()
        self._running = 0
        self._waiting = 0
        if metrics is not None:
            self._admitted = metrics.counter(
                "service_requests_admitted_total",
                "Requests admitted past admission control",
            )
            self._shed = metrics.counter(
                "service_requests_shed_total",
                "Requests shed with OVERLOADED, by class and reason",
            )
            self._wait_hist = metrics.histogram(
                "service_admission_wait_seconds",
                "Time spent waiting for an execution slot",
            )
            metrics.gauge(
                "service_requests_running",
                "Requests currently executing",
                callback=lambda: float(self.running),
            )
            metrics.gauge(
                "service_requests_waiting",
                "Requests queued for an execution slot",
                callback=lambda: float(self.waiting),
            )
        else:
            self._admitted = self._shed = self._wait_hist = None

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def timeout_for(self, queue_class: str) -> float:
        return self.class_timeouts.get(
            queue_class, self.class_timeouts["default"]
        )

    def acquire(self, queue_class: str = "default") -> None:
        """Admit one request or raise :class:`OverloadedError`.

        Fast path: a free slot admits immediately.  Otherwise the request
        joins the bounded waiting room (full room → shed ``queue_full``)
        and blocks on the semaphore up to its class timeout (expiry →
        shed ``timed_out``).
        """
        if self._slots.acquire(blocking=False):
            with self._lock:
                self._running += 1
            if self._admitted is not None:
                self._admitted.inc(queue_class=queue_class)
                self._wait_hist.observe(0.0, queue_class=queue_class)
            return
        with self._lock:
            if self._waiting >= self.queue_depth:
                shed = True
            else:
                self._waiting += 1
                shed = False
        if shed:
            if self._shed is not None:
                self._shed.inc(queue_class=queue_class, reason="queue_full")
            raise OverloadedError("queue_full", queue_class)
        start = time.monotonic()
        try:
            admitted = self._slots.acquire(timeout=self.timeout_for(queue_class))
        finally:
            with self._lock:
                self._waiting -= 1
        if not admitted:
            if self._shed is not None:
                self._shed.inc(queue_class=queue_class, reason="timed_out")
            raise OverloadedError("timed_out", queue_class)
        with self._lock:
            self._running += 1
        if self._admitted is not None:
            self._admitted.inc(queue_class=queue_class)
            self._wait_hist.observe(
                time.monotonic() - start, queue_class=queue_class
            )

    def release(self) -> None:
        with self._lock:
            self._running -= 1
        self._slots.release()

    class _Slot:
        __slots__ = ("_ctl", "_queue_class")

        def __init__(self, ctl: "AdmissionController", queue_class: str) -> None:
            self._ctl = ctl
            self._queue_class = queue_class

        def __enter__(self) -> None:
            self._ctl.acquire(self._queue_class)

        def __exit__(self, *exc) -> None:
            self._ctl.release()

    def slot(self, queue_class: str = "default") -> "_Slot":
        """Context manager: admit on enter, release on exit."""
        return self._Slot(self, queue_class)
