"""One writer, N read replicas, in one process.

A :class:`Fleet` wires the replication layer to the query service: it
starts a primary :class:`~repro.service.server.QueryService` over a
:class:`~repro.durability.DurableStore`, then attaches replicas that
each clone the primary's checkpoint, stream its committed WAL tail
through a :class:`~repro.durability.ReplicationClient`, and serve reads
from their own store.  ``repro fleet`` runs one from the CLI; the
differential and failover tests drive one directly.

The fleet object is an orchestration convenience, not a consensus
system: promotion is driven by :meth:`Fleet.failover`, which polls the
surviving replicas' applied-LSN watermarks and promotes the freshest
(passing that watermark as ``min_lsn`` so a lagging replica cannot
win).  See ``docs/replication.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.replication import ReplicationClient
from repro.durability.store import DEFAULT_CHECKPOINT_BYTES, DurableStore
from repro.errors import SmcError
from repro.service.client import RoutedClient
from repro.service.server import DEFAULT_LEASE_TTL, QueryService, ServiceServer


class FleetNode:
    """One serving node: a store, its service, and the TCP server.

    Replicas additionally carry the :class:`ReplicationClient` that
    feeds their store; ``replication is None`` marks the seed primary.
    """

    def __init__(
        self,
        name: str,
        service: QueryService,
        server: ServiceServer,
        store: DurableStore,
        replication: Optional[ReplicationClient] = None,
    ) -> None:
        self.name = name
        self.service = service
        self.server = server
        self.store = store
        self.replication = replication
        self.alive = True

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def endpoint(self) -> Tuple[str, int]:
        return (self.server.host, self.server.port)

    @property
    def role(self) -> str:
        return self.service.role

    def kill(self) -> None:
        """Simulate process death: drop the listener, no clean teardown.

        The store's WAL is marked crashed first so nothing else in this
        process can append to it — the data directory is left exactly
        as a killed process would leave it, for recovery or resync.
        """
        if not self.alive:
            return
        self.alive = False
        if self.replication is not None:
            self.replication.stop()
        self.store.wal.mark_crashed()
        self.server.stop(hard=True)

    def close(self) -> None:
        if not self.alive:
            return
        self.alive = False
        self.server.stop()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FleetNode {self.name} {self.role} @ {self.host}:{self.port}>"


class Fleet:
    """Primary + N replicas over one ``data_root`` directory tree.

    Each node gets its own subdirectory (``primary/``, ``replica-1/``,
    …).  Reopening an existing tree resumes the primary from its data
    directory; replicas resume from theirs and catch up from the tail
    (or resync when their segment is gone).
    """

    def __init__(
        self,
        data_root: str,
        *,
        collections: Optional[Dict[str, Any]] = None,
        snapshot: Optional[str] = None,
        replicas: int = 2,
        columnar: bool = False,
        string_dict: bool = True,
        fsync_policy: str = "commit",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        host: str = "127.0.0.1",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_concurrency: int = 8,
        queue_depth: int = 32,
        poll_wait: float = 0.2,
    ) -> None:
        self.data_root = data_root
        self._collections = collections
        self._snapshot = snapshot
        self._replica_count = replicas
        self._columnar = columnar
        self._string_dict = string_dict
        self._fsync_policy = fsync_policy
        self._checkpoint_bytes = checkpoint_bytes
        self._host = host
        self._lease_ttl = lease_ttl
        self._max_concurrency = max_concurrency
        self._queue_depth = queue_depth
        self._poll_wait = poll_wait
        self._seq = 0
        self._lock = threading.Lock()
        self.primary: Optional[FleetNode] = None
        self.nodes: List[FleetNode] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Fleet":
        primary_dir = os.path.join(self.data_root, "primary")
        if os.path.exists(os.path.join(primary_dir, "MANIFEST")):
            store = DurableStore.open(
                primary_dir,
                fsync_policy=self._fsync_policy,
                checkpoint_bytes=self._checkpoint_bytes,
                columnar=self._columnar,
                string_dict=self._string_dict,
            )
        else:
            store = DurableStore.create(
                primary_dir,
                collections=self._collections,
                snapshot=self._snapshot,
                columnar=self._columnar,
                string_dict=self._string_dict,
                fsync_policy=self._fsync_policy,
                checkpoint_bytes=self._checkpoint_bytes,
            )
        self.primary = self._serve("primary", store, replication=None)
        self.nodes.append(self.primary)
        for _ in range(self._replica_count):
            self.add_replica()
        return self

    def _serve(
        self,
        name: str,
        store: DurableStore,
        replication: Optional[ReplicationClient],
    ) -> FleetNode:
        collections: Dict[str, Any] = dict(store.collections)
        collections["_manager"] = store.manager
        service = QueryService(
            collections,
            store.manager,
            lease_ttl=self._lease_ttl,
            max_concurrency=self._max_concurrency,
            queue_depth=self._queue_depth,
            store=store,
            replication=replication,
        )
        server = ServiceServer(service, self._host, 0).start()
        return FleetNode(name, service, server, store, replication)

    def add_replica(self, name: Optional[str] = None) -> FleetNode:
        """Join a new replica to the current primary and start serving.

        The replica catches up (checkpoint + tail, or resync) before
        its server comes up, so a freshly returned node is already at
        the primary's committed LSN of a moment ago.
        """
        if self.primary is None or not self.primary.alive:
            raise SmcError("fleet has no live primary to replicate from")
        with self._lock:
            self._seq += 1
            name = name or f"replica-{self._seq}"
        repl = ReplicationClient(
            self.primary.host,
            self.primary.port,
            os.path.join(self.data_root, name),
            fsync_policy=self._fsync_policy,
            checkpoint_bytes=self._checkpoint_bytes,
            poll_wait=self._poll_wait,
            name=name,
        )
        store = repl.sync()
        node = self._serve(name, store, replication=repl)
        repl.start()
        self.nodes.append(node)
        return node

    def restart_replica(self, node: FleetNode) -> FleetNode:
        """Close (or bury) *node* and rejoin a replica on its data dir.

        Exercises the catch-up-from-checkpoint+tail path: the new
        replication client reopens the directory the old node left
        behind and streams only what it is missing.
        """
        if node.replication is None:
            raise SmcError("cannot restart the seed primary as a replica")
        if node.alive:
            node.close()
        if node in self.nodes:
            self.nodes.remove(node)
        return self.add_replica(name=node.name)

    def close(self) -> None:
        for node in reversed(self.nodes):
            try:
                node.close()
            except Exception:
                pass
        self.nodes = []
        self.primary = None

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- routing ---------------------------------------------------------

    def endpoints(self) -> List[Tuple[str, int]]:
        """Live endpoints, primary first — :class:`RoutedClient` input."""
        ordered = sorted(
            (n for n in self.nodes if n.alive),
            key=lambda n: n is not self.primary,
        )
        return [n.endpoint for n in ordered]

    def client(self, **kwargs: Any) -> RoutedClient:
        return RoutedClient(self.endpoints(), **kwargs)

    def wait_caught_up(self, timeout: float = 10.0) -> None:
        """Block until every live replica reaches the primary's LSN."""
        if self.primary is None or not self.primary.alive:
            raise SmcError("fleet has no live primary")
        target = self.primary.store.committed_lsn
        for node in self.nodes:
            if node is self.primary or not node.alive:
                continue
            repl = node.replication
            if repl is not None and not repl.wait_for(target, timeout=timeout):
                raise SmcError(
                    f"{node.name} stuck at LSN {repl.applied_lsn}, "
                    f"want {target}"
                )

    # -- failover --------------------------------------------------------

    def kill_primary(self) -> FleetNode:
        """Hard-kill the current primary (drill entry point)."""
        if self.primary is None:
            raise SmcError("fleet has no primary")
        node = self.primary
        node.kill()
        return node

    def failover(self, timeout: float = 10.0) -> FleetNode:
        """Promote the freshest surviving replica to primary.

        Reads every candidate's applied-LSN watermark, promotes the
        maximum with ``min_lsn`` set to that maximum (so a stale
        candidate racing us is refused), and retargets the remaining
        replicas at the winner.  No committed-and-shipped batch is
        lost: the winner has, by construction, everything any survivor
        applied.
        """
        candidates = [
            n
            for n in self.nodes
            if n.alive and n.replication is not None and not n.replication.promoted
        ]
        if not candidates:
            raise SmcError("no surviving replica to promote")
        watermarks = {n.name: n.replication.applied_lsn for n in candidates}
        floor = max(watermarks.values())
        winner = max(candidates, key=lambda n: n.replication.applied_lsn)
        reply = winner.service.handle({"op": "promote", "min_lsn": floor})
        if not reply.get("ok"):
            raise SmcError(f"promotion failed: {reply!r}")
        self.primary = winner
        if self.primary in self.nodes:
            self.nodes.remove(self.primary)
            self.nodes.insert(0, self.primary)
        for node in candidates:
            if node is winner:
                continue
            node.replication.retarget(winner.host, winner.port)
        return winner

    def status(self) -> List[Dict[str, Any]]:
        out = []
        for node in self.nodes:
            entry: Dict[str, Any] = {
                "name": node.name,
                "role": node.role if node.alive else "dead",
                "endpoint": f"{node.host}:{node.port}",
                "alive": node.alive,
            }
            if node.replication is not None and not node.replication.promoted:
                entry.update(node.replication.status())
            elif node.alive:
                entry["committed_lsn"] = node.store.committed_lsn
            out.append(entry)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        live = sum(1 for n in self.nodes if n.alive)
        return f"<Fleet {live}/{len(self.nodes)} nodes at {self.data_root!r}>"
