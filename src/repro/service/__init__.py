"""Concurrent query service over self-managed collections.

The service layer turns the query engines into a serving system:

``metrics``
    Counters, gauges and latency histograms with Prometheus-style text
    exposition, instrumented through the memory core and query engines.
``session``
    Session registry; every session holds an :class:`EpochLease` with a
    watchdog so a dead client cannot wedge limbo reclamation.
``admission``
    Bounded admission controller with per-class timeouts and explicit
    ``OVERLOADED`` load-shedding.
``plancache``
    Prepared-plan cache keyed on (query, layout, encoding, engine).
``protocol``
    Length-prefixed JSON wire protocol with exact value round-trips.
``server`` / ``client``
    Threaded TCP server (``repro serve``) and client library, including
    the fleet-aware :class:`RoutedClient` (writes to the primary, reads
    across replicas with bounded staleness).
``fleet``
    One writer + N WAL-shipping read replicas in one process
    (``repro fleet``), with promote-on-failure drills.

See ``docs/service.md`` for the protocol and policies, and
``docs/replication.md`` for the fleet.
"""

from repro.service.admission import AdmissionController, OverloadedError
from repro.service.client import (
    LoopbackClient,
    RoutedClient,
    ServiceClient,
    ServiceError,
    ServiceNotPrimary,
    ServiceOverloadedError,
    ServiceSessionExpired,
    ServiceStaleRead,
)
from repro.service.fleet import Fleet, FleetNode
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.plancache import PlanCache
from repro.service.server import QueryService, ServiceServer
from repro.service.session import Session, SessionRegistry

__all__ = [
    "AdmissionController",
    "Counter",
    "Fleet",
    "FleetNode",
    "Gauge",
    "Histogram",
    "LoopbackClient",
    "MetricsRegistry",
    "OverloadedError",
    "PlanCache",
    "QueryService",
    "RoutedClient",
    "ServiceClient",
    "ServiceError",
    "ServiceNotPrimary",
    "ServiceOverloadedError",
    "ServiceServer",
    "ServiceSessionExpired",
    "ServiceStaleRead",
    "Session",
    "SessionRegistry",
]
