"""Concurrent query service over self-managed collections.

The service layer turns the query engines into a serving system:

``metrics``
    Counters, gauges and latency histograms with Prometheus-style text
    exposition, instrumented through the memory core and query engines.
``session``
    Session registry; every session holds an :class:`EpochLease` with a
    watchdog so a dead client cannot wedge limbo reclamation.
``admission``
    Bounded admission controller with per-class timeouts and explicit
    ``OVERLOADED`` load-shedding.
``plancache``
    Prepared-plan cache keyed on (query, layout, encoding, engine).
``protocol``
    Length-prefixed JSON wire protocol with exact value round-trips.
``server`` / ``client``
    Threaded TCP server (``repro serve``) and client library.

See ``docs/service.md`` for the protocol and policies.
"""

from repro.service.admission import AdmissionController, OverloadedError
from repro.service.client import ServiceClient
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.plancache import PlanCache
from repro.service.server import QueryService, ServiceServer
from repro.service.session import Session, SessionRegistry

__all__ = [
    "AdmissionController",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OverloadedError",
    "PlanCache",
    "QueryService",
    "ServiceClient",
    "ServiceServer",
    "Session",
    "SessionRegistry",
]
