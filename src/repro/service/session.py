"""Session registry with epoch-lease watchdog.

Every connected client gets a :class:`Session` holding an
:class:`~repro.memory.epoch.EpochLease`.  While the session executes a
request the lease is *entered*, pinning the global epoch exactly like a
thread inside a critical section — readers on the wire are epoch-
protected even though requests hop between server worker threads.

The failure mode this design exists for: a client dies (or stalls) mid
request, its lease stays entered, the epoch can never advance past it,
and every limbo slot in the system becomes unreclaimable.  The
:class:`SessionRegistry` watchdog expires sessions whose last heartbeat
(any request counts) is older than the lease TTL: the lease is revoked
— force-exited and unregistered under the epoch registry lock — and
reclamation resumes.  A revoked session's later requests get a
``LEASE_EXPIRED`` error; the client must open a new session.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.memory.epoch import EpochLease

#: Default lease TTL: generous for interactive clients, short enough
#: that an abandoned session cannot stall reclamation for long.
DEFAULT_LEASE_TTL = 30.0

#: How often the watchdog sweeps, as a fraction of the TTL.
_SWEEP_FRACTION = 0.25


class SessionExpiredError(Exception):
    """The session's lease was revoked by the watchdog."""


class Session:
    """One client session: an epoch lease plus bookkeeping."""

    def __init__(self, session_id: str, lease: EpochLease, ttl: float) -> None:
        self.session_id = session_id
        self.lease = lease
        self.ttl = ttl
        self.created_at = time.monotonic()
        self.last_seen = self.created_at
        self.requests = 0
        self._lock = threading.Lock()

    def touch(self) -> None:
        with self._lock:
            self.last_seen = time.monotonic()
            self.requests += 1

    @property
    def expired(self) -> bool:
        return self.lease.revoked

    def idle_for(self) -> float:
        with self._lock:
            return time.monotonic() - self.last_seen

    def enter(self) -> int:
        """Enter the leased critical section for one request."""
        if self.lease.revoked:
            raise SessionExpiredError(self.session_id)
        try:
            return self.lease.enter()
        except Exception as exc:  # revoked between check and enter
            raise SessionExpiredError(self.session_id) from exc

    def exit(self) -> None:
        self.lease.exit()


class SessionRegistry:
    """Creates, tracks and expires sessions.

    The watchdog thread is started lazily on the first session and
    stopped by :meth:`close`.  Expiry counters land in the metrics
    registry when one is attached.
    """

    def __init__(
        self,
        manager,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        metrics=None,
    ) -> None:
        self.manager = manager
        self.lease_ttl = lease_ttl
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._watchdog: Optional[threading.Thread] = None
        self._stop = threading.Event()
        if metrics is not None:
            self._expired_total = metrics.counter(
                "service_sessions_expired_total",
                "Sessions expired by the lease watchdog",
            )
            self._revoked_held = metrics.counter(
                "service_leases_revoked_held_total",
                "Watchdog revocations that force-exited a held lease",
            )
            metrics.gauge(
                "service_sessions_active",
                "Currently registered sessions",
                callback=lambda: float(self.count()),
            )
        else:
            self._expired_total = None
            self._revoked_held = None

    # -- lifecycle -----------------------------------------------------

    def create(self, ttl: Optional[float] = None) -> Session:
        ttl = self.lease_ttl if ttl is None else min(ttl, self.lease_ttl)
        with self._lock:
            self._next_id += 1
            session_id = f"s{self._next_id:06d}"
        lease = self.manager.epochs.create_lease(session_id)
        session = Session(session_id, lease, ttl)
        with self._lock:
            self._sessions[session_id] = session
            if self._watchdog is None:
                self._start_watchdog()
        return session

    def get(self, session_id: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(session_id)

    def require(self, session_id: str) -> Session:
        session = self.get(session_id)
        if session is None or session.expired:
            raise SessionExpiredError(session_id)
        return session

    def release(self, session_id: str) -> bool:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        session.lease.release()
        return True

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def sessions(self) -> List[Session]:
        with self._lock:
            return list(self._sessions.values())

    def close(self) -> None:
        self._stop.set()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout=5.0)
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.lease.release()

    # -- watchdog ------------------------------------------------------

    def _start_watchdog(self) -> None:
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="lease-watchdog", daemon=True
        )
        self._watchdog.start()

    def _watchdog_loop(self) -> None:
        interval = max(0.01, self.lease_ttl * _SWEEP_FRACTION)
        while not self._stop.wait(interval):
            self.sweep()

    def sweep(self) -> int:
        """Expire every session idle past its TTL; returns expiry count."""
        now = time.monotonic()
        stale: List[Session] = []
        with self._lock:
            for session in self._sessions.values():
                if now - session.last_seen > session.ttl:
                    stale.append(session)
            for session in stale:
                del self._sessions[session.session_id]
        for session in stale:
            was_held = session.lease.revoke()
            if self._expired_total is not None:
                self._expired_total.inc()
                if was_held and self._revoked_held is not None:
                    self._revoked_held.inc()
        return len(stale)
