"""The query service: request handling, churn mutator, TCP server.

:class:`QueryService` is transport-independent — it maps request dicts
to response dicts, so tests can drive it in-process and the TCP layer
stays a thin framing loop.  :class:`ServiceServer` wraps it in a
threaded ``socket`` server speaking the length-prefixed JSON protocol
(one thread per connection; admission control, not the thread count,
bounds concurrent query execution).

Error taxonomy (the ``error`` field of a ``{"ok": false}`` response):

``OVERLOADED``
    Shed by admission control; ``reason`` is ``queue_full`` or
    ``timed_out``.  Never a silent drop — the client sees every shed.
``LEASE_EXPIRED``
    The session's epoch lease was revoked by the watchdog; open a new
    session.
``BAD_REQUEST``
    Unknown op/query or malformed arguments.
``NOT_PRIMARY``
    A ``mutate`` sent to a read replica; the client must route writes
    to the primary (the response names the replica's current source).
``STALE_READ``
    A ``query`` carried ``min_lsn`` and the replica's applied watermark
    did not reach it within ``wait`` seconds; the response reports
    ``applied_lsn`` so the router can redirect.
``STALE_PROMOTION``
    A ``promote`` named a ``min_lsn`` ahead of this replica's watermark
    — a fresher replica exists and must be promoted instead.
``INTERNAL``
    Unexpected exception during execution (with a detail string).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.durability.replication import StalePromotionError
from repro.schema import Int64Field, Tabular, VarStringField
from repro.service import protocol
from repro.service.admission import AdmissionController, OverloadedError
from repro.service.metrics import (
    MetricsRegistry,
    engine_snapshot,
    instrument_durability,
    instrument_exec,
    instrument_manager,
    instrument_replication,
    instrument_tiering,
)
from repro.service.plancache import PlanCache
from repro.service.session import (
    DEFAULT_LEASE_TTL,
    SessionExpiredError,
    SessionRegistry,
)


class _ServiceChurn(Tabular):
    """Scratch schema the background mutator churns.

    Lives in its own collection on the served manager, so mutations
    exercise allocation, limbo, epoch advancement and compaction under
    live query traffic without perturbing any TPC-H answer.
    """

    seq = Int64Field()
    tag = VarStringField()


class ChurnMutator:
    """Background add/remove churn against the served manager."""

    def __init__(
        self,
        manager,
        high_water: int = 512,
        compact_every: int = 2000,
        seed: int = 7,
    ) -> None:
        from repro.core.collection import Collection

        self.collection = Collection(
            _ServiceChurn, manager, name="_service_churn"
        )
        self.manager = manager
        self.high_water = high_water
        self.compact_every = compact_every
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.ops = 0

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="service-churn", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _loop(self) -> None:
        handles: List[Any] = []
        seq = 0
        tags = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
        while not self._stop.is_set():
            seq += 1
            tag = tags[self._rng.randrange(len(tags))] + str(seq % 97)
            handles.append(self.collection.add(seq=seq, tag=tag))
            if len(handles) > self.high_water:
                # Remove from a random prefix position so blocks develop
                # real limbo fragmentation, not pure FIFO reuse.
                idx = self._rng.randrange(len(handles) // 2 + 1)
                self.collection.remove(handles.pop(idx))
            self.ops += 1
            if self.ops % 64 == 0:
                self.manager.advance_epoch()
            if self.ops % self.compact_every == 0:
                self.collection.compact(occupancy_threshold=0.6)


class QueryService:
    """Transport-independent request handler."""

    def __init__(
        self,
        collections: Dict[str, Any],
        manager=None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_concurrency: int = 8,
        queue_depth: int = 32,
        class_timeouts: Optional[Dict[str, float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        store=None,
        replication=None,
        exec_workers: int = 0,
        governor_budget: Optional[int] = None,
        planner: bool = True,
    ) -> None:
        self.collections = {
            k: v for k, v in collections.items() if not k.startswith("_")
        }
        self.manager = manager or collections.get("_manager")
        if self.manager is None:
            raise ValueError("a memory manager is required")
        #: Optional :class:`~repro.durability.DurableStore` backing the
        #: served collections.  When set, the ``mutate`` op persists its
        #: changes through the write-ahead log (one group commit per
        #: request) and ``close`` checkpoints and closes the store.
        self.store = store
        #: Optional :class:`~repro.durability.ReplicationClient` when
        #: this node serves as a read replica.  Until it is promoted,
        #: ``mutate`` is refused with NOT_PRIMARY and ``query`` enforces
        #: bounded staleness against its applied-LSN watermark.
        self.replication = replication
        #: Process pool for scatter-gather scans when ``exec_workers > 0``
        #: (requires a shared-memory manager).  The pool attaches to the
        #: manager, so the vectorised engine routes any eligible
        #: multi-worker query through it; ineligible plans fall back to
        #: the thread pool, visible in the smc_exec_*_queries counters.
        self.exec_pool = None
        if exec_workers:
            from repro.query.procexec import ProcessScanPool

            self.exec_pool = ProcessScanPool(
                self.manager, workers=int(exec_workers)
            )
            self.manager.exec_pool = self.exec_pool
        self.metrics = metrics or MetricsRegistry()
        instrument_manager(self.metrics, self.manager)
        engine_snapshot(self.metrics)
        if getattr(self.manager, "pager", None) is not None:
            instrument_tiering(self.metrics, self.manager.pager)
        if self.exec_pool is not None:
            instrument_exec(self.metrics, self.exec_pool)
        if store is not None:
            instrument_durability(self.metrics, store)
        if replication is not None:
            instrument_replication(self.metrics, replication)
        self._ship_requests = self.metrics.counter(
            "smc_repl_ship_requests_total",
            "Replicate polls served, by kind (tail/resync)",
        )
        self._ship_records = self.metrics.counter(
            "smc_repl_ship_records_total",
            "WAL records shipped to followers",
        )
        self.sessions = SessionRegistry(
            self.manager, lease_ttl=lease_ttl, metrics=self.metrics
        )
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
            class_timeouts=class_timeouts,
            metrics=self.metrics,
        )
        self.plans = PlanCache(metrics=self.metrics)
        self._requests = self.metrics.counter(
            "service_requests_total", "Requests handled, by op and status"
        )
        self._latency = self.metrics.histogram(
            "service_request_seconds", "Request handling latency, by op"
        )
        self._routed_small = self.metrics.counter(
            "smc_serve_small_scans_routed_total",
            "Multi-worker requests routed to one worker by estimated rows",
        )
        self.churn: Optional[ChurnMutator] = None
        #: Server-side default for cost-based planning; per-request
        #: ``planner`` flags override it (and key the plan cache).
        self.planner_enabled = bool(planner)
        from repro.rdbms import engine as _rdbms_engine

        _rdbms_engine.set_adaptive_joins(self.planner_enabled)
        #: Unified memory governor over the service's caches.  One byte
        #: budget is split across the plan cache, the collections'
        #: string-dictionary match caches and the WAL group-commit
        #: buffer, rebalanced from live hit/miss counters.
        self.governor = None
        if governor_budget:
            from repro.memory.governor import MemoryGovernor

            self.governor = MemoryGovernor(
                int(governor_budget), self.metrics
            )
            self.governor.register(
                "plan_cache",
                usage=self.plans.usage_bytes,
                counters=self.plans.counters,
                set_budget=self.plans.set_budget,
            )
            dicts = [
                sd
                for coll in self.collections.values()
                if (sd := getattr(coll, "strdict", None)) is not None
            ]
            if dicts:
                self.governor.register(
                    "string_dicts",
                    usage=lambda: sum(d.cache_bytes for d in dicts),
                    counters=lambda: (
                        sum(d.match_hits for d in dicts),
                        sum(d.match_misses for d in dicts),
                    ),
                    set_budget=lambda n: [
                        d.set_match_budget(max(1, n // len(dicts)))
                        for d in dicts
                    ],
                    weight=2.0,
                )
            if store is not None:
                # ``store.wal`` is re-read per call: checkpoints roll the
                # segment, and the new segment must inherit the ceiling.
                self.governor.register(
                    "wal_buffer",
                    usage=lambda: self.store.wal.buffered_bytes,
                    counters=lambda: (
                        self.store.wal.buffered_records,
                        self.store.wal.buffer_capacity_flushes,
                    ),
                    set_budget=lambda n: self.store.wal.set_buffer_capacity(
                        n
                    ),
                )
            pager = getattr(self.manager, "pager", None)
            if pager is not None:
                # The hot block pool is by far the largest tenant; its
                # weight keeps the initial split from starving it, and a
                # fault streak (tier misses) pulls budget away from the
                # caches toward the pool.
                self.governor.register(
                    "block_pool",
                    usage=pager.governor_usage,
                    counters=pager.governor_counters,
                    set_budget=pager.set_budget,
                    weight=4.0,
                )

    # -- fleet role ----------------------------------------------------

    @property
    def role(self) -> str:
        if self.replication is not None and not self.replication.promoted:
            return "replica"
        return "primary"

    def _current_lsn(self) -> int:
        """The LSN a response is consistent with (stamped on replies)."""
        if self.role == "replica":
            return self.replication.applied_lsn
        if self.store is not None:
            return self.store.committed_lsn
        return 0

    # -- layout/encoding fingerprint for plan-cache keys ---------------

    def _layout(self) -> str:
        for coll in self.collections.values():
            return getattr(coll, "compiled_flavor", "smc-unsafe")
        return "smc-unsafe"

    def _encoding(self) -> str:
        return "dict" if getattr(self.manager, "string_dict", False) else "plain"

    def _stats_fingerprint(self) -> tuple:
        """Coarse store-statistics fingerprint for plan-cache staleness.

        Per collection: block count plus the log2 bucket of the string
        dictionary's live cardinality.  Cheap to compute per request and
        exactly coarse enough that steady-state churn (slot reuse inside
        existing blocks, refcount traffic on existing strings) leaves it
        unchanged while real growth — new blocks, a cardinality
        doubling — evicts the plans whose statistics it invalidates.
        """
        parts = []
        for name in sorted(self.collections):
            coll = self.collections[name]
            ctx = getattr(coll, "context", None)
            blocks = ctx.block_count() if ctx is not None else 0
            sd = getattr(coll, "strdict", None)
            card = sd.live_count if sd is not None else 0
            parts.append((name, blocks, int(card).bit_length()))
        return tuple(parts)

    # -- churn ---------------------------------------------------------

    def start_churn(self, **kwargs) -> ChurnMutator:
        if self.churn is None:
            self.churn = ChurnMutator(self.manager, **kwargs)
            self.churn.start()
        return self.churn

    def stop_churn(self) -> None:
        if self.churn is not None:
            self.churn.stop()
            self.churn = None

    # -- request dispatch ----------------------------------------------

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        start = time.perf_counter()
        try:
            if op == "hello":
                response = self._op_hello(message)
            elif op == "bye":
                response = self._op_bye(message)
            elif op == "ping":
                response = {"ok": True, "pong": True}
            elif op == "query":
                response = self._op_query(message)
            elif op == "explain":
                response = self._op_explain(message)
            elif op == "mutate":
                response = self._op_mutate(message)
            elif op == "replicate":
                response = self._op_replicate(message)
            elif op == "lsn":
                response = self._op_lsn(message)
            elif op == "promote":
                response = self._op_promote(message)
            elif op == "metrics":
                response = {"ok": True, "text": self.metrics.expose()}
            elif op == "info":
                response = {
                    "ok": True,
                    "telemetry": protocol.encode_value(
                        self.manager.telemetry()
                    ),
                    "plan_cache": self.plans.stats(),
                    "planner": self.planner_enabled,
                }
                if self.governor is not None:
                    response["governor"] = self.governor.snapshot()
            else:
                response = {
                    "ok": False,
                    "error": "BAD_REQUEST",
                    "detail": f"unknown op {op!r}",
                }
        except OverloadedError as exc:
            response = {
                "ok": False,
                "error": "OVERLOADED",
                "reason": exc.reason,
                "queue_class": exc.queue_class,
            }
        except SessionExpiredError as exc:
            response = {
                "ok": False,
                "error": "LEASE_EXPIRED",
                "detail": str(exc),
            }
        except StalePromotionError as exc:
            response = {
                "ok": False,
                "error": "STALE_PROMOTION",
                "detail": str(exc),
                "applied_lsn": exc.applied_lsn,
                "min_lsn": exc.min_lsn,
            }
        except Exception as exc:  # noqa: BLE001 - wire boundary
            response = {
                "ok": False,
                "error": "INTERNAL",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        elapsed = time.perf_counter() - start
        status = (
            "ok" if response.get("ok") else response.get("error", "ERROR")
        )
        self._requests.inc(op=str(op), status=status)
        self._latency.observe(elapsed, op=str(op))
        return response

    # -- ops -----------------------------------------------------------

    def _op_hello(self, message: Dict[str, Any]) -> Dict[str, Any]:
        ttl = message.get("ttl")
        session = self.sessions.create(float(ttl) if ttl else None)
        return {
            "ok": True,
            "session": session.session_id,
            "lease_ttl": session.ttl,
        }

    def _op_bye(self, message: Dict[str, Any]) -> Dict[str, Any]:
        released = self.sessions.release(str(message.get("session", "")))
        return {"ok": True, "released": released}

    def _op_query(self, message: Dict[str, Any]) -> Dict[str, Any]:
        from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

        name = message.get("query")
        builder = QUERIES.get(name) or EXTRA_QUERIES.get(name)
        if builder is None:
            known = sorted(QUERIES) + sorted(EXTRA_QUERIES)
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": f"unknown query {name!r}; choose from {known}",
            }
        engine = message.get("engine", "compiled")
        flavor = message.get("flavor")
        workers = int(message.get("workers") or 1)
        prune = bool(message.get("prune", True))
        queue_class = str(message.get("class", "default"))
        params = dict(DEFAULT_PARAMS)
        overrides = message.get("params")
        if overrides:
            params.update(protocol.decode_value(overrides))

        session = None
        session_id = message.get("session")
        if session_id is not None:
            session = self.sessions.require(str(session_id))
            session.touch()

        # Bounded staleness: the router names the LSN floor this read
        # must reflect; a replica waits for its watermark (wait-or-
        # redirect), the primary is stale only after a lossy failover.
        min_lsn = message.get("min_lsn")
        if min_lsn is not None:
            min_lsn = int(min_lsn)
            wait = float(message.get("wait", 2.0))
            if self.role == "replica":
                if not self.replication.wait_for(min_lsn, timeout=wait):
                    return {
                        "ok": False,
                        "error": "STALE_READ",
                        "applied_lsn": self.replication.applied_lsn,
                        "min_lsn": min_lsn,
                    }
            elif self._current_lsn() < min_lsn:
                return {
                    "ok": False,
                    "error": "STALE_READ",
                    "applied_lsn": self._current_lsn(),
                    "min_lsn": min_lsn,
                }

        # Stamp the watermark *before* execution: the data read is
        # guaranteed to reflect at least this LSN, never less.
        lsn_at_start = self._current_lsn()
        use_planner = bool(message.get("planner", self.planner_enabled))
        engine_key = (
            f"{engine}:{flavor or ''}:w{workers}:p{int(prune)}"
            f":pl{int(use_planner)}"
        )
        key = PlanCache.key_for(
            str(name), self._layout(), self._encoding(), engine_key
        )
        # Planned plans embed statistics decisions; key them under the
        # store's coarse stats fingerprint so drift evicts them.
        fingerprint = self._stats_fingerprint() if use_planner else None
        plan = self.plans.get_or_build(
            key, lambda: builder(self.collections), fingerprint=fingerprint
        )

        # Serve-path worker routing: a query the planner estimates to
        # touch only a handful of rows is not worth a parallel fan-out —
        # run it on one worker and leave the pool to the big scans.
        effective_workers = workers
        if use_planner and workers > 1:
            from repro.query import planner as _planner

            est = _planner.estimate_query_rows(plan, params)
            effective_workers = _planner.route_workers(est, workers)
            if effective_workers != workers:
                self._routed_small.inc(query=str(name))

        self.admission.acquire(queue_class)
        try:
            if session is not None:
                session.enter()
            try:
                start = time.perf_counter()
                result = plan.run(
                    engine=engine,
                    params=params,
                    flavor=flavor,
                    workers=effective_workers,
                    prune=prune,
                    planner=use_planner,
                )
                elapsed_ms = (time.perf_counter() - start) * 1000
            finally:
                if session is not None:
                    session.exit()
        finally:
            self.admission.release()
        if self.governor is not None:
            self.governor.maybe_rebalance()
        pager = getattr(self.manager, "pager", None)
        if pager is not None:
            # Operation boundary: finish pending demotions and evict the
            # hot tier back under budget (faults during the scan may have
            # transiently exceeded it).
            pager.maintain()
        return {
            "ok": True,
            "columns": list(result.columns),
            "rows": protocol.encode_rows(result.rows),
            "elapsed_ms": elapsed_ms,
            "lsn": lsn_at_start,
        }

    def _op_explain(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """EXPLAIN surface: the planner's view of a query, no execution."""
        from repro.tpch.queries import DEFAULT_PARAMS, EXTRA_QUERIES, QUERIES

        name = message.get("query")
        builder = QUERIES.get(name) or EXTRA_QUERIES.get(name)
        if builder is None:
            known = sorted(QUERIES) + sorted(EXTRA_QUERIES)
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": f"unknown query {name!r}; choose from {known}",
            }
        use_planner = bool(message.get("planner", self.planner_enabled))
        params = dict(DEFAULT_PARAMS)
        overrides = message.get("params")
        if overrides:
            params.update(protocol.decode_value(overrides))
        query = builder(self.collections)
        text = query.explain(
            flavor=message.get("flavor"), params=params, planner=use_planner
        )
        return {"ok": True, "query": str(name), "text": text}

    def _op_mutate(self, message: Dict[str, Any]) -> Dict[str, Any]:
        from repro.durability import MutationError

        if self.store is None:
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": "server is not running with a data directory",
            }
        if self.role != "primary":
            return {
                "ok": False,
                "error": "NOT_PRIMARY",
                "detail": "this node is a read replica; route writes "
                "to the primary",
                "primary": f"{self.replication.host}:{self.replication.port}",
            }
        ops = message.get("ops")
        session = None
        session_id = message.get("session")
        if session_id is not None:
            session = self.sessions.require(str(session_id))
            session.touch()
        queue_class = str(message.get("class", "default"))
        self.admission.acquire(queue_class)
        try:
            if session is not None:
                session.enter()
            try:
                # One group commit per request: the whole op list rides a
                # single BEGIN/COMMIT batch and one fsync.
                try:
                    results = self.store.apply(ops)
                except MutationError as exc:
                    return {
                        "ok": False,
                        "error": "BAD_REQUEST",
                        "detail": str(exc),
                    }
            finally:
                if session is not None:
                    session.exit()
        finally:
            self.admission.release()
        committed = self.store.committed_lsn
        self.store.maybe_checkpoint()
        pager = getattr(self.manager, "pager", None)
        if pager is not None:
            pager.maintain()
        return {"ok": True, "results": results, "lsn": committed}

    # -- replication ops -----------------------------------------------

    def _op_replicate(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Ship the committed WAL tail (or a resync package) to a follower.

        Long-polls up to ``wait`` seconds when the follower is caught
        up.  Not admission-controlled: replication must keep flowing
        even when the query queue is saturated, and a poll parked in
        the queue would add its own latency to every replica's lag.
        """
        from repro.sanitizer import hooks as _san

        if self.store is None:
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": "server is not running with a data directory",
            }
        if self.role != "primary":
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": "read replicas do not ship their log "
                "(chained replication is not supported)",
            }
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("repl.ship", wal=self.store.wal)
        if message.get("resync"):
            self._ship_requests.inc(kind="resync")
            return {
                "ok": True,
                "resync": self.store.resync_payload(),
                "committed_lsn": self.store.committed_lsn,
            }
        after_lsn = int(message.get("after_lsn", 0))
        wait = min(float(message.get("wait", 0.0)), 30.0)
        max_bytes = int(message.get("max_bytes", 2 * 1024 * 1024))
        deadline = time.monotonic() + wait
        while True:
            records = self.store.read_tail(after_lsn, max_bytes=max_bytes)
            if records is None:
                self._ship_requests.inc(kind="resync_required")
                return {
                    "ok": True,
                    "resync_required": True,
                    "segment_lsn": self.store.wal.start_lsn,
                    "committed_lsn": self.store.committed_lsn,
                }
            if records or time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        self._ship_requests.inc(kind="tail")
        self._ship_records.inc(len(records))
        return {
            "ok": True,
            "records": [[r.lsn, r.kind, r.payload] for r in records],
            "committed_lsn": self.store.committed_lsn,
            "cut_lsn": self.store.cut_lsn,
            "segment_lsn": self.store.wal.start_lsn,
        }

    def _op_lsn(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Role and watermark report (router discovery, failover choice)."""
        del message
        response: Dict[str, Any] = {"ok": True, "role": self.role}
        if self.replication is not None:
            response.update(self.replication.status())
        else:
            lsn = self.store.committed_lsn if self.store is not None else 0
            response.update(
                {
                    "applied_lsn": lsn,
                    "source_committed_lsn": lsn,
                    "lag_records": 0,
                    "primary_down": False,
                    "needs_resync": False,
                    "promoted": False,
                }
            )
        if self.role == "primary":
            response["committed_lsn"] = (
                self.store.committed_lsn if self.store is not None else 0
            )
        return response

    def _op_promote(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self.replication is None:
            return {
                "ok": False,
                "error": "BAD_REQUEST",
                "detail": "this node is not a replica",
            }
        min_lsn = message.get("min_lsn")
        applied = self.replication.promote(
            int(min_lsn) if min_lsn is not None else None
        )
        return {"ok": True, "role": self.role, "applied_lsn": applied}

    def close(self) -> None:
        self.stop_churn()
        if self.exec_pool is not None:
            # Stop the worker processes before the session watchdog goes
            # away; their epoch leases unregister cleanly either way, but
            # a live pool must never outlast the service that created it.
            self.manager.exec_pool = None
            self.exec_pool.shutdown()
            self.exec_pool = None
        self.sessions.close()
        if self.replication is not None:
            # Stop streaming before touching the store; an unpromoted
            # replica must not cut an untranslated (local-id) checkpoint
            # over a shipped-id log lineage.
            self.replication.stop()
        if self.store is not None:
            self.store.close(checkpoint=(self.role == "primary"))


class ServiceServer:
    """Threaded TCP front end: one connection handler thread per client."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()

    def start(self) -> "ServiceServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="service-conn",
                daemon=True,
            )
            with self._lock:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
                self._conns.append(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(None)
            while not self._stop.is_set():
                try:
                    message = protocol.recv_message(conn)
                except (protocol.ProtocolError, OSError):
                    break
                if message is None:
                    break
                if message.get("op") == "shutdown":
                    protocol.send_message(conn, {"ok": True, "stopping": True})
                    # Stop from a helper thread: stop() joins connection
                    # threads, so it must not run on one.  Non-daemon so
                    # service.close() (the durable store's final
                    # checkpoint) completes even if the main thread
                    # returns as soon as it sees _stop set.
                    threading.Thread(
                        target=self.stop, name="service-shutdown"
                    ).start()
                    break
                response = self.service.handle(message)
                try:
                    protocol.send_message(conn, response)
                except OSError:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self, hard: bool = False) -> None:
        """Stop serving; ``hard`` skips ``service.close()``.

        A hard stop models process death for failover drills: the
        listener and connections drop, but no clean teardown (final
        checkpoint, session release) runs — exactly what a crashed
        primary would leave behind.
        """
        with self._lock:
            already_stopping = self._stop.is_set()
            self._stop.set()
        if already_stopping:
            # Another thread is (or has finished) tearing down — wait for
            # it so callers never race service.close()'s final checkpoint.
            self._stopped.wait(timeout=60.0)
            return
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._conn_threads)
            conns = list(self._conns)
            self._conns.clear()
        # Unblock handler threads parked in recv().
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        try:
            if not hard:
                self.service.close()
        finally:
            self._stopped.set()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
