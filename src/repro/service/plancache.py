"""Prepared-plan cache keyed on (query, layout, encoding, engine).

Query plans are parameterised at run time (``Query.run(params=...)``),
so one built plan serves every request for the same query shape.  The
cache sits above the compiler's compiled-function cache: a plan-cache
hit skips plan construction entirely, and because the underlying
``Query.signature()`` is stable, repeated compiles across sessions also
hit ``repro.query.compiler._CACHE``.  Hit/miss counters feed the
service metrics registry.

Plans built by the cost-based planner embed statistics decisions —
predicate order, access path, morsel width — that go stale as the store
mutates.  Each cached plan therefore carries the coarse **stats
fingerprint** (per-collection block count and log2 dictionary-cardinality
bucket, computed by the service per request) it was planned under; a
lookup whose fingerprint drifted evicts the entry and rebuilds, counted
by ``smc_plancache_stale_evictions_total``.

The cache is also a governor tenant: plans are charged a nominal byte
cost and evicted oldest-first when the installed budget shrinks below
the held total.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

PlanKey = Tuple[str, str, str, str]

#: Nominal bytes charged per cached plan.  Plans are small object graphs
#: (expression trees + compiled-function references) whose true footprint
#: is unmeasurable without walking them; a flat charge keeps the governor
#: arithmetic honest about *count* pressure, which is what matters here.
NOMINAL_PLAN_BYTES = 8192


class PlanCache:
    def __init__(self, metrics=None, budget_bytes: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._plans: Dict[PlanKey, Any] = {}
        self._fingerprints: Dict[PlanKey, Any] = {}
        self._budget = budget_bytes
        self._hits = 0
        self._misses = 0
        self.stale_evictions = 0
        self.capacity_evictions = 0
        if metrics is not None:
            self._hit_counter = metrics.counter(
                "service_plan_cache_hits_total", "Prepared-plan cache hits"
            )
            self._miss_counter = metrics.counter(
                "service_plan_cache_misses_total", "Prepared-plan cache misses"
            )
            self._stale_counter = metrics.counter(
                "smc_plancache_stale_evictions_total",
                "Plans evicted because their stats fingerprint drifted",
            )
            metrics.gauge(
                "service_plan_cache_size",
                "Prepared plans currently cached",
                callback=lambda: float(self.size),
            )
        else:
            self._hit_counter = self._miss_counter = None
            self._stale_counter = None

    @staticmethod
    def key_for(
        query_name: str, layout: str, encoding: str, engine: str
    ) -> PlanKey:
        return (query_name, layout, encoding, engine)

    def _evict_to_budget_locked(self) -> None:
        if self._budget is None:
            return
        limit = max(1, self._budget // NOMINAL_PLAN_BYTES)
        while len(self._plans) > limit:
            oldest = next(iter(self._plans))
            del self._plans[oldest]
            self._fingerprints.pop(oldest, None)
            self.capacity_evictions += 1

    def get_or_build(
        self,
        key: PlanKey,
        build: Callable[[], Any],
        fingerprint: Any = None,
    ) -> Any:
        stale = False
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and fingerprint is not None:
                if self._fingerprints.get(key) != fingerprint:
                    del self._plans[key]
                    self._fingerprints.pop(key, None)
                    self.stale_evictions += 1
                    stale = True
                    plan = None
            if plan is not None:
                self._hits += 1
                hit = True
            else:
                hit = False
        if stale and self._stale_counter is not None:
            self._stale_counter.inc(query=key[0])
        if hit:
            if self._hit_counter is not None:
                self._hit_counter.inc(query=key[0])
            return plan
        # Build outside the lock (plan construction can be slow); a racing
        # builder for the same key is harmless — last write wins and both
        # plans are equivalent.
        plan = build()
        with self._lock:
            self._plans[key] = plan
            if fingerprint is not None:
                self._fingerprints[key] = fingerprint
            self._misses += 1
            self._evict_to_budget_locked()
        if self._miss_counter is not None:
            self._miss_counter.inc(query=key[0])
        return plan

    def invalidate(self) -> None:
        with self._lock:
            self._plans.clear()
            self._fingerprints.clear()

    # -- governor tenant hooks ------------------------------------------

    def usage_bytes(self) -> int:
        with self._lock:
            return len(self._plans) * NOMINAL_PLAN_BYTES

    def set_budget(self, budget: Optional[int]) -> None:
        with self._lock:
            self._budget = budget
            self._evict_to_budget_locked()

    def counters(self) -> Tuple[int, int]:
        with self._lock:
            return self._hits, self._misses

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._plans),
                "stale_evictions": self.stale_evictions,
                "capacity_evictions": self.capacity_evictions,
            }
