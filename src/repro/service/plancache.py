"""Prepared-plan cache keyed on (query, layout, encoding, engine).

Query plans are parameterised at run time (``Query.run(params=...)``),
so one built plan serves every request for the same query shape.  The
cache sits above the compiler's compiled-function cache: a plan-cache
hit skips plan construction entirely, and because the underlying
``Query.signature()`` is stable, repeated compiles across sessions also
hit ``repro.query.compiler._CACHE``.  Hit/miss counters feed the
service metrics registry.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Tuple

PlanKey = Tuple[str, str, str, str]


class PlanCache:
    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self._plans: Dict[PlanKey, Any] = {}
        self._hits = 0
        self._misses = 0
        if metrics is not None:
            self._hit_counter = metrics.counter(
                "service_plan_cache_hits_total", "Prepared-plan cache hits"
            )
            self._miss_counter = metrics.counter(
                "service_plan_cache_misses_total", "Prepared-plan cache misses"
            )
            metrics.gauge(
                "service_plan_cache_size",
                "Prepared plans currently cached",
                callback=lambda: float(self.size),
            )
        else:
            self._hit_counter = self._miss_counter = None

    @staticmethod
    def key_for(
        query_name: str, layout: str, encoding: str, engine: str
    ) -> PlanKey:
        return (query_name, layout, encoding, engine)

    def get_or_build(self, key: PlanKey, build: Callable[[], Any]) -> Any:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                hit = True
            else:
                hit = False
        if hit:
            if self._hit_counter is not None:
                self._hit_counter.inc(query=key[0])
            return plan
        # Build outside the lock (plan construction can be slow); a racing
        # builder for the same key is harmless — last write wins and both
        # plans are equivalent.
        plan = build()
        with self._lock:
            self._plans[key] = plan
            self._misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc(query=key[0])
        return plan

    def invalidate(self) -> None:
        with self._lock:
            self._plans.clear()

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._plans),
            }
