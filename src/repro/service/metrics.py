"""Metrics registry: counters, gauges, histograms, Prometheus exposition.

The registry is deliberately dependency-free: metric objects are plain
Python with a lock per instrument, and exposition renders the standard
``# HELP`` / ``# TYPE`` text format so any Prometheus-compatible scraper
(or a test) can parse it.

Two instrumentation bridges tie the registry to the engine:

* :func:`instrument_manager` registers gauges backed by
  :meth:`MemoryManager.telemetry` — global epoch, per-context limbo
  fraction, block counts, string-dict cardinality — plus counter views
  of the manager's lifetime stats (allocation/compaction rates fall out
  of scraping those counters over time).
* :func:`engine_snapshot` folds the query engines' counters (rows
  scanned, blocks pruned, morsel counts from ``stats.extra``) and the
  compiled-function cache's hit/miss numbers into the same exposition.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 0.5 ms .. 10 s, roughly doubling.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Optional[Dict[str, str]]) -> LabelItems:
    return tuple(sorted(labels.items())) if labels else ()


def _render_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing counter with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: Dict[LabelItems, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_labelkey(labels), 0)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(k)} {_fmt(v)}" for k, v in items
        ] or [f"{self.name} 0"]


class Gauge:
    """A value that can go up and down; optionally callback-backed.

    A callback gauge reads its value at scrape time (used for live
    telemetry like the global epoch); a plain gauge is set explicitly.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._callback = callback
        self._lock = threading.Lock()
        self._values: Dict[LabelItems, float] = {}
        #: Label-set callbacks: at scrape time each produces
        #: ``{label_items: value}`` for a dynamic population (e.g. one
        #: series per memory context).
        self._multi_callbacks: List[Callable[[], Dict[LabelItems, float]]] = []

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_labelkey(labels)] = value

    def add(self, amount: float, **labels: str) -> None:
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        if self._callback is not None and not labels:
            return self._callback()
        with self._lock:
            return self._values.get(_labelkey(labels), 0)

    def attach_series(
        self, callback: Callable[[], Dict[LabelItems, float]]
    ) -> None:
        self._multi_callbacks.append(callback)

    def samples(self) -> List[str]:
        out: List[str] = []
        if self._callback is not None:
            out.append(f"{self.name} {_fmt(float(self._callback()))}")
        for cb in self._multi_callbacks:
            for key, value in sorted(cb().items()):
                out.append(f"{self.name}{_render_labels(key)} {_fmt(float(value))}")
        with self._lock:
            items = sorted(self._values.items())
        out.extend(f"{self.name}{_render_labels(k)} {_fmt(v)}" for k, v in items)
        return out or [f"{self.name} 0"]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` records one measurement; exposition emits ``_bucket``
    series with cumulative counts per upper bound (plus ``+Inf``),
    ``_sum`` and ``_count``.  ``quantile`` interpolates within the
    winning bucket — good enough for p50/p99 reporting in benchmarks.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts: Dict[LabelItems, List[int]] = {}
        self._sums: Dict[LabelItems, float] = {}

    def _series(self, key: LabelItems) -> List[int]:
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * (len(self.bounds) + 1)
            self._counts[key] = counts
            self._sums[key] = 0.0
        return counts

    def observe(self, value: float, **labels: str) -> None:
        key = _labelkey(labels)
        idx = bisect_right(self.bounds, value)
        with self._lock:
            counts = self._series(key)
            counts[idx] += 1
            self._sums[key] += value

    def count(self, **labels: str) -> int:
        with self._lock:
            counts = self._counts.get(_labelkey(labels))
            return sum(counts) if counts else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Approximate q-quantile (0..1) by in-bucket interpolation."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts.get(_labelkey(labels), ()))
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
            if cumulative + n >= rank:
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            cumulative += n
        return self.bounds[-1]

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(
                (k, list(v), self._sums[k]) for k, v in self._counts.items()
            )
        out: List[str] = []
        for key, counts, total_sum in items:
            cumulative = 0
            for bound, n in zip(self.bounds, counts):
                cumulative += n
                le = 'le="%s"' % _fmt(bound)
                out.append(
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}"
                )
            cumulative += counts[-1]
            le_inf = 'le="+Inf"'
            out.append(
                f"{self.name}_bucket{_render_labels(key, le_inf)} {cumulative}"
            )
            out.append(f"{self.name}_sum{_render_labels(key)} {repr(total_sum)}")
            out.append(f"{self.name}_count{_render_labels(key)} {cumulative}")
        if not items:
            out.append(f'{self.name}_bucket{{le="+Inf"}} 0')
            out.append(f"{self.name}_sum 0")
            out.append(f"{self.name}_count 0")
        return out


class MetricsRegistry:
    """Named collection of instruments with text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        #: Snapshot providers run at scrape time and contribute extra
        #: ``name value`` lines (e.g. engine counters read from
        #: ``stats.extra``); keyed so re-registration replaces.
        self._snapshots: Dict[str, Callable[[], Dict[str, float]]] = {}

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} re-registered as a "
                        f"different kind"
                    )
                return existing
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._register(Gauge(name, help, callback))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def add_snapshot(
        self, key: str, provider: Callable[[], Dict[str, float]]
    ) -> None:
        with self._lock:
            self._snapshots[key] = provider

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def expose(self) -> str:
        """Render every instrument in Prometheus text format."""
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
            snapshots = list(self._snapshots.items())
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.samples())
        for __, provider in sorted(snapshots):
            for name, value in sorted(provider().items()):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(float(value))}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Instrumentation bridges
# ----------------------------------------------------------------------


def instrument_manager(registry: MetricsRegistry, manager) -> None:
    """Register live gauges over *manager*'s telemetry.

    Scrape-time callbacks keep this zero-cost between scrapes; the
    per-context and per-collection series resize themselves as contexts
    and collections come and go.
    """
    epochs = manager.epochs
    registry.gauge(
        "smc_global_epoch",
        "Global reclamation epoch",
        callback=lambda: float(epochs.global_epoch),
    )
    registry.gauge(
        "smc_min_active_epoch",
        "Smallest epoch among in-critical threads and held leases",
        callback=lambda: float(epochs.min_active_epoch()),
    )
    registry.gauge(
        "smc_epoch_leases",
        "Registered epoch leases (sessions able to pin the epoch)",
        callback=lambda: float(epochs.lease_count()),
    )
    registry.gauge(
        "smc_live_blocks",
        "Live mapped blocks across the address space",
        callback=lambda: float(manager.space.live_block_count),
    )
    registry.gauge(
        "smc_mapped_bytes",
        "Bytes mapped by live blocks (data + strings)",
        callback=lambda: float(manager.total_bytes()),
    )

    def _context_series(field: str) -> Callable[[], Dict[LabelItems, float]]:
        def read() -> Dict[LabelItems, float]:
            tel = manager.telemetry()
            return {
                (("context", ctx["name"]),): float(ctx[field])
                for ctx in tel["contexts"]
            }

        return read

    limbo = registry.gauge(
        "smc_context_limbo_fraction", "Limbo slots / capacity per context"
    )
    limbo.attach_series(_context_series("limbo_fraction"))
    blocks = registry.gauge(
        "smc_context_blocks", "Block count per memory context"
    )
    blocks.attach_series(_context_series("blocks"))
    live = registry.gauge("smc_context_live", "Live objects per context")
    live.attach_series(_context_series("live"))
    queue = registry.gauge(
        "smc_context_reclaim_queue", "Reclamation-queue length per context"
    )
    queue.attach_series(_context_series("reclaim_queue"))

    def _dict_series() -> Dict[LabelItems, float]:
        tel = manager.telemetry()
        return {
            (("collection", name),): float(count)
            for name, count in tel["string_dicts"].items()
        }

    dicts = registry.gauge(
        "smc_string_dict_distinct",
        "Distinct interned strings per collection dictionary",
    )
    dicts.attach_series(_dict_series)

    def _manager_counters() -> Dict[str, float]:
        tel = manager.telemetry()
        return {
            f"smc_{name}_total": float(value)
            for name, value in tel["counters"].items()
        }

    registry.add_snapshot("manager_counters", _manager_counters)


def instrument_exec(registry: MetricsRegistry, pool) -> None:
    """Export the process executor's worker-pool state (``smc_exec_*``).

    The gauges are scrape-time reads of the
    :class:`~repro.query.procexec.ProcessScanPool`; the lifetime
    counters (``smc_exec_morsels_dispatched_total``,
    ``smc_exec_morsels_redispatched_total``, ``smc_exec_worker_respawns
    _total`` and the per-query ``smc_exec_process_queries_total`` /
    ``smc_exec_thread_queries_total`` engine-choice split) already ride
    ``manager.stats.extra`` through :func:`instrument_manager`.
    """
    registry.gauge(
        "smc_exec_workers",
        "Scan worker processes configured for the process executor",
        callback=lambda: float(pool.workers),
    )
    registry.gauge(
        "smc_exec_workers_alive",
        "Scan worker processes currently forked and responsive",
        callback=lambda: float(pool.alive_workers()),
    )


def instrument_tiering(registry: MetricsRegistry, pager) -> None:
    """Export the pager's tiering state (``smc_tier_*``).

    Residency gauges and byte totals are scrape-time reads of the
    :class:`~repro.memory.pager.Pager`; the lifetime counters
    (``smc_tier_faults_total``, ``smc_tier_evictions_total``,
    ``smc_tier_spills_total``) already ride ``manager.stats.extra``
    through :func:`instrument_manager`.  Fault latency lands in a
    histogram via the pager's ``fault_timer`` hook.
    """
    registry.gauge(
        "smc_tier_budget_bytes",
        "Hot-tier byte budget the pager evicts down to",
        callback=lambda: float(pager.budget),
    )
    registry.gauge(
        "smc_tier_hot_bytes",
        "Bytes of pool blocks resident in writable hot segments",
        callback=lambda: float(pager.hot_bytes()),
    )
    registry.gauge(
        "smc_tier_cold_bytes",
        "Bytes of pool blocks demoted to read-only tier mappings",
        callback=lambda: float(pager.cold_bytes()),
    )
    registry.gauge(
        "smc_tier_file_bytes",
        "Size of the tier spill file backing cold blocks",
        callback=lambda: float(pager.telemetry()["tier_file_bytes"]),
    )

    def _residency_series() -> Dict[LabelItems, float]:
        return {
            (("residency", state),): float(count)
            for state, count in pager.residency_counts().items()
        }

    residency = registry.gauge(
        "smc_tier_blocks", "Pool blocks by residency state"
    )
    residency.attach_series(_residency_series)

    def _context_series() -> Dict[LabelItems, float]:
        manager = pager.manager
        names = {c.context_id: c.name for c in manager._contexts}
        out: Dict[LabelItems, float] = {}
        for ctx_id, entry in pager.residency_by_context().items():
            name = names.get(ctx_id, str(ctx_id))
            for state, count in entry.items():
                out[(("context", name), ("residency", state))] = float(count)
        return out

    per_context = registry.gauge(
        "smc_tier_context_blocks",
        "Pool blocks by residency state per memory context",
    )
    per_context.attach_series(_context_series)

    faults = registry.histogram(
        "smc_tier_fault_seconds",
        "Wall-clock latency of cold-block faults (promotion to hot)",
    )
    pager.fault_timer = faults.observe


def instrument_durability(registry: MetricsRegistry, store) -> None:
    """Export the durable store's WAL/checkpoint/recovery telemetry.

    All series are scrape-time reads of
    :meth:`~repro.durability.store.DurableStore.stats`, so they follow
    checkpoint segment rollovers without re-registration.
    """

    def _stats() -> Dict[str, float]:
        s = store.stats()
        return {
            "smc_wal_bytes_total": float(s["wal_bytes_total"]),
            "smc_wal_records_total": float(s["wal_records_total"]),
            "smc_wal_fsyncs_total": float(s["wal_fsyncs_total"]),
            "smc_wal_batches_total": float(s["wal_batches_total"]),
            "smc_checkpoints_total": float(s["checkpoints_total"]),
            "smc_recovery_replayed_total": float(
                s["recovery_replayed_total"]
            ),
        }

    registry.add_snapshot("durability", _stats)
    registry.gauge(
        "smc_wal_size_bytes",
        "Current write-ahead log segment size on disk",
        callback=lambda: float(store.stats()["wal_size_bytes"]),
    )
    registry.gauge(
        "smc_checkpoint_duration_seconds",
        "Duration of the most recent checkpoint",
        callback=lambda: float(store.stats()["checkpoint_last_duration"]),
    )
    registry.gauge(
        "smc_checkpoint_rows",
        "Rows written by the most recent checkpoint",
        callback=lambda: float(store.stats()["checkpoint_last_rows"]),
    )


def instrument_replication(registry: MetricsRegistry, replication) -> None:
    """Export a read replica's streaming state (``smc_repl_*``).

    Watermarks are scrape-time gauges over the
    :class:`~repro.durability.replication.ReplicationClient`; lifetime
    counters ride a snapshot provider, like the durability bridge.
    The primary's ship-side counters live on the service itself
    (``smc_repl_ship_*``), since a primary has no replication client.
    """
    registry.gauge(
        "smc_repl_applied_lsn",
        "Last LSN durably applied by this replica",
        callback=lambda: float(replication.applied_lsn),
    )
    registry.gauge(
        "smc_repl_source_committed_lsn",
        "Primary committed LSN as of the last successful poll",
        callback=lambda: float(replication.source_committed_lsn),
    )
    registry.gauge(
        "smc_repl_lag_records",
        "Records between the primary's committed LSN and ours",
        callback=lambda: float(replication.lag_records),
    )
    registry.gauge(
        "smc_repl_primary_down",
        "1 when consecutive polls to the primary keep failing",
        callback=lambda: float(bool(replication.primary_down)),
    )
    registry.gauge(
        "smc_repl_needs_resync",
        "1 when the replica fell behind a primary checkpoint",
        callback=lambda: float(bool(replication.needs_resync)),
    )

    def _counters() -> Dict[str, float]:
        return {
            "smc_repl_apply_records_total": float(
                replication.applied_records
            ),
            "smc_repl_apply_batches_total": float(
                replication.applied_batches
            ),
            "smc_repl_polls_total": float(replication.polls),
            "smc_repl_reconnects_total": float(replication.reconnects),
            "smc_repl_resyncs_total": float(replication.resyncs),
            "smc_repl_local_checkpoints_total": float(
                replication.local_checkpoints
            ),
            "smc_repl_promotions_total": float(replication.promotions),
        }

    registry.add_snapshot("replication", _counters)


def engine_snapshot(registry: MetricsRegistry) -> None:
    """Contribute the compiled-function cache stats at scrape time.

    The engines' scan counters live in ``manager.stats.extra`` and are
    already exported by :func:`instrument_manager`; the compiler cache is
    process-global, so it gets its own snapshot provider.
    """
    from repro.query import compiler

    def _compiler_cache() -> Dict[str, float]:
        stats = compiler.cache_stats()
        return {
            "smc_compiled_cache_hits_total": float(stats["hits"]),
            "smc_compiled_cache_misses_total": float(stats["misses"]),
            "smc_compiled_cache_size": float(stats["size"]),
        }

    registry.add_snapshot("compiler_cache", _compiler_cache)
