"""Client library for the query service.

Synchronous, one socket per client; opens a session (``hello``) on
connect so every query runs under the session's epoch lease.  Results
come back as :class:`~repro.query.builder.Result` with exact cell
values (see ``protocol``), so a client-side result compares equal —
byte for byte through ``repr`` — with an in-process run.

Usage::

    with ServiceClient("127.0.0.1", 7070) as client:
        result = client.query("q1", workers=4)
        print(client.metrics())

Shed requests raise :class:`ServiceOverloadedError`; expired sessions
raise :class:`ServiceSessionExpired`; everything else a server reports
raises :class:`ServiceError` with the server's error code.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.query.builder import Result
from repro.service import protocol


class ServiceError(Exception):
    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class ServiceOverloadedError(ServiceError):
    def __init__(self, reason: str, queue_class: str) -> None:
        super().__init__("OVERLOADED", reason)
        self.reason = reason
        self.queue_class = queue_class


class ServiceSessionExpired(ServiceError):
    def __init__(self, detail: str = "") -> None:
        super().__init__("LEASE_EXPIRED", detail)


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7070,
        timeout: Optional[float] = 30.0,
        open_session: bool = True,
        lease_ttl: Optional[float] = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self.session: Optional[str] = None
        self.lease_ttl: Optional[float] = None
        if open_session:
            reply = self.call({"op": "hello", "ttl": lease_ttl})
            self.session = reply["session"]
            self.lease_ttl = reply["lease_ttl"]

    # -- low level -----------------------------------------------------

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, await the response, raise on error."""
        protocol.send_message(self._sock, message)
        reply = protocol.recv_message(self._sock)
        if reply is None:
            raise ServiceError("DISCONNECTED", "server closed the connection")
        if reply.get("ok"):
            return reply
        code = reply.get("error", "ERROR")
        if code == "OVERLOADED":
            raise ServiceOverloadedError(
                reply.get("reason", ""), reply.get("queue_class", "")
            )
        if code == "LEASE_EXPIRED":
            raise ServiceSessionExpired(reply.get("detail", ""))
        raise ServiceError(code, reply.get("detail", ""))

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def query(
        self,
        name: str,
        engine: str = "compiled",
        flavor: Optional[str] = None,
        workers: int = 1,
        prune: bool = True,
        params: Optional[Dict[str, Any]] = None,
        queue_class: str = "default",
    ) -> Result:
        message: Dict[str, Any] = {
            "op": "query",
            "query": name,
            "engine": engine,
            "workers": workers,
            "prune": prune,
            "class": queue_class,
        }
        if flavor is not None:
            message["flavor"] = flavor
        if params is not None:
            message["params"] = protocol.encode_value(params)
        if self.session is not None:
            message["session"] = self.session
        reply = self.call(message)
        return Result(reply["columns"], protocol.decode_rows(reply["rows"]))

    def mutate(
        self,
        ops: list,
        queue_class: str = "default",
    ) -> list:
        """Apply a batch of mutation ops as one durable group commit.

        Each op is a dict: ``{"op": "add", "collection": ..., "values":
        {...}}``, ``{"op": "update", "collection": ..., "entry": ...,
        "values": {...}}`` or ``{"op": "remove", "collection": ...,
        "entry": ...}``.  Values holding Decimal/date/datetime must be
        pre-encoded with :func:`protocol.encode_value`; reference fields
        take ``{"$r": entry}``.  Returns the per-op result list (an
        ``add`` reports the new row's ``entry``).
        """
        message: Dict[str, Any] = {
            "op": "mutate",
            "ops": ops,
            "class": queue_class,
        }
        if self.session is not None:
            message["session"] = self.session
        return self.call(message)["results"]

    def add(self, collection: str, **values: Any) -> int:
        """Durably add one row; returns its indirection entry id."""
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        (result,) = self.mutate(
            [{"op": "add", "collection": collection, "values": encoded}]
        )
        return result["entry"]

    def update(self, collection: str, entry: int, **values: Any) -> None:
        """Durably update fields of the row at *entry*."""
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        self.mutate(
            [
                {
                    "op": "update",
                    "collection": collection,
                    "entry": entry,
                    "values": encoded,
                }
            ]
        )

    def remove(self, collection: str, entry: int) -> None:
        """Durably remove the row at *entry*."""
        self.mutate(
            [{"op": "remove", "collection": collection, "entry": entry}]
        )

    def metrics(self) -> str:
        """Scrape the Prometheus-format metrics exposition."""
        return self.call({"op": "metrics"})["text"]

    def info(self) -> Dict[str, Any]:
        reply = self.call({"op": "info"})
        return {
            "telemetry": protocol.decode_value(reply["telemetry"]),
            "plan_cache": reply["plan_cache"],
        }

    def shutdown_server(self) -> None:
        protocol.send_message(self._sock, {"op": "shutdown"})
        protocol.recv_message(self._sock)

    def close(self) -> None:
        if self._sock.fileno() < 0:
            return
        if self.session is not None:
            try:
                self.call({"op": "bye", "session": self.session})
            except (ServiceError, OSError):
                pass
            self.session = None
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
