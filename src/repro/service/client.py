"""Client library for the query service.

Synchronous, one socket per client; opens a session (``hello``) on
connect so every query runs under the session's epoch lease.  Results
come back as :class:`~repro.query.builder.Result` with exact cell
values (see ``protocol``), so a client-side result compares equal —
byte for byte through ``repr`` — with an in-process run.

Usage::

    with ServiceClient("127.0.0.1", 7070) as client:
        result = client.query("q1", workers=4)
        print(client.metrics())

Shed requests raise :class:`ServiceOverloadedError`; expired sessions
raise :class:`ServiceSessionExpired`; everything else a server reports
raises :class:`ServiceError` with the server's error code.

:class:`RoutedClient` is the fleet-aware client (one primary, N read
replicas): mutations go to the primary, reads fan across replicas under
a bounded-staleness contract, and connection loss triggers bounded
retry with jitter plus re-discovery — see ``docs/replication.md``.
"""

from __future__ import annotations

import contextlib
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.query.builder import Result
from repro.service import protocol


class ServiceError(Exception):
    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class ServiceOverloadedError(ServiceError):
    def __init__(self, reason: str, queue_class: str) -> None:
        super().__init__("OVERLOADED", reason)
        self.reason = reason
        self.queue_class = queue_class


class ServiceSessionExpired(ServiceError):
    def __init__(self, detail: str = "") -> None:
        super().__init__("LEASE_EXPIRED", detail)


class ServiceStaleRead(ServiceError):
    """A replica could not reach the read's ``min_lsn`` in time."""

    def __init__(self, applied_lsn: int, min_lsn: int) -> None:
        super().__init__(
            "STALE_READ", f"applied LSN {applied_lsn} < required {min_lsn}"
        )
        self.applied_lsn = applied_lsn
        self.min_lsn = min_lsn


class ServiceNotPrimary(ServiceError):
    """A mutation reached a read replica; ``primary`` names its source."""

    def __init__(self, detail: str = "", primary: str = "") -> None:
        super().__init__("NOT_PRIMARY", detail)
        self.primary = primary


def raise_for_error(reply: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Map an error response to its typed exception; pass ok replies."""
    if reply is None:
        raise ServiceError("DISCONNECTED", "server closed the connection")
    if reply.get("ok"):
        return reply
    code = reply.get("error", "ERROR")
    if code == "OVERLOADED":
        raise ServiceOverloadedError(
            reply.get("reason", ""), reply.get("queue_class", "")
        )
    if code == "LEASE_EXPIRED":
        raise ServiceSessionExpired(reply.get("detail", ""))
    if code == "STALE_READ":
        raise ServiceStaleRead(
            int(reply.get("applied_lsn", 0)), int(reply.get("min_lsn", 0))
        )
    if code == "NOT_PRIMARY":
        raise ServiceNotPrimary(
            reply.get("detail", ""), reply.get("primary", "")
        )
    raise ServiceError(code, reply.get("detail", ""))


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7070,
        timeout: Optional[float] = 30.0,
        open_session: bool = True,
        lease_ttl: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> None:
        """Connect, optionally opening a session.

        ``retries`` bounds reconnection attempts on a refused or lost
        connection, with exponential backoff and jitter (so a fleet of
        clients re-discovering a restarted server does not stampede it).
        """
        self.host, self.port = host, int(port)
        delay = backoff
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(delay * (0.5 + random.random()))
                delay = min(delay * 2, 2.0)
        self.session: Optional[str] = None
        self.lease_ttl: Optional[float] = None
        if open_session:
            reply = self.call({"op": "hello", "ttl": lease_ttl})
            self.session = reply["session"]
            self.lease_ttl = reply["lease_ttl"]

    # -- low level -----------------------------------------------------

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, await the response, raise on error."""
        protocol.send_message(self._sock, message)
        reply = protocol.recv_message(self._sock)
        return raise_for_error(reply)

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def query(
        self,
        name: str,
        engine: str = "compiled",
        flavor: Optional[str] = None,
        workers: int = 1,
        prune: bool = True,
        params: Optional[Dict[str, Any]] = None,
        queue_class: str = "default",
    ) -> Result:
        message: Dict[str, Any] = {
            "op": "query",
            "query": name,
            "engine": engine,
            "workers": workers,
            "prune": prune,
            "class": queue_class,
        }
        if flavor is not None:
            message["flavor"] = flavor
        if params is not None:
            message["params"] = protocol.encode_value(params)
        if self.session is not None:
            message["session"] = self.session
        reply = self.call(message)
        return Result(reply["columns"], protocol.decode_rows(reply["rows"]))

    def mutate(
        self,
        ops: list,
        queue_class: str = "default",
    ) -> list:
        """Apply a batch of mutation ops as one durable group commit.

        Each op is a dict: ``{"op": "add", "collection": ..., "values":
        {...}}``, ``{"op": "update", "collection": ..., "entry": ...,
        "values": {...}}`` or ``{"op": "remove", "collection": ...,
        "entry": ...}``.  Values holding Decimal/date/datetime must be
        pre-encoded with :func:`protocol.encode_value`; reference fields
        take ``{"$r": entry}``.  Returns the per-op result list (an
        ``add`` reports the new row's ``entry``).
        """
        message: Dict[str, Any] = {
            "op": "mutate",
            "ops": ops,
            "class": queue_class,
        }
        if self.session is not None:
            message["session"] = self.session
        return self.call(message)["results"]

    def add(self, collection: str, **values: Any) -> int:
        """Durably add one row; returns its indirection entry id."""
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        (result,) = self.mutate(
            [{"op": "add", "collection": collection, "values": encoded}]
        )
        return result["entry"]

    def update(self, collection: str, entry: int, **values: Any) -> None:
        """Durably update fields of the row at *entry*."""
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        self.mutate(
            [
                {
                    "op": "update",
                    "collection": collection,
                    "entry": entry,
                    "values": encoded,
                }
            ]
        )

    def remove(self, collection: str, entry: int) -> None:
        """Durably remove the row at *entry*."""
        self.mutate(
            [{"op": "remove", "collection": collection, "entry": entry}]
        )

    def metrics(self) -> str:
        """Scrape the Prometheus-format metrics exposition."""
        return self.call({"op": "metrics"})["text"]

    def info(self) -> Dict[str, Any]:
        reply = self.call({"op": "info"})
        return {
            "telemetry": protocol.decode_value(reply["telemetry"]),
            "plan_cache": reply["plan_cache"],
        }

    def shutdown_server(self) -> None:
        protocol.send_message(self._sock, {"op": "shutdown"})
        protocol.recv_message(self._sock)

    def close(self) -> None:
        if self._sock.fileno() < 0:
            return
        if self.session is not None:
            try:
                self.call({"op": "bye", "session": self.session})
            except (ServiceError, OSError):
                pass
            self.session = None
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LoopbackClient:
    """Socket-free client over an in-process :class:`QueryService`.

    Same ``call``/``close``/``session`` surface as
    :class:`ServiceClient`, driving ``service.handle`` directly — the
    router and the replication client accept it wherever a transport is
    expected, so whole fleets can run in one process (property tests).
    """

    def __init__(self, service, open_session: bool = False) -> None:
        self.service = service
        self.session: Optional[str] = None
        self.lease_ttl: Optional[float] = None
        if open_session:
            reply = self.call({"op": "hello", "ttl": None})
            self.session = reply["session"]
            self.lease_ttl = reply["lease_ttl"]

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return raise_for_error(self.service.handle(message))

    def close(self) -> None:
        if self.session is not None:
            with contextlib.suppress(ServiceError, OSError):
                self.call({"op": "bye", "session": self.session})
            self.session = None


class RoutedClient:
    """Fleet router: writes to the primary, reads across replicas.

    Staleness contract: every read carries ``min_lsn = max(read_lsn,
    known_committed - staleness_bound)`` — the last committed LSN this
    router observed from its own writes, minus the configured bound,
    floored by the monotonic per-router ``read_lsn`` watermark.  A
    replica that cannot reach the floor within ``stale_wait`` seconds
    answers STALE_READ and the router redirects to the next replica,
    falling back to the primary (which always satisfies the floor
    within one primary generation).  ``read_lsn`` never decreases, so a
    router never observes time moving backwards across redirects.

    Endpoints are opaque tokens handed to ``client_factory``; the
    default factory treats them as ``(host, port)`` pairs and builds
    :class:`ServiceClient` connections with bounded retry + jitter.
    """

    def __init__(
        self,
        endpoints: Sequence[Any],
        *,
        staleness_bound: int = 0,
        stale_wait: float = 2.0,
        timeout: Optional[float] = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        client_factory: Optional[Callable[[Any], Any]] = None,
        seed: int = 0,
    ) -> None:
        self.endpoints = list(endpoints)
        self.staleness_bound = int(staleness_bound)
        self.stale_wait = stale_wait
        self.retries = retries
        self.backoff = backoff
        self._factory = client_factory or (
            lambda ep: ServiceClient(
                ep[0],
                ep[1],
                timeout=timeout,
                open_session=True,
                retries=retries,
                backoff=backoff,
            )
        )
        self._clients: Dict[Any, Any] = {}
        self._primary: Optional[Any] = None
        self._replicas: List[Any] = []
        self._rr = 0
        self._rng = random.Random(seed)
        #: Monotonic per-router read watermark (never decreases).
        self.read_lsn = 0
        #: Last committed LSN observed from this router's own writes.
        self.known_committed = 0
        # Routing telemetry (asserted by tests, reported by benches).
        self.stale_reads = 0
        self.redirects = 0
        self.failovers = 0
        self.discover()

    # -- topology --------------------------------------------------------

    def _client(self, ep: Any) -> Any:
        client = self._clients.get(ep)
        if client is None:
            client = self._factory(ep)
            self._clients[ep] = client
        return client

    def _drop(self, ep: Any) -> None:
        client = self._clients.pop(ep, None)
        if client is not None:
            with contextlib.suppress(Exception):
                client.close()

    def discover(self) -> Dict[str, Any]:
        """Classify endpoints by role via the ``lsn`` op.

        Re-run after a failover: the primary role moves, and
        ``known_committed`` is re-anchored to the new primary's
        committed LSN (a lossy failover may lawfully rewind it; the
        monotonic ``read_lsn`` floor still holds because promotion
        requires the freshest replica).
        """
        primary = None
        replicas: List[Any] = []
        roles: Dict[str, Any] = {}
        for ep in self.endpoints:
            try:
                reply = self._client(ep).call({"op": "lsn"})
            except (ServiceError, OSError, protocol.ProtocolError):
                self._drop(ep)
                continue
            roles[str(ep)] = reply.get("role")
            if reply.get("role") == "primary":
                primary = ep
                self.known_committed = int(reply.get("committed_lsn", 0))
            else:
                replicas.append(ep)
        self._primary = primary
        self._replicas = replicas
        return roles

    def lsn(self, ep: Any) -> Dict[str, Any]:
        return self._client(ep).call({"op": "lsn"})

    @property
    def primary(self) -> Optional[Any]:
        return self._primary

    @property
    def replicas(self) -> List[Any]:
        return list(self._replicas)

    # -- writes ----------------------------------------------------------

    def mutate(self, ops: list, queue_class: str = "default") -> list:
        """One durable group commit on the primary, with failover retry."""
        last_exc: Optional[Exception] = None
        delay = self.backoff
        for __ in range(self.retries + 1):
            ep = self._primary
            if ep is None:
                self.discover()
                ep = self._primary
            if ep is None:
                last_exc = ServiceError(
                    "UNAVAILABLE", "no primary in the fleet"
                )
                time.sleep(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2, 1.0)
                continue
            try:
                client = self._client(ep)
                message: Dict[str, Any] = {
                    "op": "mutate",
                    "ops": ops,
                    "class": queue_class,
                }
                if client.session is not None:
                    message["session"] = client.session
                reply = client.call(message)
            except ServiceOverloadedError:
                raise
            except (
                ServiceNotPrimary,
                ServiceSessionExpired,
                OSError,
                protocol.ProtocolError,
            ) as exc:
                last_exc = exc
            except ServiceError as exc:
                if exc.code != "DISCONNECTED":
                    raise
                last_exc = exc
            else:
                lsn = int(reply.get("lsn", 0))
                if lsn > self.known_committed:
                    self.known_committed = lsn
                return reply["results"]
            self._drop(ep)
            self._primary = None
            self.failovers += 1
            time.sleep(delay * (0.5 + self._rng.random()))
            delay = min(delay * 2, 1.0)
        raise last_exc

    def add(self, collection: str, **values: Any) -> int:
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        (result,) = self.mutate(
            [{"op": "add", "collection": collection, "values": encoded}]
        )
        return result["entry"]

    def update(self, collection: str, entry: int, **values: Any) -> None:
        encoded = {k: protocol.encode_value(v) for k, v in values.items()}
        self.mutate(
            [
                {
                    "op": "update",
                    "collection": collection,
                    "entry": entry,
                    "values": encoded,
                }
            ]
        )

    def remove(self, collection: str, entry: int) -> None:
        self.mutate(
            [{"op": "remove", "collection": collection, "entry": entry}]
        )

    # -- reads -----------------------------------------------------------

    def min_lsn(self, bound: Optional[int] = None) -> int:
        """The LSN floor the next read must reflect."""
        if bound is None:
            bound = self.staleness_bound
        return max(self.read_lsn, self.known_committed - max(0, bound), 0)

    def _read_order(self) -> List[Any]:
        order = list(self._replicas)
        if order:
            self._rr = (self._rr + 1) % len(order)
            order = order[self._rr :] + order[: self._rr]
        if self._primary is not None:
            order.append(self._primary)
        return order

    def query(
        self,
        name: str,
        engine: str = "compiled",
        flavor: Optional[str] = None,
        workers: int = 1,
        prune: bool = True,
        params: Optional[Dict[str, Any]] = None,
        queue_class: str = "default",
        bound: Optional[int] = None,
    ) -> Result:
        """Read with bounded staleness: wait-or-redirect across the fleet."""
        floor = self.min_lsn(bound)
        last_exc: Optional[Exception] = None
        for round_no in range(2):
            if round_no:
                self.discover()
                self.failovers += 1
            for ep in self._read_order():
                try:
                    reply = self._query_once(
                        ep, name, engine, flavor, workers, prune, params,
                        queue_class, floor,
                    )
                except ServiceOverloadedError:
                    raise
                except ServiceStaleRead as exc:
                    self.stale_reads += 1
                    self.redirects += 1
                    last_exc = exc
                    continue
                except (
                    ServiceSessionExpired,
                    OSError,
                    protocol.ProtocolError,
                ) as exc:
                    self._drop(ep)
                    self.redirects += 1
                    last_exc = exc
                    continue
                except ServiceError as exc:
                    if exc.code != "DISCONNECTED":
                        raise
                    self._drop(ep)
                    self.redirects += 1
                    last_exc = exc
                    continue
                lsn = int(reply.get("lsn", 0))
                if lsn > self.read_lsn:
                    self.read_lsn = lsn
                return Result(
                    reply["columns"], protocol.decode_rows(reply["rows"])
                )
        raise last_exc or ServiceError("UNAVAILABLE", "no endpoint answered")

    def _query_once(
        self, ep, name, engine, flavor, workers, prune, params,
        queue_class, floor,
    ) -> Dict[str, Any]:
        client = self._client(ep)
        message: Dict[str, Any] = {
            "op": "query",
            "query": name,
            "engine": engine,
            "workers": workers,
            "prune": prune,
            "class": queue_class,
            "min_lsn": floor,
            "wait": self.stale_wait,
        }
        if flavor is not None:
            message["flavor"] = flavor
        if params is not None:
            message["params"] = protocol.encode_value(params)
        if client.session is not None:
            message["session"] = client.session
        return client.call(message)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        for ep in list(self._clients):
            self._drop(ep)

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
