"""Object-oriented TPC-H schema (paper section 7).

The paper maps TPC-H tables to collections and each record to an object
composed of primitive fields plus *references* to other records for all
primary-/foreign-key relations, so that most joins are performed by
following references.  The integer key columns are retained alongside the
references — the relational comparator (``repro.rdbms``) joins on them,
and TPC-H query predicates occasionally need them.

Comments are variable-length strings owned by their object (string-heap
records); all other strings are fixed-width ``CHAR`` columns as in the
TPC-H DDL.
"""

from __future__ import annotations

from repro.schema import (
    CharField,
    DateField,
    DecimalField,
    Int32Field,
    Int64Field,
    RefField,
    Tabular,
    VarStringField,
)


class Region(Tabular):
    regionkey = Int32Field()
    name = CharField(12)
    comment = VarStringField()


class Nation(Tabular):
    nationkey = Int32Field()
    name = CharField(25)
    region = RefField("Region")
    regionkey = Int32Field()
    comment = VarStringField()


class Supplier(Tabular):
    suppkey = Int32Field()
    name = CharField(25)
    address = VarStringField()
    nation = RefField("Nation")
    nationkey = Int32Field()
    phone = CharField(15)
    acctbal = DecimalField(2)
    comment = VarStringField()


class Customer(Tabular):
    custkey = Int32Field()
    name = CharField(25)
    address = VarStringField()
    nation = RefField("Nation")
    nationkey = Int32Field()
    phone = CharField(15)
    acctbal = DecimalField(2)
    mktsegment = CharField(10)
    comment = VarStringField()


class Part(Tabular):
    partkey = Int32Field()
    name = VarStringField()
    mfgr = CharField(25)
    brand = CharField(10)
    type = CharField(25)
    size = Int32Field()
    container = CharField(10)
    retailprice = DecimalField(2)
    comment = VarStringField()


class PartSupp(Tabular):
    part = RefField("Part")
    supplier = RefField("Supplier")
    partkey = Int32Field()
    suppkey = Int32Field()
    availqty = Int32Field()
    supplycost = DecimalField(2)
    comment = VarStringField()


class Orders(Tabular):
    orderkey = Int64Field()
    customer = RefField("Customer")
    custkey = Int32Field()
    orderstatus = CharField(1)
    totalprice = DecimalField(2)
    orderdate = DateField()
    orderpriority = CharField(15)
    clerk = CharField(15)
    shippriority = Int32Field()
    comment = VarStringField()


class Lineitem(Tabular):
    order = RefField("Orders")
    part = RefField("Part")
    supplier = RefField("Supplier")
    orderkey = Int64Field()
    partkey = Int32Field()
    suppkey = Int32Field()
    linenumber = Int32Field()
    quantity = DecimalField(2)
    extendedprice = DecimalField(2)
    discount = DecimalField(2)
    tax = DecimalField(2)
    returnflag = CharField(1)
    linestatus = CharField(1)
    shipdate = DateField()
    commitdate = DateField()
    receiptdate = DateField()
    shipinstruct = CharField(25)
    shipmode = CharField(10)
    comment = VarStringField()


#: Load order respecting foreign-key dependencies.
TABLES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

SCHEMAS = {
    "region": Region,
    "nation": Nation,
    "supplier": Supplier,
    "customer": Customer,
    "part": Part,
    "partsupp": PartSupp,
    "orders": Orders,
    "lineitem": Lineitem,
}
